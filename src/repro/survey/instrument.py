"""The 34-question survey instrument (Section 2.1).

The paper groups the questions into five categories: demographics, graph
datasets, graph and machine learning computations, graph software, and
workload breakdown / challenges. We model each question with its kind
(yes/no, single choice, multiple choice, short answer) and its choice set,
and provide a validator that checks a :class:`~repro.survey.respondent.
Respondent` against the instrument.

Short-answer questions carry no machine-checkable answer and exist here for
completeness of the instrument; the respondent model stores their structured
derivatives (e.g. the seven non-human categories the authors coded from the
free-text answers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.data import taxonomy
from repro.survey.respondent import Respondent


class QuestionKind(enum.Enum):
    YES_NO = "yes_no"
    SINGLE_CHOICE = "single_choice"
    MULTI_CHOICE = "multi_choice"
    SHORT_ANSWER = "short_answer"


@dataclass(frozen=True)
class Question:
    """One survey question.

    Attributes:
        qid: stable identifier, also the respondent attribute it fills
            (empty for short-answer questions with no structured field).
        category: one of the five Section 2.1 categories.
        text: the question as asked.
        kind: response type.
        choices: the provided choices (empty for short answers / yes-no).
    """

    qid: str
    category: str
    text: str
    kind: QuestionKind
    choices: tuple[str, ...] = ()


DEMOGRAPHICS = "demographics"
DATASETS = "graph datasets"
COMPUTATIONS = "graph and machine learning computations"
SOFTWARE = "graph software"
WORKLOAD = "workload breakdown and major challenges"


def _q(qid, category, text, kind, choices=()):
    return Question(qid=qid, category=category, text=text, kind=kind,
                    choices=tuple(choices))


#: The full instrument, in survey order.
SURVEY_QUESTIONS: tuple[Question, ...] = (
    # -- demographics
    _q("fields_of_work", DEMOGRAPHICS, "Which field do you work in?",
       QuestionKind.MULTI_CHOICE, taxonomy.FIELDS_OF_WORK),
    _q("org_size", DEMOGRAPHICS, "What is the size of your organization?",
       QuestionKind.SINGLE_CHOICE, taxonomy.ORG_SIZES),
    _q("roles", DEMOGRAPHICS, "What is your role in your organization?",
       QuestionKind.MULTI_CHOICE, taxonomy.ROLES),
    # -- graph datasets
    _q("entities", DATASETS,
       "Which real-world entities do your graphs represent?",
       QuestionKind.MULTI_CHOICE, taxonomy.ENTITY_KINDS),
    _q("non_human_categories", DATASETS,
       "If non-human entities, please describe them.",
       QuestionKind.SHORT_ANSWER, taxonomy.NON_HUMAN_CATEGORIES),
    _q("vertex_buckets", DATASETS, "How many vertices do your graphs have?",
       QuestionKind.MULTI_CHOICE, taxonomy.VERTEX_COUNT_BUCKETS),
    _q("edge_buckets", DATASETS, "How many edges do your graphs have?",
       QuestionKind.MULTI_CHOICE, taxonomy.EDGE_COUNT_BUCKETS),
    _q("byte_buckets", DATASETS,
       "What is the total uncompressed size of your graphs?",
       QuestionKind.MULTI_CHOICE, taxonomy.BYTE_SIZE_BUCKETS),
    _q("directedness", DATASETS, "Are your graphs directed or undirected?",
       QuestionKind.SINGLE_CHOICE, taxonomy.DIRECTEDNESS),
    _q("simplicity", DATASETS, "Are your graphs simple graphs or multigraphs?",
       QuestionKind.SINGLE_CHOICE, taxonomy.SIMPLICITY),
    _q("stores_data", DATASETS,
       "Do you store data on the vertices and edges of your graphs?",
       QuestionKind.YES_NO),
    _q("vertex_property_types", DATASETS,
       "Which types of data do you store on vertices?",
       QuestionKind.MULTI_CHOICE, taxonomy.PROPERTY_TYPES),
    _q("edge_property_types", DATASETS,
       "Which types of data do you store on edges?",
       QuestionKind.MULTI_CHOICE, taxonomy.PROPERTY_TYPES),
    _q("dynamism", DATASETS,
       "How frequently do the vertices and edges of your graphs change?",
       QuestionKind.MULTI_CHOICE, taxonomy.DYNAMISM),
    # -- computations
    _q("graph_computations", COMPUTATIONS,
       "Which graph queries and computations do you perform?",
       QuestionKind.MULTI_CHOICE, taxonomy.GRAPH_COMPUTATIONS),
    _q("", COMPUTATIONS,
       "Which other graph queries and computations do you perform?",
       QuestionKind.SHORT_ANSWER),
    _q("ml_computations", COMPUTATIONS,
       "Which machine learning computations do you run on your graphs?",
       QuestionKind.MULTI_CHOICE, taxonomy.ML_COMPUTATIONS),
    _q("ml_problems", COMPUTATIONS,
       "Which problems commonly solved with machine learning do you solve "
       "using graphs?",
       QuestionKind.MULTI_CHOICE, taxonomy.ML_PROBLEMS),
    _q("streaming_incremental", COMPUTATIONS,
       "Do you perform incremental or streaming computations?",
       QuestionKind.YES_NO),
    _q("", COMPUTATIONS,
       "Please describe your incremental or streaming computations.",
       QuestionKind.SHORT_ANSWER),
    _q("traversal", COMPUTATIONS,
       "Which fundamental traversals do you use in your algorithms?",
       QuestionKind.SINGLE_CHOICE, taxonomy.TRAVERSALS),
    # -- software
    _q("query_software", SOFTWARE,
       "Which types of graph software do you use to query and perform "
       "computations on your graphs?",
       QuestionKind.MULTI_CHOICE, taxonomy.QUERY_SOFTWARE),
    _q("non_query_software", SOFTWARE,
       "Which types of graph software do you use for tasks other than "
       "querying?",
       QuestionKind.MULTI_CHOICE, taxonomy.NON_QUERY_SOFTWARE),
    _q("architectures", SOFTWARE,
       "What are the architectures of the software products you use?",
       QuestionKind.MULTI_CHOICE, taxonomy.ARCHITECTURES),
    _q("multiple_formats", SOFTWARE,
       "Do you store a single graph in multiple formats?",
       QuestionKind.YES_NO),
    _q("storage_formats", SOFTWARE, "Which formats do you use?",
       QuestionKind.SHORT_ANSWER, taxonomy.STORAGE_FORMATS),
    # -- workload and challenges
    _q("hours.Analytics", WORKLOAD,
       "How many hours per week do you spend on analytics?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("hours.Testing", WORKLOAD,
       "How many hours per week do you spend on testing?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("hours.Debugging", WORKLOAD,
       "How many hours per week do you spend on debugging?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("hours.Maintenance", WORKLOAD,
       "How many hours per week do you spend on maintenance?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("hours.ETL", WORKLOAD,
       "How many hours per week do you spend on ETL?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("hours.Cleaning", WORKLOAD,
       "How many hours per week do you spend on cleaning?",
       QuestionKind.SINGLE_CHOICE, taxonomy.HOUR_BUCKETS),
    _q("challenges", WORKLOAD,
       "What are your top challenges in processing graphs?",
       QuestionKind.MULTI_CHOICE, taxonomy.CHALLENGES),
    _q("", WORKLOAD, "What is your biggest challenge in processing graphs?",
       QuestionKind.SHORT_ANSWER),
)


def question(qid: str) -> Question:
    """Look up a question by its identifier."""
    for q in SURVEY_QUESTIONS:
        if q.qid == qid:
            return q
    raise KeyError(f"no question with qid {qid!r}")


class InvalidResponse(ValueError):
    """A respondent's answer is outside the instrument's choice set."""


def validate_respondent(respondent: Respondent) -> None:
    """Raise :class:`InvalidResponse` if any answer violates the instrument.

    Checks every structured field against its question's choice set, the
    hours mapping against tasks and buckets, and the follow-up consistency
    rules (non-human categories require the Non-Human entity choice;
    property types require ``stores_data``).
    """
    for q in SURVEY_QUESTIONS:
        if not q.qid or q.qid.startswith("hours."):
            continue
        value = getattr(respondent, q.qid)
        if q.kind is QuestionKind.SINGLE_CHOICE:
            if value is not None and value not in q.choices:
                raise InvalidResponse(
                    f"{q.qid}: {value!r} not in choices {q.choices}")
        elif q.kind in (QuestionKind.MULTI_CHOICE, QuestionKind.SHORT_ANSWER):
            if q.choices:
                bad = set(value) - set(q.choices)
                if bad:
                    raise InvalidResponse(
                        f"{q.qid}: {sorted(bad)} not in choices")
        elif q.kind is QuestionKind.YES_NO:
            if value not in (None, True, False):
                raise InvalidResponse(f"{q.qid}: {value!r} is not yes/no")
    for task, bucket in respondent.hours.items():
        if task not in taxonomy.WORKLOAD_TASKS:
            raise InvalidResponse(f"hours: unknown task {task!r}")
        if bucket not in taxonomy.HOUR_BUCKETS:
            raise InvalidResponse(f"hours[{task}]: bad bucket {bucket!r}")
    if (respondent.non_human_categories
            and "Non-Human" not in respondent.entities):
        raise InvalidResponse(
            "non-human categories given without the Non-Human entity choice")
    if respondent.stores_data is False and (
            respondent.vertex_property_types
            or respondent.edge_property_types):
        raise InvalidResponse("property types given but stores_data is False")
