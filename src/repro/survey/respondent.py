"""Respondent records and the population container.

A :class:`Respondent` holds one participant's answers to the 34-question
instrument. All questions were optional in the original survey, so every
field has an "unanswered" representation: ``None`` for single-choice and
yes/no questions, an empty set for multi-choice questions, and a missing key
for the per-task hours question.

The researcher/practitioner split (Section 2.2 of the paper) is *derived*
from the fields-of-work answer, exactly as the authors derived it: a
participant is a researcher iff they selected research in academia or in an
industry lab.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data import taxonomy


@dataclass
class Respondent:
    """One survey participant's answers."""

    respondent_id: int

    # -- demographics (Section 2.2)
    fields_of_work: frozenset[str] = frozenset()
    org_size: str | None = None
    roles: frozenset[str] = frozenset()

    # -- graph datasets (Section 3)
    entities: frozenset[str] = frozenset()
    non_human_categories: frozenset[str] = frozenset()
    vertex_buckets: frozenset[str] = frozenset()
    edge_buckets: frozenset[str] = frozenset()
    byte_buckets: frozenset[str] = frozenset()
    directedness: str | None = None
    simplicity: str | None = None
    stores_data: bool | None = None
    vertex_property_types: frozenset[str] = frozenset()
    edge_property_types: frozenset[str] = frozenset()
    dynamism: frozenset[str] = frozenset()

    # -- computations (Section 4)
    graph_computations: frozenset[str] = frozenset()
    ml_computations: frozenset[str] = frozenset()
    ml_problems: frozenset[str] = frozenset()
    traversal: str | None = None
    streaming_incremental: bool | None = None

    # -- software (Section 5)
    query_software: frozenset[str] = frozenset()
    non_query_software: frozenset[str] = frozenset()
    architectures: frozenset[str] = frozenset()
    multiple_formats: bool | None = None
    storage_formats: frozenset[str] = frozenset()

    # -- challenges and workload (Sections 6-7)
    challenges: frozenset[str] = frozenset()
    hours: dict[str, str] = field(default_factory=dict)

    @property
    def is_researcher(self) -> bool:
        """Section 2.2 rule: selected research in academia or industry lab."""
        return bool(self.fields_of_work & taxonomy.RESEARCHER_FIELDS)

    @property
    def is_practitioner(self) -> bool:
        return not self.is_researcher

    @property
    def uses_ml(self) -> bool:
        """True iff the participant reported any ML computation or problem."""
        return bool(self.ml_computations or self.ml_problems)

    def has_edges_over(self, bucket_index: int) -> bool:
        """True iff any selected edge bucket is at or above ``bucket_index``
        in :data:`repro.data.taxonomy.EDGE_COUNT_BUCKETS` order."""
        order = {name: i for i, name in enumerate(taxonomy.EDGE_COUNT_BUCKETS)}
        return any(order[b] >= bucket_index for b in self.edge_buckets)


class Population:
    """An ordered collection of respondents with group helpers."""

    def __init__(self, respondents: Iterable[Respondent]):
        self._respondents = list(respondents)
        ids = [r.respondent_id for r in self._respondents]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate respondent ids in population")
        self._by_id = {r.respondent_id: r for r in self._respondents}

    def __len__(self) -> int:
        return len(self._respondents)

    def __iter__(self) -> Iterator[Respondent]:
        return iter(self._respondents)

    def __getitem__(self, respondent_id: int) -> Respondent:
        return self._by_id[respondent_id]

    def researchers(self) -> list[Respondent]:
        return [r for r in self._respondents if r.is_researcher]

    def practitioners(self) -> list[Respondent]:
        return [r for r in self._respondents if r.is_practitioner]

    def group(self, name: str) -> list[Respondent]:
        """Return a named subgroup: ``"Total"``, ``"R"`` or ``"P"``."""
        if name == "Total":
            return list(self._respondents)
        if name == "R":
            return self.researchers()
        if name == "P":
            return self.practitioners()
        raise KeyError(f"unknown group {name!r}; expected Total, R or P")
