"""Serialization of populations to JSON and CSV.

JSON is the lossless round-trip format. CSV is a flat export for use in
spreadsheet tools: multi-choice answers are ``|``-joined, the hours mapping
is spread over one column per task.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.data import taxonomy
from repro.survey.respondent import Population, Respondent

_SET_FIELDS = (
    "fields_of_work", "roles", "entities", "non_human_categories",
    "vertex_buckets", "edge_buckets", "byte_buckets",
    "vertex_property_types", "edge_property_types", "dynamism",
    "graph_computations", "ml_computations", "ml_problems",
    "query_software", "non_query_software", "architectures",
    "storage_formats", "challenges",
)
_SCALAR_FIELDS = (
    "org_size", "directedness", "simplicity", "stores_data", "traversal",
    "streaming_incremental", "multiple_formats",
)


def respondent_to_dict(respondent: Respondent) -> dict[str, Any]:
    """Convert a respondent to a JSON-serializable dict (sorted sets)."""
    record: dict[str, Any] = {"respondent_id": respondent.respondent_id}
    for name in _SET_FIELDS:
        record[name] = sorted(getattr(respondent, name))
    for name in _SCALAR_FIELDS:
        record[name] = getattr(respondent, name)
    record["hours"] = dict(respondent.hours)
    return record


def respondent_from_dict(record: dict[str, Any]) -> Respondent:
    """Inverse of :func:`respondent_to_dict`."""
    kwargs: dict[str, Any] = {"respondent_id": record["respondent_id"]}
    for name in _SET_FIELDS:
        kwargs[name] = frozenset(record.get(name, ()))
    for name in _SCALAR_FIELDS:
        kwargs[name] = record.get(name)
    kwargs["hours"] = dict(record.get("hours", {}))
    return Respondent(**kwargs)


def save_population_json(population: Population, path: str | Path) -> None:
    """Write a population to a JSON file."""
    records = [respondent_to_dict(r) for r in population]
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"respondents": records}, f, indent=1, sort_keys=True)


def load_population_json(path: str | Path) -> Population:
    """Read a population written by :func:`save_population_json`."""
    with open(path, encoding="utf-8") as f:
        payload = json.load(f)
    return Population(
        respondent_from_dict(record) for record in payload["respondents"])


def save_population_csv(population: Population, path: str | Path) -> None:
    """Write a flat CSV export of a population."""
    header = (["respondent_id", "group"] + list(_SET_FIELDS)
              + list(_SCALAR_FIELDS)
              + [f"hours_{task}" for task in taxonomy.WORKLOAD_TASKS])
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for r in population:
            row: list[Any] = [r.respondent_id,
                              "R" if r.is_researcher else "P"]
            row.extend("|".join(sorted(getattr(r, name)))
                       for name in _SET_FIELDS)
            row.extend(getattr(r, name) for name in _SCALAR_FIELDS)
            row.extend(r.hours.get(task, "")
                       for task in taxonomy.WORKLOAD_TASKS)
            writer.writerow(row)


def load_population_csv(path: str | Path) -> Population:
    """Read a population from the CSV export (lossless for our fields)."""

    def parse_scalar(text: str) -> Any:
        if text in ("", "None"):
            return None
        if text == "True":
            return True
        if text == "False":
            return False
        return text

    respondents = []
    with open(path, encoding="utf-8", newline="") as f:
        for record in csv.DictReader(f):
            kwargs: dict[str, Any] = {
                "respondent_id": int(record["respondent_id"])}
            for name in _SET_FIELDS:
                text = record[name]
                kwargs[name] = (frozenset(text.split("|"))
                                if text else frozenset())
            for name in _SCALAR_FIELDS:
                kwargs[name] = parse_scalar(record[name])
            hours = {}
            for task in taxonomy.WORKLOAD_TASKS:
                bucket = record[f"hours_{task}"]
                if bucket:
                    hours[task] = bucket
            kwargs["hours"] = hours
            respondents.append(Respondent(**kwargs))
    return Population(respondents)
