"""The survey instrument, respondent records, and serialization."""

from repro.survey.instrument import (
    SURVEY_QUESTIONS,
    InvalidResponse,
    Question,
    QuestionKind,
    question,
    validate_respondent,
)
from repro.survey.io import (
    load_population_csv,
    load_population_json,
    save_population_csv,
    save_population_json,
)
from repro.survey.respondent import Population, Respondent
