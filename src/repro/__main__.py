"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``      -- regenerate all 26 tables; print match summaries
  (``--verbose`` for full side-by-side values, ``--table ID`` for one).
* ``findings``    -- re-derive and print the paper's Section 1 findings.
* ``experiments`` -- write the full EXPERIMENTS.md report
  (``--output PATH``, default stdout).
* ``workload``    -- run every surveyed computation on a scenario graph.
* ``query``       -- run a GQL-lite query against the bundled product
  graph (``--explain`` prints the plan instead).
"""

from __future__ import annotations

import argparse
import sys


def _build_inputs():
    from repro.synthesis import (
        build_literature_corpus,
        build_population,
        build_review_corpus,
    )

    return (build_population(), build_literature_corpus(),
            build_review_corpus())


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.core import compare_tables
    from repro.core.paper_report import reproduce_all_tables, table_sort_key
    from repro.core.report import render_comparison, summary_line
    from repro.data.paper_tables import paper_table

    population, literature, corpus = _build_inputs()
    tables = reproduce_all_tables(population, literature, corpus)
    wanted = ([args.table] if args.table
              else sorted(tables, key=table_sort_key))
    exact = 0
    for table_id in wanted:
        if table_id not in tables:
            print(f"unknown table id {table_id!r}", file=sys.stderr)
            return 2
        expected = paper_table(table_id)
        actual = tables[table_id]
        comparison = compare_tables(expected, actual)
        exact += comparison.exact
        if args.verbose or args.table:
            print(render_comparison(expected, actual))
            print()
        else:
            print(summary_line(comparison))
    if not args.table:
        print(f"\n{exact}/{len(wanted)} tables reproduced exactly")
    return 0 if exact == len(wanted) else 1


def cmd_findings(args: argparse.Namespace) -> int:
    from repro.core import derive_findings, render_findings
    from repro.synthesis import build_literature_corpus, build_population

    findings = derive_findings(build_population(args.seed),
                               build_literature_corpus())
    print(render_findings(findings))
    return 0 if all(f.holds for f in findings) else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.core.paper_report import generate_experiments_markdown

    population, literature, corpus = _build_inputs()
    markdown = generate_experiments_markdown(population, literature,
                                             corpus)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(markdown)
        print(f"wrote {args.output} ({len(markdown)} bytes)",
              file=sys.stderr)
    else:
        print(markdown, end="")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import build_scenario, run_survey_workload

    graph = build_scenario(args.scenario, seed=args.seed)
    print(f"scenario {args.scenario!r}: {graph.num_vertices()} vertices, "
          f"{graph.num_edges()} edges")
    for result in run_survey_workload(graph, seed=args.seed):
        print(f"  {result.name:<42} {result.summary}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.query import explain, run_query
    from repro.workloads import generate_product_graph

    graph = generate_product_graph(seed=args.seed)
    if args.explain:
        print(explain(graph, args.text))
        return 0
    result = run_query(graph, args.text)
    print("\t".join(result.columns))
    for row in result.rows:
        print("\t".join(str(cell) for cell in row))
    print(f"({len(result)} rows)", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction toolkit for 'The Ubiquity of Large "
                    "Graphs' (VLDB 2017)")
    commands = parser.add_subparsers(dest="command", required=True)

    tables = commands.add_parser(
        "tables", help="regenerate and compare all paper tables")
    tables.add_argument("--verbose", action="store_true",
                        help="print full side-by-side values")
    tables.add_argument("--table", help="one table id, e.g. 5b")
    tables.set_defaults(fn=cmd_tables)

    findings = commands.add_parser(
        "findings", help="re-derive the Section 1 findings")
    findings.add_argument("--seed", type=int, default=2017)
    findings.set_defaults(fn=cmd_findings)

    experiments = commands.add_parser(
        "experiments", help="write the EXPERIMENTS.md report")
    experiments.add_argument("--output", help="file path (default stdout)")
    experiments.set_defaults(fn=cmd_experiments)

    workload = commands.add_parser(
        "workload", help="run every surveyed computation")
    workload.add_argument("--scenario", default="social",
                          choices=["social", "web", "road",
                                   "collaboration", "infrastructure"])
    workload.add_argument("--seed", type=int, default=1)
    workload.set_defaults(fn=cmd_workload)

    query = commands.add_parser(
        "query", help="query the bundled product graph")
    query.add_argument("text", help="a GQL-lite query string")
    query.add_argument("--explain", action="store_true")
    query.add_argument("--seed", type=int, default=0)
    query.set_defaults(fn=cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
