"""Scaling + recovery + skew report: ``python -m repro.dist.report``.

Runs PageRank and connected components on one generated graph at
k ∈ {1, 2, 4, 8} workers, fault-free and (for k > 1) with an injected
worker kill, and prints the scaling table: routed vs sender-combined
message counts, checkpoint volume, recovery stats, and whether the
recovered values are byte-identical to the fault-free run. A skew
section then runs k=4 PageRank under a balanced hash partition and the
intentionally imbalanced :func:`~repro.dist.degree_skewed_partition`,
reconstructs both runs' per-worker timelines
(:mod:`repro.obs.timeline`), and flags the straggler. A RESOURCES
section then re-runs k=4 PageRank under :mod:`repro.obs.profile` and
attributes each worker's wall time to busy CPU vs. waiting (plus its
allocation peak), so a straggler can be *blamed*, not just flagged.
Every number is sourced from :mod:`repro.obs` — counter deltas, span
records, and the ``dist.run`` span — not from ad-hoc bookkeeping, so
the report doubles as the end-to-end check that the observability
wiring is intact.

``--json`` emits the structured report plus the full
``observability_dict`` payload (spans + metrics) captured during the
sweep, so CI and the bench harness consume it without scraping text;
``--timeline`` also prints the text Gantt of the skewed run.

:func:`smoke` is the tiny fixed configuration (k=2, one injected
fault) the benchmark suite runs from ``benchmarks/conftest.py``.
Randomized failure coverage — flaky workers, message loss/duplication,
checkpoint corruption — lives in ``python -m repro.dist.chaos``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro import obs
from repro.dgps.algorithms import connected_components_spec, pagerank_spec
from repro.dist.checkpoint import InMemoryCheckpointStore
from repro.dist.coordinator import run_distributed_pregel
from repro.dist.faults import FaultPlan
from repro.generators import barabasi_albert, gnm_random_graph
from repro.graphs.adjacency import Graph
from repro.obs.timeline import build_timeline, render_timeline

#: obs counters the report treats as the source of truth.
COUNTERS = (
    "dist.supersteps",
    "dist.messages_local",
    "dist.messages_routed",
    "dist.messages_combined",
    "dist.checkpoints",
    "dist.checkpoint_bytes",
    "dist.recoveries",
    "dist.checkpoint_corrupt",
)


def _instrumented_run(graph: Graph, spec, **dist_kwargs) -> dict[str, Any]:
    """Run once under tracing; return values + obs-sourced measurements."""
    registry = obs.get_registry()
    before = {name: registry.counter(name).value for name in COUNTERS}
    with obs.capture() as trace:
        result = run_distributed_pregel(graph, spec, **dist_kwargs)
    deltas = {name: registry.counter(name).value - before[name]
              for name in COUNTERS}
    run_spans = [s for root in trace.roots for s in root.find("dist.run")]
    elapsed_ms = sum(s.duration_ms for s in run_spans)
    return {
        "values": result.values,
        "supersteps": result.supersteps,
        "elapsed_ms": elapsed_ms,
        "obs": deltas,
        "routing": result.routing,
    }


def _spec_for(algorithm: str, graph: Graph, supersteps: int):
    if algorithm == "pagerank":
        return pagerank_spec(graph, supersteps=supersteps)
    if algorithm == "components":
        return connected_components_spec(graph)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def run_report(
    vertices: int = 200,
    edges: int | None = None,
    ks: tuple[int, ...] = (1, 2, 4, 8),
    partitioner: str = "bfs",
    seed: int = 0,
    pagerank_supersteps: int = 10,
    fault_superstep: int = 1,
    skew_vertices: int = 200,
) -> dict[str, Any]:
    """The full sweep; returns the structured report ``main`` prints.

    The returned dict carries a ``skew`` section (see
    :func:`skew_report`) whose ``_timelines`` entry holds the live
    :class:`~repro.obs.timeline.Timeline` objects — callers that
    serialize the report should pop it first (``main`` does).
    """
    edges = 2 * vertices if edges is None else edges
    graph = gnm_random_graph(vertices, edges, directed=False, seed=seed)
    report: dict[str, Any] = {
        "graph": {"vertices": graph.num_vertices(),
                  "edges": graph.num_edges()},
        "partitioner": partitioner,
        "rows": [],
    }
    for algorithm in ("pagerank", "components"):
        spec = _spec_for(algorithm, graph, pagerank_supersteps)
        for k in ks:
            clean = _instrumented_run(
                graph, spec, k=k, partitioner=partitioner, seed=seed)
            row: dict[str, Any] = {
                "algorithm": algorithm,
                "k": k,
                "supersteps": clean["supersteps"],
                "elapsed_ms": round(clean["elapsed_ms"], 2),
                "routed": clean["obs"]["dist.messages_routed"],
                "combined": clean["obs"]["dist.messages_combined"],
                "local": clean["obs"]["dist.messages_local"],
                "checkpoint_bytes": clean["obs"]["dist.checkpoint_bytes"],
                "communication_volume":
                    clean["routing"]["communication_volume"],
                "edge_cut": clean["routing"]["edge_cut"],
            }
            if k > 1:
                faulted = _instrumented_run(
                    graph, spec, k=k, partitioner=partitioner, seed=seed,
                    fault_plan=FaultPlan().kill(
                        "w1", at_superstep=fault_superstep),
                    checkpoint_store=InMemoryCheckpointStore())
                row["fault"] = {
                    "recoveries": faulted["obs"]["dist.recoveries"],
                    "checkpoints": faulted["obs"]["dist.checkpoints"],
                    "identical": repr(faulted["values"])
                    == repr(clean["values"]),
                }
            report["rows"].append(row)
    report["skew"] = skew_report(vertices=skew_vertices, seed=seed)
    report["resources"] = resource_report(vertices=skew_vertices,
                                          seed=seed)
    return report


def resource_report(
    vertices: int = 200,
    k: int = 4,
    seed: int = 0,
    supersteps: int = 8,
    partitioner: str = "hash",
) -> dict[str, Any]:
    """Per-worker CPU vs. allocation attribution for one profiled run.

    Runs k-way PageRank once under :mod:`repro.obs.profile`, so every
    ``dist.worker.superstep`` span carries ``cpu_ms`` /
    ``peak_alloc_kb`` attrs, then rolls them up per worker through
    :meth:`~repro.obs.timeline.Timeline.resource_summary`: each
    worker's wall time is split into busy CPU and waiting, with a
    ``blame`` verdict (cpu-bound / waiting / +alloc-heavy). This is
    the RESOURCES section of the report — the answer to *why* a
    straggler is slow, where SKEW only says *that* it is.
    """
    from repro.obs.profile import profiled

    graph = barabasi_albert(vertices, 3, seed=seed)
    spec = pagerank_spec(graph, supersteps=supersteps)
    with profiled() as trace:
        run_distributed_pregel(graph, spec, k=k,
                               partitioner=partitioner, seed=seed)
    timeline = build_timeline(trace.roots)
    summary = timeline.resource_summary()
    return {
        "graph": {"vertices": graph.num_vertices(),
                  "edges": graph.num_edges()},
        "k": k,
        "algorithm": "pagerank",
        "partitioner": partitioner,
        "supersteps": supersteps,
        **summary,
    }


def skew_report(
    vertices: int = 200,
    k: int = 4,
    seed: int = 0,
    supersteps: int = 8,
    partitioners: tuple[str, ...] = ("hash", "degree_skew"),
) -> dict[str, Any]:
    """Head-to-head timelines: balanced vs intentionally skewed.

    Runs k-way PageRank on one scale-free graph under each partitioner,
    reconstructs the per-worker timeline from the span records alone,
    and returns each run's skew summary. The ``degree_skew`` partition
    piles the hubs onto shard 0, so its straggler ratio should blow
    past the flag threshold while ``hash`` stays near 1.
    """
    graph = barabasi_albert(vertices, 3, seed=seed)
    spec = pagerank_spec(graph, supersteps=supersteps)
    rows = []
    timelines = {}
    for partitioner in partitioners:
        with obs.capture() as trace:
            run_distributed_pregel(graph, spec, k=k,
                                   partitioner=partitioner, seed=seed)
        timeline = build_timeline(trace.roots)
        timelines[partitioner] = timeline
        rows.append(timeline.skew_summary())
    return {
        "graph": {"vertices": graph.num_vertices(),
                  "edges": graph.num_edges()},
        "k": k,
        "algorithm": "pagerank",
        "rows": rows,
        "flagged": [row["partitioner"] for row in rows
                    if row["flagged"]],
        "_timelines": timelines,  # stripped from the JSON payload
    }


def smoke(k: int = 2, seed: int = 0) -> dict[str, Any]:
    """Tiny end-to-end checkpoint/recovery exercise (benchmark fixture).

    Connected components on a 24-vertex graph at k workers, one
    injected kill of ``w1``; raises if recovery does not reproduce the
    fault-free values byte-for-byte.
    """
    graph = gnm_random_graph(24, 40, directed=False, seed=seed)
    spec = connected_components_spec(graph)
    clean = run_distributed_pregel(graph, spec, k=k, seed=seed)
    faulted = run_distributed_pregel(
        graph, spec, k=k, seed=seed,
        fault_plan=FaultPlan().kill("w1", at_superstep=1),
        checkpoint_store=InMemoryCheckpointStore())
    if repr(faulted.values) != repr(clean.values):
        raise AssertionError(
            "recovered run diverged from the fault-free run")
    if faulted.recoveries != 1:
        raise AssertionError(
            f"expected exactly one recovery, saw {faulted.recoveries}")
    if len(faulted.recovery_events) != 1:
        raise AssertionError(
            "recovery supervisor did not record the recovery")
    return {
        "recovered": True,
        "recoveries": faulted.recoveries,
        "replayed": faulted.replayed_supersteps(),
        "checkpoints": faulted.checkpoints_written,
        "checkpoint_bytes": faulted.checkpoint_bytes,
        "supersteps": faulted.supersteps,
    }


def _render(report: dict[str, Any]) -> str:
    graph = report["graph"]
    lines = [
        f"repro.dist scaling report — "
        f"{graph['vertices']} vertices / {graph['edges']} edges, "
        f"partitioner={report['partitioner']}",
        "",
        f"{'algorithm':<11} {'k':>2} {'steps':>5} {'routed':>8} "
        f"{'combined':>8} {'local':>8} {'comm.vol':>8} {'ckpt.B':>9} "
        f"{'ms':>8}  fault",
    ]
    for row in report["rows"]:
        fault = row.get("fault")
        if fault is None:
            fault_text = "—"
        else:
            match = "identical" if fault["identical"] else "DIVERGED"
            fault_text = (f"{fault['recoveries']} recovery "
                          f"({fault['checkpoints']} ckpts, {match})")
        lines.append(
            f"{row['algorithm']:<11} {row['k']:>2} {row['supersteps']:>5} "
            f"{row['routed']:>8} {row['combined']:>8} {row['local']:>8} "
            f"{row['communication_volume']:>8} "
            f"{row['checkpoint_bytes']:>9} {row['elapsed_ms']:>8.2f}  "
            f"{fault_text}")
    lines.append("")
    lines.append(
        "routed/combined/checkpoint columns are repro.obs counter "
        "deltas; ms is the dist.run span. combined = messages the "
        "sender-side combiner kept off the wire.")
    skew = report.get("skew")
    if skew:
        lines.append("")
        lines.extend(_render_skew(skew).splitlines())
    resources = report.get("resources")
    if resources:
        lines.append("")
        lines.extend(_render_resources(resources).splitlines())
    return "\n".join(lines)


def _render_skew(skew: dict[str, Any]) -> str:
    graph = skew["graph"]
    lines = [
        f"SKEW — k={skew['k']} {skew['algorithm']} on "
        f"{graph['vertices']} vertices / {graph['edges']} edges "
        f"(per-worker lanes from repro.obs.timeline)",
        f"{'partitioner':<13} {'straggler':>10} {'x time':>7} "
        f"{'x vertices':>10} {'x messages':>10}  verdict",
    ]
    for row in skew["rows"]:
        verdict = ("FLAGGED (imbalanced)" if row["flagged"]
                   else "balanced")
        lines.append(
            f"{row['partitioner']:<13} {str(row['straggler']):>10} "
            f"{row['straggler_ratio']:>7.2f} "
            f"{row['vertex_imbalance']:>10.2f} "
            f"{row['message_imbalance']:>10.2f}  {verdict}")
    lines.append(
        f"x columns are max/mean ratios across workers; a run is "
        f"flagged past {skew['rows'][0]['threshold']}. Use --timeline "
        f"for the per-superstep Gantt.")
    return "\n".join(lines)


def _render_resources(resources: dict[str, Any]) -> str:
    graph = resources["graph"]
    lines = [
        f"RESOURCES — k={resources['k']} {resources['algorithm']} "
        f"({resources['partitioner']}) on {graph['vertices']} vertices "
        f"/ {graph['edges']} edges, profiled "
        f"(per-span cpu_ms/peak_alloc_kb from repro.obs.profile)",
    ]
    if not resources.get("profiled"):
        lines.append("  (run was not profiled; no resource attrs)")
        return "\n".join(lines)
    lines.append(
        f"{'worker':<8} {'wall ms':>9} {'cpu ms':>9} {'cpu%':>6} "
        f"{'peakKB':>8}  blame")
    for worker, row in sorted(resources["workers"].items()):
        lines.append(
            f"{worker:<8} {row['wall_ms']:>9.2f} {row['cpu_ms']:>9.2f} "
            f"{row['cpu_share'] * 100:>5.0f}% "
            f"{row['peak_alloc_kb']:>8.1f}  {row['blame']}")
    lines.append(
        "cpu% is CPU-ms over wall-ms of the worker's compute lanes; "
        "low cpu% means the lane waited (routing/barrier), not "
        "computed. alloc-heavy flags a peak > 1.5x the worker mean.")
    return "\n".join(lines)


def _replay(path: str, *, as_json: bool) -> int:
    """Re-render a saved ``--json`` report (no sweep run); exit status
    mirrors a live run (1 when any faulted row diverged)."""
    payload = obs.load_json_artifact(path)
    if "rows" not in payload or "graph" not in payload:
        raise obs.ArtifactError(
            f"artifact {path!r} is not a dist report (missing "
            f"'rows'/'graph'; keys: {sorted(payload)[:8]})")
    if as_json:
        print(json.dumps(payload, indent=2, default=repr))
    else:
        print(f"(replayed from {path})")
        print(_render(payload))
    diverged = [row for row in payload["rows"]
                if row.get("fault") and not row["fault"]["identical"]]
    return 1 if diverged else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.report",
        description="Run PageRank/components across worker counts, "
                    "with and without injected faults, and print the "
                    "scaling + recovery summary.")
    parser.add_argument("--vertices", type=int, default=200)
    parser.add_argument("--edges", type=int, default=None,
                        help="edge count (default: 2x vertices)")
    parser.add_argument("--ks", default="1,2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--partitioner", default="bfs",
                        choices=["bfs", "random", "hash",
                                 "degree_skew"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fault-superstep", type=int, default=1,
                        help="superstep at which w1 is killed")
    parser.add_argument("--json", action="store_true",
                        help="emit the structured report as JSON, "
                             "including the observability_dict "
                             "payload (spans + metrics)")
    parser.add_argument("--timeline", action="store_true",
                        help="also print the per-superstep Gantt of "
                             "the skewed k=4 run")
    parser.add_argument("--input", default=None, metavar="PATH",
                        help="replay a saved --json report instead of "
                             "running the sweep; a missing or torn "
                             "artifact exits 2 with a named "
                             "ArtifactError")
    args = parser.parse_args(argv)

    if args.input is not None:
        try:
            return _replay(args.input, as_json=args.json)
        except obs.ArtifactError as exc:
            print(f"error: ArtifactError: {exc}", file=sys.stderr)
            return 2
    try:
        ks = tuple(int(chunk) for chunk in args.ks.split(",") if chunk)
    except ValueError:
        parser.error(f"bad --ks value {args.ks!r}")
    with obs.capture() as trace:
        report = run_report(
            vertices=args.vertices, edges=args.edges, ks=ks,
            partitioner=args.partitioner, seed=args.seed,
            fault_superstep=args.fault_superstep)
    timelines = report["skew"].pop("_timelines", {})
    if args.json:
        report["observability"] = obs.observability_dict(trace.roots)
        print(json.dumps(report, indent=2, default=repr))
    else:
        print(_render(report))
        if args.timeline:
            for partitioner, timeline in timelines.items():
                print()
                print(f"[{partitioner}]")
                print(render_timeline(timeline))
    diverged = [row for row in report["rows"]
                if row.get("fault") and not row["fault"]["identical"]]
    return 1 if diverged else 0


if __name__ == "__main__":
    sys.exit(main())
