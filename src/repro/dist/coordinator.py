"""The coordinator: barriers, routing, durability, recovery.

Drives k :class:`~repro.dist.worker.Worker` shards through bulk-
synchronous supersteps:

1. **compute** — each worker runs the superstep over its shard (a
   pending fault in the :class:`~repro.dist.faults.FaultPlan` kills its
   worker here, mid-computation);
2. **barrier** — the coordinator routes every worker's sender-combined
   remote buffers to their destination shards and merges aggregator
   partials in worker order;
3. **checkpoint** — worker states plus pending inboxes go to the
   :class:`~repro.dist.checkpoint.CheckpointStore` (every
   ``checkpoint_every`` barriers).

Any :class:`~repro.dist.faults.InjectedFault` — a worker kill, a
flaky worker's repeated failure, or a detected barrier message
loss/duplication — unwinds to the superstep loop, which hands it to
the :class:`~repro.dist.resilience.RecoverySupervisor`: restore *all*
shards from the newest checkpoint that passes integrity validation
(falling back past corrupt ones), enforce the retry policy, and
replay. Execution is deterministic (fixed shard order, fixed routing
order), so the recovered run finishes with vertex values byte-identical
to a fault-free run.

Combiners and aggregators must be the associative/commutative monoids
Pregel already requires: the distributed barrier folds sender-side
partials in worker order, which groups float additions differently
than the single-machine engine's global send order (exact operators —
min/max/int sums — match it bitwise; float sums match to rounding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dgps.pregel import (
    Aggregator,
    Combiner,
    PregelError,
    PregelSpec,
    VertexProgram,
)
from repro.dist.checkpoint import (
    Checkpoint,
    CheckpointStore,
    InMemoryCheckpointStore,
)
from repro.dist.faults import (
    FaultPlan,
    InjectedFault,
    MessageDuplication,
    MessageLoss,
)
from repro.dist.partitioned import Partitioner, ShardMap
from repro.dist.resilience import (
    RecoveryEvent,
    RecoverySupervisor,
    RetryPolicy,
)
from repro.dist.worker import Worker, WorkerStepResult
from repro.graphs.adjacency import Graph, Vertex
from repro.obs import (
    check_deadline,
    current_deadline,
    get_registry,
    is_enabled,
    span,
)


@dataclass(frozen=True)
class DistSuperstepStats:
    """Observability record for one distributed superstep."""

    superstep: int
    active_vertices: int
    messages_sent: int
    messages_local: int
    messages_routed: int
    messages_combined: int
    aggregates: dict[str, Any]


@dataclass
class DistributedResult:
    """Final vertex values plus the distributed execution trace."""

    values: dict[Vertex, Any]
    supersteps: int
    stats: list[DistSuperstepStats]
    k: int
    partitioner: str
    shard_sizes: list[int]
    recoveries: int
    checkpoints_written: int
    checkpoint_bytes: int
    routing: dict[str, Any] = field(default_factory=dict)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)

    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    def replayed_supersteps(self) -> int:
        """Total supersteps re-executed across all recoveries."""
        return sum(event.replayed for event in self.recovery_events)

    def routed_messages(self) -> int:
        return sum(s.messages_routed for s in self.stats)

    def combined_messages(self) -> int:
        return sum(s.messages_combined for s in self.stats)


class Coordinator:
    """Sharded BSP executor for unchanged vertex programs."""

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        *,
        k: int = 4,
        partitioner="bfs",
        initial_value: Callable[[Vertex], Any] | Any = None,
        combiner: Combiner | None = None,
        aggregators: dict[str, Aggregator] | None = None,
        max_supersteps: int = 100,
        checkpoint_store: CheckpointStore | None = None,
        checkpoint_every: int = 1,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
        strict: bool = False,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if strict:
            self._analyze(program, initial_value, aggregators,
                          fault_plan)
        self._graph = graph
        self._program = program
        self._aggregators = dict(aggregators or {})
        self._max_supersteps = max_supersteps
        self._checkpoint_every = checkpoint_every
        self._fault_plan = fault_plan
        self._store = checkpoint_store or InMemoryCheckpointStore()
        self.supervisor = RecoverySupervisor(self._store,
                                             policy=retry_policy)

        if isinstance(partitioner, ShardMap):
            self._shard_map: ShardMap = partitioner
            self._partitioner_name = "explicit"
        else:
            chooser = (partitioner if isinstance(partitioner, Partitioner)
                       else Partitioner(partitioner, seed=seed))
            self._shard_map = chooser.shard(graph, k)
            self._partitioner_name = chooser.name
        self.k = self._shard_map.k

        self._vertex_order = tuple(graph.vertices())
        values: dict[Vertex, Any] = {}
        for vertex in self._vertex_order:
            if callable(initial_value):
                values[vertex] = initial_value(vertex)
            else:
                values[vertex] = initial_value
        out_edges: dict[Vertex, list[tuple[Vertex, float]]] = {
            v: [] for v in self._vertex_order}
        for edge in graph.edges():
            out_edges[edge.u].append((edge.v, edge.weight))
            if not graph.directed and edge.u != edge.v:
                out_edges[edge.v].append((edge.u, edge.weight))

        num_vertices = graph.num_vertices()
        self.workers: list[Worker] = [
            Worker(
                index=index,
                vertices=shard,
                assignment=self._shard_map.assignment,
                program=program,
                values={v: values[v] for v in shard},
                out_edges={v: out_edges[v] for v in shard},
                combiner=combiner,
                aggregators=self._aggregators,
                num_vertices=num_vertices,
            )
            for index, shard in enumerate(self._shard_map.shards)
        ]

        self._previous_aggregates: dict[str, Any] = {}
        self.recoveries = 0
        self.checkpoints_written = 0
        self.checkpoint_bytes = 0

    @staticmethod
    def _analyze(program, initial_value, aggregators, fault_plan) -> None:
        """Strict-mode pre-flight: lint the program and spec values,
        validate the fault plan, raise
        :class:`repro.analysis.AnalysisError` on error findings.
        Findings are recorded as obs span events either way."""
        from repro.analysis import (
            AnalysisError,
            analyze_spec,
            check_fault_plan_object,
        )

        spec = PregelSpec(program=program, initial_value=initial_value,
                          aggregators=aggregators)
        report = analyze_spec(spec)
        if fault_plan is not None:
            report.extend(check_fault_plan_object(fault_plan))
        if not report.ok:
            name = getattr(program, "__name__",
                           type(program).__name__)
            raise AnalysisError(f"coordinator:{name}", report)

    # -- durability -------------------------------------------------------

    def _save_checkpoint(self, next_superstep: int) -> None:
        with span("dist.checkpoint",
                  superstep=next_superstep) as cp_span:
            checkpoint = Checkpoint(
                superstep=next_superstep,
                worker_states=[w.checkpoint_state()
                               for w in self.workers],
                previous_aggregates=dict(self._previous_aggregates))
            written = self._store.save(checkpoint)
            cp_span.set("bytes", written)
        self.checkpoints_written += 1
        self.checkpoint_bytes += written
        if is_enabled():
            registry = get_registry()
            registry.inc("dist.checkpoints")
            registry.inc("dist.checkpoint_bytes", written)
        if self._fault_plan is not None:
            fault = self._fault_plan.corruption(next_superstep)
            if fault is not None:
                self._store.corrupt(next_superstep, mode=fault.mode)
                if is_enabled():
                    get_registry().inc("dist.faults.corrupt")

    def _recover(self, fault: InjectedFault,
                 stats: list[DistSuperstepStats]) -> int:
        """Rewind every shard to the newest checkpoint that passes
        integrity validation; return the superstep to replay from.

        The :class:`~repro.dist.resilience.RecoverySupervisor` enforces
        the retry policy (escalating to ``RecoveryExhausted`` instead
        of looping), falls back past corrupt checkpoints, and rejects
        shard-count mismatches.
        """
        with span("dist.recovery", fault=str(fault),
                  fault_type=fault.fault_type,
                  superstep=getattr(fault, "superstep", -1)) as rec_span:
            checkpoint, event = self.supervisor.recover(
                fault, expected_shards=len(self.workers))
            for worker, state in zip(self.workers,
                                     checkpoint.worker_states):
                worker.restore(state)
            self._previous_aggregates = dict(
                checkpoint.previous_aggregates)
            del stats[checkpoint.superstep:]
            rec_span.set("restored_to", checkpoint.superstep)
            rec_span.set("attempt", event.attempt)
            rec_span.set("backoff_ms", event.backoff_ms)
            if event.corrupt_skipped:
                rec_span.set("corrupt_skipped",
                             list(event.corrupt_skipped))
        self.recoveries += 1
        if is_enabled():
            registry = get_registry()
            registry.inc("dist.recoveries")
            registry.inc(f"dist.faults.{fault.fault_type}")
            if event.corrupt_skipped:
                registry.inc("dist.checkpoint_corrupt",
                             len(event.corrupt_skipped))
            registry.observe("dist.recovery_ms", rec_span.duration_ms)
        return checkpoint.superstep

    # -- the superstep loop ----------------------------------------------

    def _execute_superstep(self, superstep: int) -> DistSuperstepStats:
        with span("dist.superstep", superstep=superstep) as step_span:
            results: list[WorkerStepResult] = []
            for worker in self.workers:
                delay_ms = 0.0
                if self._fault_plan is not None:
                    self._fault_plan.check(worker.name, superstep)
                    delay_ms = self._fault_plan.slow_delay(
                        worker.name, superstep)
                    if delay_ms and is_enabled():
                        get_registry().inc("dist.faults.slow")
                results.append(worker.run_superstep(
                    superstep, self._previous_aggregates,
                    injected_delay_ms=delay_ms))

            # Barrier: route sender-combined buffers, in worker order
            # then destination order — fixed, so replays are identical.
            # Pending drop/duplicate faults perturb delivery; the
            # accounting check below detects the mismatch and raises,
            # handing the superstep to the recovery supervisor.
            with span("dist.barrier", superstep=superstep) as barrier:
                # The barrier is the coordinator's cooperative yield
                # point: a DeadlineExceeded here is NOT an
                # InjectedFault, so it bypasses the recovery
                # supervisor and unwinds the whole run.
                check_deadline(f"dist.barrier:{superstep}")
                drop_budget = duplicate_budget = 0
                if self._fault_plan is not None:
                    for fault in self._fault_plan.barrier_faults(
                            superstep):
                        if fault.kind == "drop":
                            drop_budget += fault.count
                        else:
                            duplicate_budget += fault.count
                expected = sum(
                    len(msgs) for result in results
                    for buffer in result.remote.values()
                    for msgs in buffer.values())
                routed = 0
                delivered = 0
                for result in results:
                    for dest in sorted(result.remote):
                        dest_worker = self.workers[dest]
                        for target, messages in (
                                result.remote[dest].items()):
                            to_send = list(messages)
                            if drop_budget:
                                lost = min(drop_budget, len(to_send))
                                to_send = to_send[lost:]
                                drop_budget -= lost
                            if duplicate_budget and to_send:
                                extra = min(duplicate_budget,
                                            len(to_send))
                                to_send = to_send + to_send[:extra]
                                duplicate_budget -= extra
                            if to_send:
                                delivered += dest_worker.deliver(
                                    target, to_send)
                            routed += len(messages)
                barrier.set("messages_routed", routed)
                if delivered < expected:
                    raise MessageLoss(superstep, expected, delivered)
                if delivered > expected:
                    raise MessageDuplication(superstep, expected,
                                             delivered)

                merged = {name: identity for name, (_, identity)
                          in self._aggregators.items()}
                for result in results:
                    for name, partial in result.aggregates.items():
                        reduce_fn = self._aggregators[name][0]
                        merged[name] = reduce_fn(merged[name], partial)
                self._previous_aggregates = merged

            stats = DistSuperstepStats(
                superstep=superstep,
                active_vertices=sum(r.active_vertices for r in results),
                messages_sent=sum(r.messages_sent for r in results),
                messages_local=sum(r.messages_local for r in results),
                messages_routed=sum(r.messages_routed for r in results),
                messages_combined=sum(r.messages_combined
                                      for r in results),
                aggregates=merged)
            step_span.set("active_vertices", stats.active_vertices)
            step_span.set("messages_routed", stats.messages_routed)
            step_span.set("messages_combined", stats.messages_combined)
        if is_enabled():
            registry = get_registry()
            registry.inc("dist.supersteps")
            registry.inc("dist.messages_local", stats.messages_local)
            registry.inc("dist.messages_routed", stats.messages_routed)
            registry.inc("dist.messages_combined",
                         stats.messages_combined)
            registry.observe("dist.superstep_ms", step_span.duration_ms)
        return stats

    def run(self) -> DistributedResult:
        """Execute to completion, surviving planned worker kills."""
        with span("dist.run", k=self.k,
                  partitioner=self._partitioner_name,
                  vertices=self._graph.num_vertices()) as run_span:
            result = self._run_supersteps()
            run_span.set("supersteps", result.supersteps)
            run_span.set("recoveries", result.recoveries)
            run_span.set("messages_routed", result.routed_messages())
        if is_enabled():
            from repro.obs.memory import record_memory_gauges

            record_memory_gauges(prefix="dist.mem")
        return result

    def _run_supersteps(self) -> DistributedResult:
        stats: list[DistSuperstepStats] = []
        self._save_checkpoint(0)  # recovery floor for superstep-0 kills
        deadline = current_deadline()
        superstep = 0
        while True:
            if deadline is not None:
                deadline.check(f"dist.superstep:{superstep}")
            if not any(w.has_active() for w in self.workers):
                break
            if superstep >= self._max_supersteps:
                raise PregelError(
                    f"computation did not finish within "
                    f"{self._max_supersteps} supersteps")
            try:
                stats.append(self._execute_superstep(superstep))
                self.supervisor.note_progress()
            except InjectedFault as fault:
                superstep = self._recover(fault, stats)
                continue
            if (superstep + 1) % self._checkpoint_every == 0:
                self._save_checkpoint(superstep + 1)
            superstep += 1

        values = {
            vertex: self.workers[self._shard_map.shard_of(vertex)]
            .values[vertex]
            for vertex in self._vertex_order
        }
        return DistributedResult(
            values=values,
            supersteps=superstep,
            stats=stats,
            k=self.k,
            partitioner=self._partitioner_name,
            shard_sizes=self._shard_map.shard_sizes(),
            recoveries=self.recoveries,
            checkpoints_written=self.checkpoints_written,
            checkpoint_bytes=self.checkpoint_bytes,
            routing=self._shard_map.routing_stats(self._graph),
            recovery_events=list(self.supervisor.events))


def run_distributed_pregel(
    graph: Graph,
    spec_or_program: PregelSpec | VertexProgram,
    *,
    k: int = 4,
    partitioner="bfs",
    checkpoint_store: CheckpointStore | None = None,
    checkpoint_every: int = 1,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    seed: int = 0,
    strict: bool = False,
    **engine_kwargs: Any,
) -> DistributedResult:
    """One-shot convenience mirroring :func:`repro.dgps.run_pregel`.

    Accepts either a :class:`~repro.dgps.pregel.PregelSpec` (the
    executor-independent bundles built by
    :func:`repro.dgps.algorithms.pagerank_spec` etc.) or a bare program
    plus the usual ``initial_value`` / ``combiner`` / ``aggregators`` /
    ``max_supersteps`` keywords; explicit keywords override spec fields.
    """
    config: dict[str, Any] = {}
    if isinstance(spec_or_program, PregelSpec):
        program = spec_or_program.program
        config = {
            "initial_value": spec_or_program.initial_value,
            "combiner": spec_or_program.combiner,
            "aggregators": spec_or_program.aggregators,
            "max_supersteps": spec_or_program.max_supersteps,
        }
    else:
        program = spec_or_program
    config.update(engine_kwargs)
    return Coordinator(
        graph, program, k=k, partitioner=partitioner,
        checkpoint_store=checkpoint_store,
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan, retry_policy=retry_policy,
        seed=seed, strict=strict, **config).run()
