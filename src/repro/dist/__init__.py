"""Sharded BSP runtime: the distributed-execution substrate.

Scalability tops the paper's challenge list (Table 19, §6.1); this
package makes the reproduction's Pregel layer face it. Existing
``VertexProgram``s run *unchanged* across k simulated workers: a
:class:`Partitioner` (over :mod:`repro.algorithms.partitioning`)
assigns vertices to shards, each :class:`Worker` runs the shared
superstep-local compute over its shard, and the :class:`Coordinator`
enforces the barrier, routes sender-combined cross-shard messages,
merges aggregators, and checkpoints every barrier (with a content
checksum) to a pluggable :class:`CheckpointStore`.

Failure handling is a first-class workload: a :class:`FaultPlan`
describes kills, flaky workers, barrier message loss/duplication, slow
workers and checkpoint corruption; any *detected* fault
(:class:`InjectedFault`) unwinds to the
:class:`~repro.dist.resilience.RecoverySupervisor`, which restores all
shards from the newest checkpoint passing integrity validation
(falling back past corrupt ones), enforces a :class:`RetryPolicy`
(escalating to :class:`RecoveryExhausted` instead of looping), and
replays to a byte-identical result.

``python -m repro.dist.report`` prints the scaling/recovery summary;
``python -m repro.dist.chaos`` runs seeded randomized fault schedules
and asserts byte-identical recovery. Everything is wired through
:mod:`repro.obs` (a span per worker per superstep, counters for
routed/combined messages, checkpoint bytes, recoveries, faults by
type, and the MTTR-style ``dist.recovery_ms`` histogram).
"""

from repro.dist.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointStore,
    InMemoryCheckpointStore,
    JsonCheckpointStore,
    payload_checksum,
)
from repro.dist.coordinator import (
    Coordinator,
    DistributedResult,
    DistSuperstepStats,
    run_distributed_pregel,
)
from repro.dist.faults import (
    BarrierFault,
    CorruptionFault,
    FaultPlan,
    duplicate_faults,
    InjectedFault,
    KillFault,
    MessageDuplication,
    MessageLoss,
    SlowFault,
    WorkerKilled,
)
from repro.dist.partitioned import (
    PARTITION_STRATEGIES,
    Partitioner,
    ShardMap,
    build_shard_map,
    degree_skewed_partition,
    hash_partition,
)
from repro.dist.resilience import (
    RecoveryEvent,
    RecoveryExhausted,
    RecoverySupervisor,
    RetryPolicy,
    ShardCountMismatch,
)
from repro.dist.worker import Worker, WorkerStepResult

__all__ = [
    "PARTITION_STRATEGIES",
    "BarrierFault",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointStore",
    "Coordinator",
    "CorruptionFault",
    "DistSuperstepStats",
    "DistributedResult",
    "FaultPlan",
    "InMemoryCheckpointStore",
    "InjectedFault",
    "JsonCheckpointStore",
    "KillFault",
    "MessageDuplication",
    "MessageLoss",
    "Partitioner",
    "RecoveryEvent",
    "RecoveryExhausted",
    "RecoverySupervisor",
    "RetryPolicy",
    "ShardCountMismatch",
    "ShardMap",
    "SlowFault",
    "Worker",
    "WorkerKilled",
    "WorkerStepResult",
    "build_shard_map",
    "degree_skewed_partition",
    "duplicate_faults",
    "hash_partition",
    "payload_checksum",
    "run_distributed_pregel",
]
