"""Sharded BSP runtime: the distributed-execution substrate.

Scalability tops the paper's challenge list (Table 19, §6.1); this
package makes the reproduction's Pregel layer face it. Existing
``VertexProgram``s run *unchanged* across k simulated workers: a
:class:`Partitioner` (over :mod:`repro.algorithms.partitioning`)
assigns vertices to shards, each :class:`Worker` runs the shared
superstep-local compute over its shard, and the :class:`Coordinator`
enforces the barrier, routes sender-combined cross-shard messages,
merges aggregators, checkpoints every barrier to a pluggable
:class:`CheckpointStore`, and — when a :class:`FaultPlan` kills a
worker mid-computation — restores all shards from the last checkpoint
and replays to a byte-identical result.

``python -m repro.dist.report`` prints the scaling/recovery summary;
everything is wired through :mod:`repro.obs` (a span per worker per
superstep, counters for routed/combined messages, checkpoint bytes,
recoveries).
"""

from repro.dist.checkpoint import (
    Checkpoint,
    CheckpointStore,
    InMemoryCheckpointStore,
    JsonCheckpointStore,
)
from repro.dist.coordinator import (
    Coordinator,
    DistributedResult,
    DistSuperstepStats,
    run_distributed_pregel,
)
from repro.dist.faults import FaultPlan, KillFault, WorkerKilled
from repro.dist.partitioned import (
    PARTITION_STRATEGIES,
    Partitioner,
    ShardMap,
    build_shard_map,
    degree_skewed_partition,
    hash_partition,
)
from repro.dist.worker import Worker, WorkerStepResult

__all__ = [
    "PARTITION_STRATEGIES",
    "Checkpoint",
    "CheckpointStore",
    "Coordinator",
    "DistSuperstepStats",
    "DistributedResult",
    "FaultPlan",
    "InMemoryCheckpointStore",
    "JsonCheckpointStore",
    "KillFault",
    "Partitioner",
    "ShardMap",
    "Worker",
    "WorkerKilled",
    "WorkerStepResult",
    "build_shard_map",
    "degree_skewed_partition",
    "hash_partition",
    "run_distributed_pregel",
]
