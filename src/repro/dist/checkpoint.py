"""Durability for the distributed runtime: per-superstep checkpoints.

A :class:`Checkpoint` freezes everything the coordinator needs to
restart a computation at a superstep barrier: every worker's vertex
values, halted set and pending inbox (messages already routed and due
for delivery at ``superstep``), plus the merged aggregator values from
the superstep before. Recovery is therefore a pure rewind — restore
all shards and replay — which is what makes a recovered run
byte-identical to a fault-free one.

Integrity: every payload carries a content checksum
(``sha256:<hex>`` over the canonical JSON of the rest of the payload),
written at save time and verified on load by both stores. A checkpoint
whose stored and recomputed checksums disagree — or whose serialized
form no longer parses — raises :class:`CheckpointCorrupt`, which the
recovery supervisor treats as "fall back to the previous checkpoint",
never as good state.

Two stores implement the pluggable interface:

* :class:`InMemoryCheckpointStore` — deep-copied snapshots in the
  coordinator's process; survives worker kills (the simulated failure
  domain), not process death.
* :class:`JsonCheckpointStore` — one JSON file per checkpoint in a
  directory; survives the process, at the cost of requiring vertex
  ids, messages and values to be JSON-representable (ints, strings,
  floats including ``inf``, lists, dicts). Saves are atomic
  (temp file + ``os.replace``), so a crash mid-save can never leave a
  torn latest checkpoint — the previous bytes stay intact until the
  new ones are fully on disk.

Both stores expose a ``corrupt(superstep, mode)`` hook used by the
chaos harness to simulate storage damage, and ``prune(keep_last=n)``
so long chaos runs don't accumulate unbounded checkpoints.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

#: checksum scheme identifier embedded in every payload.
CHECKSUM_ALGORITHM = "sha256"


class CheckpointCorrupt(ReproError):
    """A checkpoint failed integrity validation on load."""

    def __init__(self, message: str, superstep: int | None = None):
        super().__init__(message)
        self.superstep = superstep


def payload_checksum(body: dict[str, Any]) -> str:
    """``sha256:<hex>`` over the canonical JSON encoding of ``body``.

    ``sort_keys`` + compact separators make the encoding canonical;
    ``default=repr`` lets the in-memory store checksum payloads whose
    values are not JSON-representable.
    """
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"),
                         default=repr)
    digest = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
    return f"{CHECKSUM_ALGORITHM}:{digest}"


@dataclass
class Checkpoint:
    """State at a superstep barrier; ``superstep`` is the next one to run."""

    superstep: int
    worker_states: list[dict[str, Any]]
    previous_aggregates: dict[str, Any]

    def body(self) -> dict[str, Any]:
        """The JSON-ready payload, minus the checksum (vertex-keyed
        maps become pair lists)."""
        return {
            "superstep": self.superstep,
            "previous_aggregates": dict(self.previous_aggregates),
            "workers": [
                {
                    "values": [[v, val] for v, val
                               in state["values"].items()],
                    "halted": list(state["halted"]),
                    "inbox": [[v, list(msgs)] for v, msgs
                              in state["inbox"].items()],
                }
                for state in self.worker_states
            ],
        }

    def to_payload(self) -> dict[str, Any]:
        """The full payload: body plus its content checksum."""
        payload = self.body()
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def verify_payload(cls, payload: dict[str, Any], *,
                       where: str = "checkpoint") -> None:
        """Raise :class:`CheckpointCorrupt` if the payload's stored
        checksum does not match its content (legacy payloads without a
        checksum pass, for compatibility with pre-integrity files)."""
        stored = payload.get("checksum")
        if stored is None:
            return
        body = {key: value for key, value in payload.items()
                if key != "checksum"}
        computed = payload_checksum(body)
        if computed != stored:
            raise CheckpointCorrupt(
                f"{where}: checksum mismatch "
                f"(stored {stored}, computed {computed})",
                superstep=payload.get("superstep"))

    @classmethod
    def from_payload(cls, payload: dict[str, Any], *,
                     where: str = "checkpoint") -> "Checkpoint":
        cls.verify_payload(payload, where=where)
        return cls(
            superstep=payload["superstep"],
            previous_aggregates=dict(payload["previous_aggregates"]),
            worker_states=[
                {
                    "values": {v: val for v, val in worker["values"]},
                    "halted": set(worker["halted"]),
                    "inbox": {v: list(msgs)
                              for v, msgs in worker["inbox"]},
                }
                for worker in payload["workers"]
            ])


class CheckpointStore:
    """Interface: persist checkpoints, hand back the latest on demand.

    ``save`` returns the number of bytes persisted so the coordinator
    can feed the ``dist.checkpoint_bytes`` counter. ``load`` /
    ``load_latest`` must validate integrity and raise
    :class:`CheckpointCorrupt` rather than return damaged state.
    """

    def save(self, checkpoint: Checkpoint) -> int:
        raise NotImplementedError

    def load_latest(self) -> Checkpoint | None:
        raise NotImplementedError

    def load(self, superstep: int) -> Checkpoint:
        raise NotImplementedError

    def supersteps(self) -> list[int]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def prune(self, keep_last: int) -> list[int]:
        """Drop all but the newest ``keep_last`` checkpoints; return
        the supersteps that were removed."""
        raise NotImplementedError

    def corrupt(self, superstep: int, mode: str = "garble") -> None:
        """Chaos hook: damage a stored checkpoint in place so the next
        load fails integrity validation (``garble``) or parsing
        (``truncate``). Simulation-only — never called on real data."""
        raise NotImplementedError


def _validate_keep_last(keep_last: int) -> None:
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")


class InMemoryCheckpointStore(CheckpointStore):
    """Deep-copied snapshots keyed by superstep (the default store)."""

    def __init__(self):
        self._checkpoints: dict[int, Checkpoint] = {}
        self._checksums: dict[int, str] = {}

    def save(self, checkpoint: Checkpoint) -> int:
        snapshot = copy.deepcopy(checkpoint)
        self._checkpoints[checkpoint.superstep] = snapshot
        self._checksums[checkpoint.superstep] = payload_checksum(
            snapshot.body())
        # repr-length as the size estimate: works for any vertex /
        # message type, close enough for the bytes counter.
        return len(repr(snapshot.to_payload()))

    def load_latest(self) -> Checkpoint | None:
        if not self._checkpoints:
            return None
        return self.load(max(self._checkpoints))

    def load(self, superstep: int) -> Checkpoint:
        checkpoint = self._checkpoints[superstep]
        computed = payload_checksum(checkpoint.body())
        stored = self._checksums.get(superstep)
        if stored is not None and computed != stored:
            raise CheckpointCorrupt(
                f"in-memory checkpoint {superstep}: checksum mismatch "
                f"(stored {stored}, computed {computed})",
                superstep=superstep)
        return copy.deepcopy(checkpoint)

    def supersteps(self) -> list[int]:
        return sorted(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints.clear()
        self._checksums.clear()

    def prune(self, keep_last: int) -> list[int]:
        _validate_keep_last(keep_last)
        ordered = sorted(self._checkpoints)
        dropped = ordered[:-keep_last] if keep_last < len(ordered) else []
        for superstep in dropped:
            del self._checkpoints[superstep]
            self._checksums.pop(superstep, None)
        return dropped

    def corrupt(self, superstep: int, mode: str = "garble") -> None:
        checkpoint = self._checkpoints[superstep]
        if mode == "truncate":
            checkpoint.worker_states = checkpoint.worker_states[:-1]
        elif mode == "garble":
            checkpoint.previous_aggregates["__garbled__"] = "\x00"
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")


class JsonCheckpointStore(CheckpointStore):
    """One ``checkpoint-NNNNNN.json`` file per superstep barrier."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, superstep: int) -> str:
        return os.path.join(self.directory,
                            f"checkpoint-{superstep:06d}.json")

    def save(self, checkpoint: Checkpoint) -> int:
        """Atomic write: encode, land on a temp file, ``os.replace``.

        A crash anywhere before the replace leaves the previous
        checkpoint file (if any) byte-for-byte intact; the replace
        itself is atomic on POSIX and Windows.
        """
        encoded = json.dumps(checkpoint.to_payload())
        path = self._path(checkpoint.superstep)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return len(encoded.encode("utf-8"))

    def _saved(self) -> dict[int, str]:
        found = {}
        for name in os.listdir(self.directory):
            if name.startswith("checkpoint-") and name.endswith(".json"):
                try:
                    found[int(name[len("checkpoint-"):-len(".json")])] = \
                        os.path.join(self.directory, name)
                except ValueError:
                    continue
        return found

    def load_latest(self) -> Checkpoint | None:
        saved = self._saved()
        if not saved:
            return None
        return self.load(max(saved))

    def load(self, superstep: int) -> Checkpoint:
        path = self._path(superstep)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointCorrupt(
                f"checkpoint file {path} is not valid JSON "
                f"(torn or truncated write?): {exc}",
                superstep=superstep) from exc
        return Checkpoint.from_payload(payload, where=path)

    def supersteps(self) -> list[int]:
        return sorted(self._saved())

    def clear(self) -> None:
        for path in self._saved().values():
            try:
                os.remove(path)
            except FileNotFoundError:
                pass  # lost a race with another cleaner — already gone

    def prune(self, keep_last: int) -> list[int]:
        _validate_keep_last(keep_last)
        saved = self._saved()
        ordered = sorted(saved)
        dropped = ordered[:-keep_last] if keep_last < len(ordered) else []
        for superstep in dropped:
            try:
                os.remove(saved[superstep])
            except FileNotFoundError:
                pass
        return dropped

    def corrupt(self, superstep: int, mode: str = "garble") -> None:
        path = self._path(superstep)
        if mode == "truncate":
            with open(path, encoding="utf-8") as handle:
                data = handle.read()
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(data[:max(1, len(data) // 2)])
        elif mode == "garble":
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            payload["previous_aggregates"]["__garbled__"] = 1
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
