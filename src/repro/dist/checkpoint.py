"""Durability for the distributed runtime: per-superstep checkpoints.

A :class:`Checkpoint` freezes everything the coordinator needs to
restart a computation at a superstep barrier: every worker's vertex
values, halted set and pending inbox (messages already routed and due
for delivery at ``superstep``), plus the merged aggregator values from
the superstep before. Recovery is therefore a pure rewind — restore
all shards and replay — which is what makes a recovered run
byte-identical to a fault-free one.

Two stores implement the pluggable interface:

* :class:`InMemoryCheckpointStore` — deep-copied snapshots in the
  coordinator's process; survives worker kills (the simulated failure
  domain), not process death.
* :class:`JsonCheckpointStore` — one JSON file per checkpoint in a
  directory; survives the process, at the cost of requiring vertex
  ids, messages and values to be JSON-representable (ints, strings,
  floats including ``inf``, lists, dicts).
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass
from typing import Any


@dataclass
class Checkpoint:
    """State at a superstep barrier; ``superstep`` is the next one to run."""

    superstep: int
    worker_states: list[dict[str, Any]]
    previous_aggregates: dict[str, Any]

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready dict (vertex-keyed maps become pair lists)."""
        return {
            "superstep": self.superstep,
            "previous_aggregates": dict(self.previous_aggregates),
            "workers": [
                {
                    "values": [[v, val] for v, val
                               in state["values"].items()],
                    "halted": list(state["halted"]),
                    "inbox": [[v, list(msgs)] for v, msgs
                              in state["inbox"].items()],
                }
                for state in self.worker_states
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Checkpoint":
        return cls(
            superstep=payload["superstep"],
            previous_aggregates=dict(payload["previous_aggregates"]),
            worker_states=[
                {
                    "values": {v: val for v, val in worker["values"]},
                    "halted": set(worker["halted"]),
                    "inbox": {v: list(msgs)
                              for v, msgs in worker["inbox"]},
                }
                for worker in payload["workers"]
            ])


class CheckpointStore:
    """Interface: persist checkpoints, hand back the latest on demand.

    ``save`` returns the number of bytes persisted so the coordinator
    can feed the ``dist.checkpoint_bytes`` counter.
    """

    def save(self, checkpoint: Checkpoint) -> int:
        raise NotImplementedError

    def load_latest(self) -> Checkpoint | None:
        raise NotImplementedError

    def load(self, superstep: int) -> Checkpoint:
        raise NotImplementedError

    def supersteps(self) -> list[int]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class InMemoryCheckpointStore(CheckpointStore):
    """Deep-copied snapshots keyed by superstep (the default store)."""

    def __init__(self):
        self._checkpoints: dict[int, Checkpoint] = {}

    def save(self, checkpoint: Checkpoint) -> int:
        snapshot = copy.deepcopy(checkpoint)
        self._checkpoints[checkpoint.superstep] = snapshot
        # repr-length as the size estimate: works for any vertex /
        # message type, close enough for the bytes counter.
        return len(repr(snapshot.to_payload()))

    def load_latest(self) -> Checkpoint | None:
        if not self._checkpoints:
            return None
        return self.load(max(self._checkpoints))

    def load(self, superstep: int) -> Checkpoint:
        return copy.deepcopy(self._checkpoints[superstep])

    def supersteps(self) -> list[int]:
        return sorted(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints.clear()


class JsonCheckpointStore(CheckpointStore):
    """One ``checkpoint-NNNNNN.json`` file per superstep barrier."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, superstep: int) -> str:
        return os.path.join(self.directory,
                            f"checkpoint-{superstep:06d}.json")

    def save(self, checkpoint: Checkpoint) -> int:
        encoded = json.dumps(checkpoint.to_payload())
        path = self._path(checkpoint.superstep)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(encoded)
        return len(encoded.encode("utf-8"))

    def _saved(self) -> dict[int, str]:
        found = {}
        for name in os.listdir(self.directory):
            if name.startswith("checkpoint-") and name.endswith(".json"):
                try:
                    found[int(name[len("checkpoint-"):-len(".json")])] = \
                        os.path.join(self.directory, name)
                except ValueError:
                    continue
        return found

    def load_latest(self) -> Checkpoint | None:
        saved = self._saved()
        if not saved:
            return None
        return self.load(max(saved))

    def load(self, superstep: int) -> Checkpoint:
        with open(self._path(superstep), encoding="utf-8") as handle:
            return Checkpoint.from_payload(json.load(handle))

    def supersteps(self) -> list[int]:
        return sorted(self._saved())

    def clear(self) -> None:
        for path in self._saved().values():
            os.remove(path)
