"""Recovery supervision: retry policy, checkpoint fallback, escalation.

PR 2's recovery was a single unconditional rewind: load the latest
checkpoint, restore, replay. That is one happy-path failure mode — it
loops forever on a fault that refires every replay, and it trusts
whatever bytes the store hands back. This module is the supervisor
between the coordinator and the :class:`~repro.dist.checkpoint
.CheckpointStore`:

* a :class:`RetryPolicy` caps *consecutive* recovery attempts (the
  counter resets whenever the run completes a superstep, i.e. makes
  forward progress) and computes an exponential backoff schedule that
  is **recorded, not slept** — the simulated runtime stays fast and
  deterministic, while the schedule lands in spans / recovery events
  for MTTR-style analysis;
* checkpoint selection walks the store newest-first and *falls back*
  past any checkpoint that fails integrity validation
  (:class:`~repro.dist.checkpoint.CheckpointCorrupt`), so a corrupted
  latest checkpoint costs extra replay distance instead of the run;
* exhaustion — attempts over budget, or no uncorrupted checkpoint
  left — escalates to the named :class:`RecoveryExhausted` error
  instead of an infinite replay loop;
* a restored checkpoint whose shard count differs from the live run
  raises :class:`ShardCountMismatch` naming both counts, rather than
  silently ``zip``-truncating worker state.

Every successful recovery is recorded as a :class:`RecoveryEvent`
(attempt number, fault, replay distance, backoff, corrupt checkpoints
skipped) — the chaos harness and ``DistributedResult`` surface these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dist.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointStore,
)
from repro.errors import ReproError


class RecoveryExhausted(ReproError):
    """Recovery gave up: retry budget spent, or no usable checkpoint."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class ShardCountMismatch(ReproError):
    """A restored checkpoint's worker count differs from the live run."""

    def __init__(self, superstep: int, expected: int, found: int):
        super().__init__(
            f"checkpoint at superstep {superstep} holds {found} worker "
            f"shard(s) but the live run has {expected}; refusing to "
            f"restore across mismatched topologies")
        self.superstep = superstep
        self.expected = expected
        self.found = found


@dataclass(frozen=True)
class RetryPolicy:
    """How hard recovery tries before escalating.

    ``max_attempts`` bounds *consecutive* recoveries without forward
    progress; completing any superstep resets the count. The backoff
    schedule is exponential (``base * factor**(attempt-1)``, capped) —
    recorded on recovery events and spans, never slept.
    """

    max_attempts: int = 8
    backoff_base_ms: float = 10.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 1000.0
    #: Jitter fraction in [0, 1): each backoff is scaled by a factor
    #: drawn uniformly from ``[1 - jitter, 1 + jitter]``. The draw
    #: comes from a *caller-supplied* seeded ``random.Random`` (see
    #: :meth:`backoff_ms`), keeping the repo's seeded-determinism
    #: contract — no hidden global randomness.
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """Backoff recorded for the ``attempt``-th consecutive recovery.

        With ``jitter`` configured and a seeded ``rng`` supplied, the
        exponential value is scaled by a uniform draw from
        ``[1 - jitter, 1 + jitter]`` — clients desynchronize their
        retries without losing per-seed reproducibility. Without an
        rng the jitter is skipped (the recovery supervisor's recorded
        schedules stay exact).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        backoff = min(self.backoff_base_ms
                      * self.backoff_factor ** (attempt - 1),
                      self.backoff_cap_ms)
        if self.jitter and rng is not None:
            backoff *= rng.uniform(1.0 - self.jitter,
                                   1.0 + self.jitter)
        return backoff

    def schedule(self, rng=None) -> list[float]:
        """The full recorded backoff schedule, one entry per attempt."""
        return [self.backoff_ms(attempt, rng)
                for attempt in range(1, self.max_attempts + 1)]


@dataclass
class RecoveryEvent:
    """One successful recovery, as recorded by the supervisor."""

    attempt: int            #: consecutive attempt number (1-based)
    fault: str              #: str() of the triggering fault
    fault_type: str         #: counter tag: kill/flaky/drop/duplicate/...
    failed_at: int          #: superstep the fault surfaced at
    restored_to: int        #: superstep the restored checkpoint resumes at
    backoff_ms: float       #: recorded (not slept) backoff for this attempt
    corrupt_skipped: list[int] = field(default_factory=list)

    @property
    def replayed(self) -> int:
        """Supersteps this recovery rewound (replay distance)."""
        return max(0, self.failed_at - self.restored_to)

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "fault": self.fault,
            "fault_type": self.fault_type,
            "failed_at": self.failed_at,
            "restored_to": self.restored_to,
            "replayed": self.replayed,
            "backoff_ms": self.backoff_ms,
            "corrupt_skipped": list(self.corrupt_skipped),
        }


class RecoverySupervisor:
    """Chooses the checkpoint to restore and enforces the retry policy."""

    def __init__(self, store: CheckpointStore,
                 policy: RetryPolicy | None = None):
        self.store = store
        self.policy = policy or RetryPolicy()
        self.events: list[RecoveryEvent] = []
        self._consecutive = 0

    @property
    def consecutive_attempts(self) -> int:
        """Recoveries since the run last completed a superstep."""
        return self._consecutive

    def note_progress(self) -> None:
        """The run completed a superstep — reset the attempt counter."""
        self._consecutive = 0

    def recover(self, fault: BaseException,
                expected_shards: int) -> tuple[Checkpoint, RecoveryEvent]:
        """Pick the newest checkpoint that passes integrity validation.

        Raises :class:`RecoveryExhausted` when the consecutive-attempt
        budget is spent or no uncorrupted checkpoint remains, and
        :class:`ShardCountMismatch` when the restored topology does not
        match the live run.
        """
        self._consecutive += 1
        attempt = self._consecutive
        if attempt > self.policy.max_attempts:
            raise RecoveryExhausted(
                f"recovery abandoned after {attempt - 1} consecutive "
                f"attempt(s) without progress (policy allows "
                f"{self.policy.max_attempts}); last fault: {fault}",
                attempts=attempt - 1) from fault
        backoff = self.policy.backoff_ms(attempt)
        corrupt_skipped: list[int] = []
        for superstep in sorted(self.store.supersteps(), reverse=True):
            try:
                checkpoint = self.store.load(superstep)
            except CheckpointCorrupt:
                corrupt_skipped.append(superstep)
                continue
            found = len(checkpoint.worker_states)
            if found != expected_shards:
                raise ShardCountMismatch(superstep, expected_shards,
                                         found)
            event = RecoveryEvent(
                attempt=attempt,
                fault=str(fault),
                fault_type=getattr(fault, "fault_type",
                                   type(fault).__name__),
                failed_at=getattr(fault, "superstep", superstep),
                restored_to=superstep,
                backoff_ms=backoff,
                corrupt_skipped=corrupt_skipped)
            self.events.append(event)
            return checkpoint, event
        suffix = (f" ({len(corrupt_skipped)} corrupt checkpoint(s) "
                  f"skipped: {corrupt_skipped})" if corrupt_skipped
                  else "")
        raise RecoveryExhausted(
            f"no usable checkpoint to recover from after {fault}{suffix}",
            attempts=attempt) from fault
