"""Fault injection for the distributed runtime.

Scalability work that never kills a worker is wishful thinking — the
paper's own challenge list (§6.1) and the benchmarking literature both
insist failure behaviour is part of the workload. A :class:`FaultPlan`
is a tiny declarative DSL for chaos: *kill worker w1 when it reaches
superstep 3*. The coordinator consults the plan at each worker's
superstep entry; a planned kill raises :class:`WorkerKilled`
mid-computation (other workers may already have run that superstep),
and each fault fires exactly once so recovery can replay to completion.

>>> plan = FaultPlan().kill("w1", at_superstep=3)
>>> plan = FaultPlan.parse("w1@3, w0@5")   # same thing, as a string
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class WorkerKilled(ReproError):
    """An injected fault took a worker down mid-superstep."""

    def __init__(self, worker: str, superstep: int):
        super().__init__(
            f"worker {worker!r} killed by fault plan at "
            f"superstep {superstep}")
        self.worker = worker
        self.superstep = superstep


@dataclass(frozen=True)
class KillFault:
    """Kill ``worker`` when it is about to execute ``superstep``."""

    worker: str
    superstep: int

    def __str__(self) -> str:
        return f"{self.worker}@{self.superstep}"


class FaultPlan:
    """An ordered set of injected faults, each firing at most once."""

    def __init__(self, faults: list[KillFault] | None = None):
        self._faults: list[KillFault] = list(faults or [])
        self._fired: set[KillFault] = set()

    def kill(self, worker: str, at_superstep: int) -> "FaultPlan":
        """Schedule a kill; chainable."""
        if at_superstep < 0:
            raise ValueError("at_superstep must be >= 0")
        self._faults.append(KillFault(worker, at_superstep))
        return self

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """``"w1@3, w0@5"`` -> kill w1 at superstep 3, w0 at 5."""
        plan = cls()
        for chunk in spec.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            worker, _, superstep = chunk.partition("@")
            if not worker or not superstep:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected worker@superstep")
            plan.kill(worker.strip(), int(superstep))
        return plan

    @property
    def faults(self) -> list[KillFault]:
        return list(self._faults)

    @property
    def fired(self) -> list[KillFault]:
        """Faults that have already taken a worker down."""
        return [f for f in self._faults if f in self._fired]

    def check(self, worker: str, superstep: int) -> None:
        """Raise :class:`WorkerKilled` if a pending fault matches.

        The matched fault is marked fired first, so the post-recovery
        replay of the same superstep is not killed again.
        """
        for fault in self._faults:
            if (fault not in self._fired and fault.worker == worker
                    and fault.superstep == superstep):
                self._fired.add(fault)
                raise WorkerKilled(worker, superstep)

    def reset(self) -> None:
        """Re-arm every fault (for reusing a plan across runs)."""
        self._fired.clear()

    def __repr__(self) -> str:
        parts = ", ".join(str(f) for f in self._faults) or "no faults"
        return f"FaultPlan({parts})"
