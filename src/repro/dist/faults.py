"""Fault injection for the distributed runtime.

Scalability work that never kills a worker is wishful thinking — the
paper's own challenge list (§6.1) and the benchmarking literature both
insist failure behaviour is part of the workload. A :class:`FaultPlan`
is a tiny declarative DSL for chaos, covering the fault classes real
deployments see:

* **kill** — take a worker down as it enters a superstep
  (``w1@3``); the original one-shot fault.
* **flaky** — a worker that fails N *consecutive* attempts at the
  same superstep before succeeding (``w1@3x2``), exercising repeated
  recovery of the same frontier.
* **drop / duplicate** — lose or double cross-shard messages at the
  routing barrier (``drop@3`` / ``dup@3``); the coordinator's
  delivery accounting detects the mismatch and raises
  :class:`MessageLoss` / :class:`MessageDuplication`.
* **slow** — inject a recorded (not slept) per-worker delay
  (``w1@3+25ms``) so straggler tooling has something to find.
* **corrupt** — garble or truncate a checkpoint right after it is
  written (``garble@3`` / ``truncate@3``); the checksum in
  :mod:`repro.dist.checkpoint` catches it on load and the recovery
  supervisor falls back to the previous checkpoint.

The coordinator consults the plan at each worker's superstep entry and
at the routing barrier; every fault fires a bounded number of times
(once, or ``attempts`` times for flaky kills) so recovery can replay
to completion.

>>> plan = FaultPlan().kill("w1", at_superstep=3)
>>> plan = FaultPlan.parse("w1@3, w0@5")       # same thing, as a string
>>> plan = FaultPlan.parse("w1@2x3, drop@4, garble@5")   # chaos mix
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class InjectedFault(ReproError):
    """Base class for *detected* injected faults.

    Everything raising this unwinds to the coordinator's superstep
    loop, which hands the error to the recovery supervisor. The
    ``fault_type`` tag keys the ``dist.faults.<type>`` counters.
    """

    fault_type = "fault"

    superstep: int


class WorkerKilled(InjectedFault):
    """An injected fault took a worker down mid-superstep."""

    def __init__(self, worker: str, superstep: int,
                 attempt: int = 1, attempts: int = 1):
        message = (f"worker {worker!r} killed by fault plan at "
                   f"superstep {superstep}")
        if attempts > 1:
            message += f" (flaky: attempt {attempt}/{attempts})"
        super().__init__(message)
        self.worker = worker
        self.superstep = superstep
        self.attempt = attempt
        self.attempts = attempts
        self.fault_type = "flaky" if attempts > 1 else "kill"


class MessageLoss(InjectedFault):
    """The routing barrier delivered fewer messages than were sent."""

    fault_type = "drop"

    def __init__(self, superstep: int, expected: int, delivered: int):
        super().__init__(
            f"barrier integrity check failed at superstep {superstep}: "
            f"{expected} messages routed but {delivered} delivered "
            f"({expected - delivered} lost)")
        self.superstep = superstep
        self.expected = expected
        self.delivered = delivered


class MessageDuplication(InjectedFault):
    """The routing barrier delivered more messages than were sent."""

    fault_type = "duplicate"

    def __init__(self, superstep: int, expected: int, delivered: int):
        super().__init__(
            f"barrier integrity check failed at superstep {superstep}: "
            f"{expected} messages routed but {delivered} delivered "
            f"({delivered - expected} duplicated)")
        self.superstep = superstep
        self.expected = expected
        self.delivered = delivered


@dataclass(frozen=True)
class KillFault:
    """Kill ``worker`` when it is about to execute ``superstep``.

    ``attempts > 1`` makes the worker *flaky*: it fails that many
    consecutive attempts at the superstep, then succeeds.
    """

    worker: str
    superstep: int
    attempts: int = 1

    def __str__(self) -> str:
        base = f"{self.worker}@{self.superstep}"
        return f"{base}x{self.attempts}" if self.attempts > 1 else base


@dataclass(frozen=True)
class SlowFault:
    """Record ``delay_ms`` of injected latency on one worker's superstep."""

    worker: str
    superstep: int
    delay_ms: float = 25.0

    def __str__(self) -> str:
        return f"{self.worker}@{self.superstep}+{self.delay_ms:g}ms"


@dataclass(frozen=True)
class BarrierFault:
    """Drop or duplicate ``count`` routed messages at one barrier."""

    kind: str  # "drop" | "duplicate"
    superstep: int
    count: int = 1

    def __str__(self) -> str:
        word = "drop" if self.kind == "drop" else "dup"
        suffix = f"x{self.count}" if self.count != 1 else ""
        return f"{word}@{self.superstep}{suffix}"


@dataclass(frozen=True)
class CorruptionFault:
    """Corrupt the checkpoint labelled ``superstep`` right after it is
    saved (``garble``: perturb the payload under the checksum;
    ``truncate``: tear the serialized form in half)."""

    superstep: int
    mode: str = "garble"

    def __str__(self) -> str:
        return f"{self.mode}@{self.superstep}"


Fault = KillFault | SlowFault | BarrierFault | CorruptionFault


def _fault_slot(fault: Fault) -> tuple:
    """The scheduling slot a fault occupies; two faults sharing a slot
    are duplicates (kill and flaky compete for the same worker entry;
    garble and truncate damage the same checkpoint)."""
    if isinstance(fault, KillFault):
        return ("kill", fault.worker, fault.superstep)
    if isinstance(fault, SlowFault):
        return ("slow", fault.worker, fault.superstep)
    if isinstance(fault, BarrierFault):
        return (fault.kind, fault.superstep)
    return ("corrupt", fault.superstep)


def duplicate_faults(faults: list[Fault]) -> list[str]:
    """Describe every fault occupying an already-used slot.

    Used by :meth:`FaultPlan.parse` (reject, instead of the historical
    silent last-write-wins) and by :mod:`repro.analysis.config_check`
    as a pure pre-flight checker.
    """
    seen: dict[tuple, Fault] = {}
    duplicates = []
    for fault in faults:
        slot = _fault_slot(fault)
        if slot in seen:
            duplicates.append(f"{fault} duplicates {seen[slot]}")
        else:
            seen[slot] = fault
    return duplicates

#: chunk prefixes the parser treats as non-worker fault words.
_BARRIER_WORDS = {"drop": "drop", "dup": "duplicate",
                  "duplicate": "duplicate"}
_CORRUPT_WORDS = {"corrupt": "garble", "garble": "garble",
                  "truncate": "truncate"}


def _parse_int(text: str, chunk: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"bad fault spec {chunk!r}: {what} {text!r} "
            f"is not an integer") from None


def _parse_float(text: str, chunk: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad fault spec {chunk!r}: {what} {text!r} "
            f"is not a number") from None


class FaultPlan:
    """An ordered set of injected faults, each firing a bounded number
    of times (once, or ``attempts`` times for flaky kills)."""

    def __init__(self, faults: list[Fault] | None = None):
        self._faults: list[Fault] = list(faults or [])
        #: fault index -> number of times it has fired
        self._fire_counts: dict[int, int] = {}

    # -- builders (all chainable) ----------------------------------------

    def _add(self, fault: Fault) -> "FaultPlan":
        if fault.superstep < 0:
            raise ValueError("at_superstep must be >= 0")
        self._faults.append(fault)
        return self

    def kill(self, worker: str, at_superstep: int,
             attempts: int = 1) -> "FaultPlan":
        """Schedule a kill (``attempts > 1`` makes it flaky)."""
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        return self._add(KillFault(worker, at_superstep, attempts))

    def flaky(self, worker: str, at_superstep: int,
              attempts: int = 2) -> "FaultPlan":
        """A worker that fails ``attempts`` consecutive tries, then runs."""
        if attempts < 2:
            raise ValueError("a flaky fault needs attempts >= 2")
        return self.kill(worker, at_superstep, attempts=attempts)

    def slow(self, worker: str, at_superstep: int,
             delay_ms: float = 25.0) -> "FaultPlan":
        """Inject (record) ``delay_ms`` of latency on one superstep."""
        if delay_ms <= 0:
            raise ValueError("delay_ms must be > 0")
        return self._add(SlowFault(worker, at_superstep, delay_ms))

    def drop_messages(self, at_superstep: int,
                      count: int = 1) -> "FaultPlan":
        """Lose ``count`` routed messages at the superstep's barrier."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self._add(BarrierFault("drop", at_superstep, count))

    def duplicate_messages(self, at_superstep: int,
                           count: int = 1) -> "FaultPlan":
        """Deliver ``count`` routed messages twice at the barrier."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self._add(BarrierFault("duplicate", at_superstep, count))

    def corrupt_checkpoint(self, at_superstep: int,
                           mode: str = "garble") -> "FaultPlan":
        """Damage the checkpoint labelled ``at_superstep`` after save."""
        if mode not in ("garble", "truncate"):
            raise ValueError(
                f"unknown corruption mode {mode!r} "
                f"(expected 'garble' or 'truncate')")
        return self._add(CorruptionFault(at_superstep, mode))

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the chaos DSL, e.g. ``"w1@3x2, drop@4, w0@2+25ms,
        garble@5"``.

        Chunk grammar (comma/semicolon separated):

        * ``WORKER@STEP`` — kill
        * ``WORKER@STEPxN`` — flaky kill, N consecutive failures
        * ``WORKER@STEP+DELAY[ms]`` — slow worker
        * ``drop@STEP[xN]`` / ``dup@STEP[xN]`` — barrier message faults
        * ``garble@STEP`` / ``truncate@STEP`` / ``corrupt@STEP`` —
          checkpoint corruption (``corrupt`` is an alias for garble)
        """
        plan = cls()
        for chunk in spec.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            target, _, rest = chunk.partition("@")
            target = target.strip()
            rest = rest.strip()
            if not target or not rest:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected worker@superstep")
            if target in _CORRUPT_WORDS:
                plan.corrupt_checkpoint(
                    _parse_int(rest, chunk, "superstep"),
                    mode=_CORRUPT_WORDS[target])
            elif target in _BARRIER_WORDS:
                step_text, _, count_text = rest.partition("x")
                superstep = _parse_int(step_text, chunk, "superstep")
                count = (_parse_int(count_text, chunk, "count")
                         if count_text else 1)
                plan._add(BarrierFault(_BARRIER_WORDS[target],
                                       superstep, count))
            elif "+" in rest:
                step_text, _, delay_text = rest.partition("+")
                delay_text = delay_text.strip()
                if delay_text.endswith("ms"):
                    delay_text = delay_text[:-2]
                plan.slow(target,
                          _parse_int(step_text, chunk, "superstep"),
                          delay_ms=_parse_float(delay_text, chunk,
                                                "delay"))
            else:
                step_text, _, attempts_text = rest.partition("x")
                superstep = _parse_int(step_text, chunk, "superstep")
                attempts = (_parse_int(attempts_text, chunk, "attempts")
                            if attempts_text else 1)
                plan.kill(target, superstep, attempts=attempts)
        duplicates = duplicate_faults(plan._faults)
        if duplicates:
            raise ValueError(
                f"bad fault spec {spec!r}: duplicate chunks for the "
                f"same worker/superstep ({'; '.join(duplicates)})")
        return plan

    # -- introspection -----------------------------------------------------

    @property
    def faults(self) -> list[Fault]:
        return list(self._faults)

    @property
    def fired(self) -> list[Fault]:
        """Faults that have fired at least once."""
        return [fault for index, fault in enumerate(self._faults)
                if self._fire_counts.get(index, 0) > 0]

    @property
    def exhausted(self) -> bool:
        """True when every fault has fired as often as it ever will."""
        for index, fault in enumerate(self._faults):
            budget = (fault.attempts if isinstance(fault, KillFault)
                      else 1)
            if self._fire_counts.get(index, 0) < budget:
                return False
        return True

    # -- coordinator hooks -------------------------------------------------

    def check(self, worker: str, superstep: int) -> None:
        """Raise :class:`WorkerKilled` if a pending kill matches.

        A plain kill fires once; a flaky kill fires ``attempts``
        consecutive times, so the post-recovery replays keep dying
        until the budget is spent — then the superstep goes through.
        """
        for index, fault in enumerate(self._faults):
            if (isinstance(fault, KillFault) and fault.worker == worker
                    and fault.superstep == superstep):
                count = self._fire_counts.get(index, 0)
                if count < fault.attempts:
                    self._fire_counts[index] = count + 1
                    raise WorkerKilled(worker, superstep,
                                       attempt=count + 1,
                                       attempts=fault.attempts)

    def slow_delay(self, worker: str, superstep: int) -> float:
        """Pending injected delay for this worker/superstep, in ms.

        Each slow fault fires once (replays run at full speed)."""
        total = 0.0
        for index, fault in enumerate(self._faults):
            if (isinstance(fault, SlowFault) and fault.worker == worker
                    and fault.superstep == superstep
                    and not self._fire_counts.get(index)):
                self._fire_counts[index] = 1
                total += fault.delay_ms
        return total

    def barrier_faults(self, superstep: int) -> list[BarrierFault]:
        """Pending drop/duplicate faults for this barrier (marked fired)."""
        pending: list[BarrierFault] = []
        for index, fault in enumerate(self._faults):
            if (isinstance(fault, BarrierFault)
                    and fault.superstep == superstep
                    and not self._fire_counts.get(index)):
                self._fire_counts[index] = 1
                pending.append(fault)
        return pending

    def corruption(self, superstep: int) -> CorruptionFault | None:
        """Pending corruption fault for this checkpoint (marked fired)."""
        for index, fault in enumerate(self._faults):
            if (isinstance(fault, CorruptionFault)
                    and fault.superstep == superstep
                    and not self._fire_counts.get(index)):
                self._fire_counts[index] = 1
                return fault
        return None

    def reset(self) -> None:
        """Re-arm every fault (for reusing a plan across runs)."""
        self._fire_counts.clear()

    def __repr__(self) -> str:
        parts = ", ".join(str(f) for f in self._faults) or "no faults"
        return f"FaultPlan({parts})"
