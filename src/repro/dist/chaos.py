"""Seeded chaos harness: ``python -m repro.dist.chaos``.

*SoK: The Faults in our Graph Benchmarks* argues that graph-system
evaluations which never exercise failure paths systematically overstate
robustness; the source paper's §6.1 puts fault handling among the top
operational pain points. This harness makes failure a first-class
workload: from one seed it generates randomized fault schedules —
kills, flaky workers, barrier message loss/duplication, slow workers,
checkpoint corruption paired with a kill so the damaged file is the
*latest* at recovery time — runs each against the default workloads,
and asserts the recovered vertex values are **byte-identical** to the
fault-free run.

Every invocation also runs a directed *corrupted-latest probe*: corrupt
the newest checkpoint, kill a worker, and require recovery to fall back
to the previous checkpoint instead of crashing.

The report is obs-backed: recoveries, replayed supersteps, the
MTTR-style ``dist.recovery_ms`` histogram (p50/p95/p99), and fault
counters by type, all sourced from :mod:`repro.obs` counter deltas —
the same substrate every other report uses.

>>> from repro.dist.chaos import run_chaos
>>> report = run_chaos(seed=7, runs=5)    # doctest: +SKIP
>>> assert all(row["identical"] for row in report["runs"])  # doctest: +SKIP
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
from typing import Any, Callable

from repro import obs
from repro.dgps.algorithms import connected_components_spec, pagerank_spec
from repro.dist.checkpoint import (
    CheckpointStore,
    InMemoryCheckpointStore,
    JsonCheckpointStore,
)
from repro.dist.coordinator import run_distributed_pregel
from repro.dist.faults import FaultPlan
from repro.dist.resilience import RetryPolicy
from repro.generators import gnm_random_graph
from repro.graphs.adjacency import Graph

#: fault classes the schedule generator samples from.
FAULT_KINDS = ("kill", "flaky", "drop", "duplicate", "slow", "corrupt")

#: obs counters the report treats as the source of truth.
COUNTERS = (
    "dist.recoveries",
    "dist.checkpoint_corrupt",
    "dist.faults.kill",
    "dist.faults.flaky",
    "dist.faults.drop",
    "dist.faults.duplicate",
    "dist.faults.slow",
    "dist.faults.corrupt",
)


def generate_schedule(rng: random.Random, supersteps: int, k: int,
                      max_faults: int = 3,
                      kinds: tuple[str, ...] = FAULT_KINDS) -> FaultPlan:
    """One randomized fault schedule for a run of ``supersteps``.

    Corruption faults are always paired with a kill at the same
    superstep, so the corrupted checkpoint is the *latest* one when
    recovery looks for it and the fallback path actually runs; they
    also never target checkpoint 0 (the recovery floor), which would
    make the run unrecoverable by construction rather than by chaos.
    """
    plan = FaultPlan()
    horizon = max(1, supersteps - 1)
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(kinds)
        worker = f"w{rng.randrange(k)}"
        superstep = rng.randint(0, horizon)
        if kind == "kill":
            plan.kill(worker, at_superstep=superstep)
        elif kind == "flaky":
            plan.flaky(worker, at_superstep=superstep,
                       attempts=rng.randint(2, 3))
        elif kind == "drop":
            plan.drop_messages(at_superstep=superstep,
                               count=rng.randint(1, 4))
        elif kind == "duplicate":
            plan.duplicate_messages(at_superstep=superstep,
                                    count=rng.randint(1, 4))
        elif kind == "slow":
            plan.slow(worker, at_superstep=superstep,
                      delay_ms=float(rng.randint(5, 50)))
        else:  # corrupt: damage the checkpoint that will be latest
            superstep = rng.randint(1, horizon)
            plan.corrupt_checkpoint(
                at_superstep=superstep,
                mode=rng.choice(("garble", "truncate")))
            plan.kill(worker, at_superstep=superstep)
    return plan


def _spec_for(algorithm: str, graph: Graph, supersteps: int):
    if algorithm == "pagerank":
        return pagerank_spec(graph, supersteps=supersteps)
    if algorithm == "components":
        return connected_components_spec(graph)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _counter_deltas(before: dict[str, float]) -> dict[str, float]:
    registry = obs.get_registry()
    return {name: registry.counter(name).value - before[name]
            for name in COUNTERS}


def corrupted_latest_probe(
    vertices: int = 40,
    k: int = 3,
    seed: int = 0,
    fail_superstep: int = 3,
    store_factory: Callable[[], CheckpointStore] | None = None,
) -> dict[str, Any]:
    """Directed scenario: corrupt the latest checkpoint, then kill.

    The recovery supervisor must *fall back to the previous
    checkpoint* — restored_to == fail_superstep - 1 — and still finish
    byte-identical to the fault-free run. Raises ``AssertionError``
    otherwise; returns the probe summary.
    """
    graph = gnm_random_graph(vertices, 2 * vertices, directed=False,
                             seed=seed)
    spec = pagerank_spec(graph, supersteps=max(6, fail_superstep + 2))
    clean = run_distributed_pregel(graph, spec, k=k, seed=seed)
    plan = (FaultPlan()
            .corrupt_checkpoint(at_superstep=fail_superstep)
            .kill("w1", at_superstep=fail_superstep))
    store = store_factory() if store_factory else InMemoryCheckpointStore()
    faulted = run_distributed_pregel(
        graph, spec, k=k, seed=seed, fault_plan=plan,
        checkpoint_store=store)
    if repr(faulted.values) != repr(clean.values):
        raise AssertionError(
            "corrupted-latest probe diverged from the fault-free run")
    events = faulted.recovery_events
    if not events or events[0].restored_to != fail_superstep - 1:
        raise AssertionError(
            f"expected fallback to checkpoint {fail_superstep - 1}, "
            f"got events {[e.to_dict() for e in events]}")
    if not events[0].corrupt_skipped:
        raise AssertionError(
            "recovery did not report the corrupt checkpoint it skipped")
    return {
        "identical": True,
        "restored_to": events[0].restored_to,
        "corrupt_skipped": list(events[0].corrupt_skipped),
        "recoveries": faulted.recoveries,
    }


def run_chaos(
    seed: int = 7,
    runs: int = 5,
    vertices: int = 48,
    k: int = 3,
    algorithms: tuple[str, ...] = ("pagerank", "components"),
    pagerank_supersteps: int = 8,
    max_faults: int = 3,
    store: str = "memory",
    store_dir: str | None = None,
    retry_policy: RetryPolicy | None = None,
) -> dict[str, Any]:
    """The full sweep ``main`` prints: randomized schedules + probe.

    Each run derives its own RNG from ``(seed, run_index)``, generates
    a schedule with :func:`generate_schedule`, executes it, and
    compares against the fault-free values byte-for-byte. ``store``
    selects ``"memory"`` or ``"json"`` checkpointing (the latter also
    exercises atomic writes and on-disk corruption/fallback).
    """
    if store not in ("memory", "json"):
        raise ValueError(f"unknown store {store!r}")
    if store == "json" and store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-chaos-")

    def store_factory(tag: str) -> CheckpointStore:
        if store == "memory":
            return InMemoryCheckpointStore()
        return JsonCheckpointStore(f"{store_dir}/{tag}")

    registry = obs.get_registry()
    report: dict[str, Any] = {
        "seed": seed, "k": k, "vertices": vertices, "store": store,
        "runs": [],
    }
    totals_before = {name: registry.counter(name).value
                     for name in COUNTERS}
    recovery_hist = registry.histogram("dist.recovery_ms")

    for index in range(runs):
        rng = random.Random(seed * 100003 + index)
        graph = gnm_random_graph(vertices, 2 * vertices, directed=False,
                                 seed=seed * 31 + index)
        algorithm = rng.choice(algorithms)
        spec = _spec_for(algorithm, graph, pagerank_supersteps)
        clean = run_distributed_pregel(graph, spec, k=k, seed=seed)
        plan = generate_schedule(rng, clean.supersteps, k,
                                 max_faults=max_faults)
        # Sparse checkpointing widens replay distances — recovery must
        # rewind further than the superstep the fault surfaced at.
        checkpoint_every = rng.randint(1, 3)
        before = {name: registry.counter(name).value
                  for name in COUNTERS}
        faulted = run_distributed_pregel(
            graph, spec, k=k, seed=seed, fault_plan=plan,
            checkpoint_store=store_factory(f"run-{index:02d}"),
            checkpoint_every=checkpoint_every,
            retry_policy=retry_policy)
        deltas = _counter_deltas(before)
        report["runs"].append({
            "run": index,
            "algorithm": algorithm,
            "checkpoint_every": checkpoint_every,
            "schedule": [str(fault) for fault in plan.faults],
            "supersteps": faulted.supersteps,
            "recoveries": faulted.recoveries,
            "replayed": faulted.replayed_supersteps(),
            "identical": repr(faulted.values) == repr(clean.values),
            "faults": {name.rsplit(".", 1)[-1]: int(value)
                       for name, value in deltas.items()
                       if name.startswith("dist.faults.") and value},
            "corrupt_skipped": int(deltas["dist.checkpoint_corrupt"]),
            "recovery_events": [event.to_dict()
                                for event in faulted.recovery_events],
        })

    report["probe"] = corrupted_latest_probe(
        vertices=min(vertices, 40), k=k, seed=seed,
        store_factory=(lambda: store_factory("probe"))
        if store == "json" else None)
    report["totals"] = {
        name: int(registry.counter(name).value - totals_before[name])
        for name in COUNTERS
    }
    report["totals"]["replayed_supersteps"] = sum(
        row["replayed"] for row in report["runs"])
    summary = recovery_hist.summary()
    report["recovery_ms"] = {
        "count": summary.get("count", 0),
        "p50": summary.get("p50"),
        "p95": summary.get("p95"),
        "p99": summary.get("p99"),
    }
    report["all_identical"] = all(row["identical"]
                                  for row in report["runs"])
    return report


def _render(report: dict[str, Any]) -> str:
    lines = [
        f"repro.dist chaos report — seed={report['seed']} "
        f"k={report['k']} vertices={report['vertices']} "
        f"store={report['store']}",
        "",
        f"{'run':>3} {'algorithm':<11} {'steps':>5} {'ck.ev':>5} "
        f"{'recov':>5} {'replay':>6} {'ckpt.skip':>9}  "
        f"{'verdict':<9}  schedule",
    ]
    for row in report["runs"]:
        verdict = "identical" if row["identical"] else "DIVERGED"
        lines.append(
            f"{row['run']:>3} {row['algorithm']:<11} "
            f"{row['supersteps']:>5} {row['checkpoint_every']:>5} "
            f"{row['recoveries']:>5} "
            f"{row['replayed']:>6} {row['corrupt_skipped']:>9}  "
            f"{verdict:<9}  {', '.join(row['schedule'])}")
    probe = report["probe"]
    lines.append("")
    lines.append(
        f"corrupted-latest probe: fell back to checkpoint "
        f"{probe['restored_to']} (skipped corrupt "
        f"{probe['corrupt_skipped']}), "
        + ("identical" if probe["identical"] else "DIVERGED"))
    totals = report["totals"]
    fault_totals = ", ".join(
        f"{name.rsplit('.', 1)[-1]}={value}"
        for name, value in totals.items()
        if name.startswith("dist.faults.") and value) or "none"
    lines.append("")
    lines.append(
        f"totals: {totals['dist.recoveries']} recoveries, "
        f"{totals['replayed_supersteps']} replayed supersteps, "
        f"{totals['dist.checkpoint_corrupt']} corrupt checkpoint(s) "
        f"skipped; faults fired by type: {fault_totals}")
    recovery = report["recovery_ms"]
    if recovery["count"]:
        def fmt(value):
            return "—" if value is None else f"{value:.2f}"
        lines.append(
            f"MTTR (dist.recovery_ms over {recovery['count']} "
            f"recoveries): p50={fmt(recovery['p50'])} "
            f"p95={fmt(recovery['p95'])} p99={fmt(recovery['p99'])} ms")
    lines.append(
        "every number above is a repro.obs counter delta / histogram — "
        "the report doubles as a check that the resilience wiring is "
        "instrumented.")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.chaos",
        description="Generate seeded randomized fault schedules, run "
                    "them against the default workloads, and assert "
                    "byte-identical recovery.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument("--vertices", type=int, default=48)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--max-faults", type=int, default=3,
                        help="max faults per schedule (min 1)")
    parser.add_argument("--store", choices=["memory", "json"],
                        default="memory",
                        help="checkpoint store backing the runs")
    parser.add_argument("--store-dir", default=None,
                        help="directory for --store json "
                             "(default: a fresh temp dir)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="override the retry policy's attempt cap")
    parser.add_argument("--json", action="store_true",
                        help="emit the structured report as JSON")
    args = parser.parse_args(argv)

    policy = (RetryPolicy(max_attempts=args.max_attempts)
              if args.max_attempts else None)
    with obs.capture():
        report = run_chaos(
            seed=args.seed, runs=args.runs, vertices=args.vertices,
            k=args.k, max_faults=args.max_faults, store=args.store,
            store_dir=args.store_dir, retry_policy=policy)
    if args.json:
        print(json.dumps(report, indent=2, default=repr))
    else:
        print(_render(report))
    return 0 if report["all_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
