"""Shard assignment for the distributed runtime.

A :class:`ShardMap` is the frozen outcome of partitioning a graph for
k workers: which shard every vertex lives on, and each shard's vertex
list in *global* graph order (so a worker iterating its shard visits
vertices in the same relative order the single-machine engine would —
the property that keeps distributed supersteps deterministic).

The :class:`Partitioner` adapter turns the heuristics from
:mod:`repro.algorithms.partitioning` (plus a hash baseline) into shard
maps; quality of a map is judged by the same metrics the ablation bench
uses — ``edge_cut``, ``balance`` and ``communication_volume``, the last
being the quantity sender-side combining actually pays for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.algorithms.partitioning import (
    Partition,
    balance,
    communication_volume,
    edge_cut,
    partition_graph,
    random_partition,
)
from repro.graphs.adjacency import Graph, Vertex


def hash_partition(graph, k: int, seed: int = 0) -> Partition:
    """Stateless assignment by hashing the vertex's repr.

    The scheme real sharded stores default to: no graph structure
    consulted, perfectly cheap, usually the worst cut. ``repr`` rather
    than ``hash`` so the assignment is stable across interpreter runs
    (Python salts string hashes per process).
    """
    def bucket(vertex: Vertex) -> int:
        text = repr((seed, vertex))
        code = 0
        for char in text:
            code = (code * 131 + ord(char)) % 1_000_000_007
        return code % k

    return {vertex: bucket(vertex) for vertex in graph.vertices()}


#: Fraction of vertices :func:`degree_skewed_partition` piles onto
#: shard 0. At 0.7 with k=4 the heavy shard carries ~2.8x the mean
#: load, comfortably past the timeline's 1.5 skew-flag threshold.
SKEW_HEAVY_FRACTION = 0.7


def degree_skewed_partition(graph, k: int, seed: int = 0,
                            heavy_fraction: float = SKEW_HEAVY_FRACTION,
                            ) -> Partition:
    """An *intentionally* imbalanced assignment: the highest-degree
    ``heavy_fraction`` of vertices all land on shard 0, the rest
    round-robin over the remaining shards.

    This is the pathological partition the timeline's skew analysis
    exists to catch — one shard owns the hubs and every superstep
    stalls at the barrier waiting for it. Used by the skew section of
    ``python -m repro.dist.report`` and as a straggler fixture in
    tests; never a good idea in production.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ordered = sorted(
        graph.vertices(),
        key=lambda v: (-graph.degree(v), repr(v)))  # deterministic
    if k == 1:
        return {v: 0 for v in ordered}
    heavy = max(1, round(heavy_fraction * len(ordered)))
    assignment: Partition = {}
    for i, vertex in enumerate(ordered):
        if i < heavy:
            assignment[vertex] = 0
        else:
            assignment[vertex] = 1 + (i - heavy) % (k - 1)
    return assignment


#: name -> callable(graph, k, seed) -> Partition
PARTITION_STRATEGIES: dict[str, Callable[..., Partition]] = {
    "bfs": partition_graph,
    "random": random_partition,
    "hash": hash_partition,
    "degree_skew": degree_skewed_partition,
}


@dataclass(frozen=True)
class ShardMap:
    """Vertex-to-shard assignment plus per-shard vertex lists.

    ``shards[i]`` holds shard i's vertices in global graph order;
    shards may be empty when the partitioner used fewer than k parts.
    """

    k: int
    assignment: Mapping[Vertex, int]
    shards: tuple[tuple[Vertex, ...], ...]

    def shard_of(self, vertex: Vertex) -> int:
        return self.assignment[vertex]

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self.assignment

    def num_vertices(self) -> int:
        return len(self.assignment)

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    def routing_stats(self, graph: Graph) -> dict[str, Any]:
        """The cost metrics shard routing pays on this graph."""
        partition = dict(self.assignment)
        return {
            "k": self.k,
            "shard_sizes": self.shard_sizes(),
            "edge_cut": edge_cut(graph, partition),
            "balance": balance(partition, self.k),
            "communication_volume": communication_volume(graph, partition),
        }


def shard_map_from_assignment(assignment: Partition, k: int,
                              vertex_order) -> ShardMap:
    """Freeze an explicit vertex->part dict into a :class:`ShardMap`.

    ``vertex_order`` fixes the global order shards preserve (normally
    ``graph.vertices()``).
    """
    shards: list[list[Vertex]] = [[] for _ in range(k)]
    ordered = list(vertex_order)
    for vertex in ordered:
        part = assignment[vertex]
        if not 0 <= part < k:
            raise ValueError(
                f"vertex {vertex!r} assigned to part {part}, "
                f"outside 0..{k - 1}")
        shards[part].append(vertex)
    if len(assignment) != len(ordered):
        missing = set(assignment) ^ set(ordered)
        raise ValueError(
            f"assignment does not cover the graph exactly "
            f"(mismatched vertices: {sorted(map(repr, missing))[:5]})")
    return ShardMap(
        k=k,
        assignment=dict(assignment),
        shards=tuple(tuple(shard) for shard in shards))


class Partitioner:
    """Adapter from partitioning heuristics to shard maps.

    ``strategy`` is a name from :data:`PARTITION_STRATEGIES`, a callable
    ``(graph, k, seed) -> Partition``, or an explicit vertex->part dict
    (used as-is).
    """

    def __init__(self, strategy: str | Callable[..., Partition]
                 | Partition = "bfs", seed: int = 0):
        self.seed = seed
        self._explicit: Partition | None = None
        if isinstance(strategy, str):
            try:
                self._strategy = PARTITION_STRATEGIES[strategy]
            except KeyError:
                raise ValueError(
                    f"unknown partition strategy {strategy!r}; "
                    f"known: {sorted(PARTITION_STRATEGIES)}") from None
            self.name = strategy
        elif isinstance(strategy, Mapping):
            self._strategy = None
            self._explicit = dict(strategy)
            self.name = "explicit"
        elif callable(strategy):
            self._strategy = strategy
            self.name = getattr(strategy, "__name__", "custom")
        else:
            raise TypeError(
                "strategy must be a name, a callable, or an "
                "assignment mapping")

    def shard(self, graph: Graph, k: int) -> ShardMap:
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._explicit is not None:
            assignment = self._explicit
        else:
            assignment = self._strategy(graph, k, seed=self.seed)
        return shard_map_from_assignment(assignment, k, graph.vertices())


def build_shard_map(graph: Graph, k: int,
                    strategy: str | Callable[..., Partition]
                    | Partition = "bfs",
                    seed: int = 0) -> ShardMap:
    """One-shot convenience: partition ``graph`` into k shards."""
    return Partitioner(strategy, seed=seed).shard(graph, k)
