"""One shard's executor in the distributed runtime.

A :class:`Worker` owns its shard's vertices: their values, halted
flags, out-adjacency, and the inbox of messages due this superstep.
Each superstep it runs the *same* superstep-local compute as the
single-machine engine (:func:`repro.dgps.pregel.run_local_superstep` —
the worker is the ``host`` that receives sends and aggregations), so a
vertex program cannot tell which runtime it is on.

What differs is where messages go. A send to a local vertex lands in
the worker's own next-superstep inbox; a send to a remote vertex is
buffered per destination shard, with the combiner applied *at the
sender* — folding n messages for one remote target into one before
routing, which is the classic trick for cutting cross-shard traffic
(the ``messages_combined`` count is exactly the traffic saved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dgps.pregel import (
    Aggregator,
    Combiner,
    PregelError,
    VertexProgram,
    require_known_vertex,
    run_local_superstep,
)
from repro.graphs.adjacency import Vertex
from repro.obs import check_deadline, span


@dataclass
class WorkerStepResult:
    """What one worker hands the coordinator at the barrier."""

    worker: str
    superstep: int
    active_vertices: int
    messages_sent: int
    messages_local: int
    messages_routed: int
    messages_combined: int
    #: dest shard -> {target vertex -> [sender-combined messages]}
    remote: dict[int, dict[Vertex, list[Any]]] = field(default_factory=dict)
    #: aggregator partials, only for aggregators this worker touched
    aggregates: dict[str, Any] = field(default_factory=dict)


class Worker:
    """Executor for one shard of the graph."""

    def __init__(
        self,
        index: int,
        vertices: tuple[Vertex, ...],
        assignment,
        program: VertexProgram,
        values: dict[Vertex, Any],
        out_edges: dict[Vertex, list[tuple[Vertex, float]]],
        combiner: Combiner | None,
        aggregators: dict[str, Aggregator],
        num_vertices: int,
    ):
        self.index = index
        self.name = f"w{index}"
        self.vertices = vertices
        self._assignment = assignment
        self._program = program
        self._combiner = combiner
        self._aggregators = aggregators
        #: global vertex count — VertexContext.num_vertices reads this,
        #: so programs see the whole graph's size, not the shard's.
        self.num_vertices = num_vertices

        self.values: dict[Vertex, Any] = values
        self.halted: set[Vertex] = set()
        self.inbox: dict[Vertex, list[Any]] = {}
        self._out_edges = out_edges

        self._previous_aggregates: dict[str, Any] = {}
        self._current_aggregates: dict[str, Any] = {}
        self._next_local: dict[Vertex, list[Any]] = {}
        self._remote: dict[int, dict[Vertex, list[Any]]] = {}
        self._sent = 0
        self._remote_raw = 0

    # -- host surface used by VertexContext -----------------------------

    def _enqueue(self, target: Vertex, message: Any) -> None:
        require_known_vertex(self._assignment, target)
        self._sent += 1
        dest = self._assignment[target]
        if dest == self.index:
            box = self._next_local
        else:
            self._remote_raw += 1
            box = self._remote.setdefault(dest, {})
        if self._combiner is not None and target in box:
            box[target] = [self._combiner(box[target][0], message)]
        else:
            box.setdefault(target, []).append(message)

    def _aggregate(self, name: str, value: Any) -> None:
        try:
            reduce_fn, identity = self._aggregators[name]
        except KeyError:
            raise PregelError(f"unknown aggregator {name!r}") from None
        current = self._current_aggregates.get(name, identity)
        self._current_aggregates[name] = reduce_fn(current, value)

    # -- superstep lifecycle ---------------------------------------------

    def active_vertices(self) -> list[Vertex]:
        """Vertices that will compute next superstep (shard order)."""
        return [v for v in self.vertices
                if v not in self.halted or v in self.inbox]

    def has_active(self) -> bool:
        return any(v not in self.halted or v in self.inbox
                   for v in self.vertices)

    def run_superstep(self, superstep: int,
                      previous_aggregates: dict[str, Any],
                      *, injected_delay_ms: float = 0.0,
                      ) -> WorkerStepResult:
        """Compute one local superstep; messages buffered, not routed.

        ``injected_delay_ms`` is a chaos-harness slow-worker fault: the
        latency is recorded on the worker's span (not slept), so skew
        tooling and reports see the straggler without the simulated
        runtime paying real wall-clock time.
        """
        with span("dist.worker.superstep", worker=self.name,
                  superstep=superstep,
                  shard_vertices=len(self.vertices)) as work_span:
            check_deadline(f"dist.worker.superstep:{self.name}"
                           f"@{superstep}")
            if injected_delay_ms:
                work_span.set("injected_delay_ms", injected_delay_ms)
            self._previous_aggregates = previous_aggregates
            self._current_aggregates = {}
            self._next_local = {}
            self._remote = {}
            self._sent = 0
            self._remote_raw = 0

            active = self.active_vertices()
            run_local_superstep(
                self, self._program, superstep, active,
                self.values, self.inbox, self._out_edges, self.halted)
            # This superstep's inbox is consumed; local sends become the
            # start of the next one (remote partials arrive via deliver).
            self.inbox = self._next_local

            routed = sum(len(msgs) for buffer in self._remote.values()
                         for msgs in buffer.values())
            local = self._sent - self._remote_raw
            result = WorkerStepResult(
                worker=self.name,
                superstep=superstep,
                active_vertices=len(active),
                messages_sent=self._sent,
                messages_local=local,
                messages_routed=routed,
                messages_combined=self._remote_raw - routed,
                remote=self._remote,
                aggregates=dict(self._current_aggregates))
            work_span.set("active_vertices", len(active))
            work_span.set("messages_sent", self._sent)
            work_span.set("messages_routed", routed)
            work_span.set("messages_combined", result.messages_combined)
        return result

    def deliver(self, target: Vertex, messages: list[Any]) -> int:
        """Accept routed messages for a local vertex (next superstep).

        With a combiner, routed partials fold into the inbox entry so
        the receiving vertex sees a single combined message — the same
        invariant the single-machine engine maintains. Returns the
        number of messages accepted — the coordinator's barrier
        accounting compares the sum against what was routed to detect
        injected message loss/duplication.
        """
        box = self.inbox
        if self._combiner is not None:
            for message in messages:
                if target in box:
                    box[target] = [self._combiner(box[target][0], message)]
                else:
                    box[target] = [message]
        else:
            box.setdefault(target, []).extend(messages)
        return len(messages)

    # -- durability -------------------------------------------------------

    def checkpoint_state(self) -> dict[str, Any]:
        """Everything recovery needs to rebuild this shard."""
        return {
            "values": dict(self.values),
            "halted": set(self.halted),
            "inbox": {v: list(msgs) for v, msgs in self.inbox.items()},
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Reset shard state from a checkpoint (respawn after a kill)."""
        self.values = dict(state["values"])
        self.halted = set(state["halted"])
        self.inbox = {v: list(msgs) for v, msgs in state["inbox"].items()}

    def __repr__(self) -> str:
        return (f"Worker({self.name}, vertices={len(self.vertices)}, "
                f"halted={len(self.halted)})")
