"""A small intra-function control-flow graph over ``ast`` nodes.

The LEAK/RACE resource rules need one question answered precisely:
*from this acquire site, does every path to function exit pass a
release?* Linear scans get ``try/finally`` wrong and miss the
exception edges entirely — the classic leak is not the happy path but
the ``raise`` between acquire and release. This module builds a
deliberately small CFG:

* one node per statement (``finally`` bodies are wired twice — once
  for normal completion, once for the exception continuation — so a
  release inside ``finally`` covers both);
* **normal edges** follow textual/structural flow (branches, loops,
  ``break``/``continue``/``return``);
* **exception edges** model "this statement raised": every statement
  can raise, jumping to the innermost enclosing handler dispatch (or
  straight to EXIT when nothing encloses it).

Reachability is then plain DFS:
:func:`releases_on_all_paths` starts from the acquire's *normal*
successors (the acquire itself failing acquires nothing, so its own
exception edge is not a leak) and reports whether EXIT is reachable
without crossing a statement the caller recognizes as a release.

The graph is intentionally path-insensitive — no values, no aliasing —
which is exactly the contract the concurrency rules document: pair
acquires with ``with`` or ``try/finally``, and the checker can prove
you right.
"""

from __future__ import annotations

import ast
from typing import Callable

#: Virtual exit node: normal returns, unhandled raises, and falling
#: off the end all flow here.
EXIT = -1


class Cfg:
    """Statement-level flow graph for one function body."""

    def __init__(self) -> None:
        #: node id -> statement (None for synthetic dispatch nodes).
        self.statements: list[ast.stmt | None] = []
        self._normal: dict[int, set[int]] = {}
        self._exceptional: dict[int, set[int]] = {}

    # -- construction ----------------------------------------------------

    def _node(self, stmt: ast.stmt | None) -> int:
        self.statements.append(stmt)
        return len(self.statements) - 1

    def _edge(self, src: int, dst: int, *, exc: bool = False) -> None:
        table = self._exceptional if exc else self._normal
        table.setdefault(src, set()).add(dst)

    # -- queries ---------------------------------------------------------

    def normal_successors(self, node: int) -> set[int]:
        return self._normal.get(node, set())

    def successors(self, node: int) -> set[int]:
        return self.normal_successors(node) | \
            self._exceptional.get(node, set())

    def nodes_for(self, stmt: ast.stmt) -> list[int]:
        """Every node id carrying ``stmt`` (finally bodies appear
        twice)."""
        return [i for i, s in enumerate(self.statements) if s is stmt]


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """The flow graph of ``func``'s body.

    ``return``/``break``/``continue`` do not jump to their targets
    directly — they follow a *continuation* threaded through the
    wiring, so an enclosing ``finally`` body intercepts them (one
    wired copy per distinct continuation) exactly as the runtime
    does.
    """
    cfg = Cfg()

    def wire_block(stmts: list[ast.stmt], follow: int, exc: int,
                   loop: tuple[int, int] | None, ret: int) -> int:
        """Wire a statement list whose fall-through target is
        ``follow``; returns the entry node (``follow`` when empty)."""
        entry = follow
        for stmt in reversed(stmts):
            entry = wire_stmt(stmt, entry, exc, loop, ret)
        return entry

    def wire_stmt(stmt: ast.stmt, follow: int, exc: int,
                  loop: tuple[int, int] | None, ret: int) -> int:
        node = cfg._node(stmt)
        if isinstance(stmt, ast.Return):
            cfg._edge(node, ret)
            cfg._edge(node, exc, exc=True)
        elif isinstance(stmt, ast.Raise):
            cfg._edge(node, exc, exc=True)
        elif isinstance(stmt, ast.Break):
            cfg._edge(node, loop[1] if loop else EXIT)
        elif isinstance(stmt, ast.Continue):
            cfg._edge(node, loop[0] if loop else EXIT)
        elif isinstance(stmt, ast.If):
            cfg._edge(node, wire_block(stmt.body, follow, exc,
                                       loop, ret))
            cfg._edge(node, wire_block(stmt.orelse, follow, exc,
                                       loop, ret))
            cfg._edge(node, exc, exc=True)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # The header node doubles as the loop head: the body falls
            # back into it, and loop exhaustion runs orelse -> follow.
            body_entry = wire_block(stmt.body, node, exc,
                                    (node, follow), ret)
            cfg._edge(node, body_entry)
            cfg._edge(node, wire_block(stmt.orelse, follow, exc,
                                       loop, ret))
            cfg._edge(node, exc, exc=True)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg._edge(node, wire_block(stmt.body, follow, exc,
                                       loop, ret))
            cfg._edge(node, exc, exc=True)
        elif isinstance(stmt, ast.Try):
            follow_norm, follow_exc = follow, exc
            inner_loop, inner_ret = loop, ret
            if stmt.finalbody:
                # One wired copy of the finally per continuation it
                # can intercept: normal completion, the exception
                # re-raise, an early return, and (when inside a loop)
                # break/continue.
                follow_norm = wire_block(stmt.finalbody, follow,
                                         exc, loop, ret)
                follow_exc = wire_block(stmt.finalbody, exc, exc,
                                        loop, ret)
                inner_ret = wire_block(stmt.finalbody, ret, exc,
                                       loop, ret)
                if loop is not None:
                    inner_loop = (
                        wire_block(stmt.finalbody, loop[0], exc,
                                   loop, ret),
                        wire_block(stmt.finalbody, loop[1], exc,
                                   loop, ret))
            dispatch = cfg._node(None)
            for handler in stmt.handlers:
                cfg._edge(dispatch, wire_block(
                    handler.body, follow_norm, follow_exc,
                    inner_loop, inner_ret))
            cfg._edge(dispatch, follow_exc, exc=True)  # unhandled
            else_entry = wire_block(stmt.orelse, follow_norm,
                                    follow_exc, inner_loop, inner_ret)
            cfg._edge(node, wire_block(stmt.body, else_entry,
                                       dispatch, inner_loop,
                                       inner_ret))
            # The try header performs no computation; anything raised
            # inside it is already routed via dispatch/finally, so its
            # own exception continuation is the finally's exc copy.
            cfg._edge(node, follow_exc, exc=True)
        else:
            # Simple statement: fall through, or raise.
            cfg._edge(node, follow)
            cfg._edge(node, exc, exc=True)
        return node

    wire_block(list(func.body), EXIT, EXIT, None, EXIT)
    return cfg


def own_statements(
        func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.stmt]:
    """Every statement in ``func``'s own body, recursively, without
    descending into nested function/class definitions (those run in a
    different dynamic extent and get their own CFG)."""
    collected: list[ast.stmt] = []

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            collected.append(stmt)
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for attr in ("body", "orelse", "finalbody"):
                visit(getattr(stmt, attr, []))
            for handler in getattr(stmt, "handlers", []):
                visit(handler.body)

    visit(list(func.body))
    return collected


def own_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expression nodes belonging to ``stmt`` *itself* — headers
    for compound statements, the whole node for simple ones. Walking
    these never re-visits expressions owned by nested statements."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.AST] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, (ast.Try, ast.FunctionDef,
                         ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def releases_on_all_paths(
        cfg: Cfg, acquire: ast.stmt,
        is_release: Callable[[ast.stmt], bool]) -> bool:
    """Whether every path from ``acquire`` to EXIT crosses a statement
    ``is_release`` accepts.

    The search starts at the acquire's *normal* successors — a failed
    acquire holds nothing — and then follows both normal and exception
    edges; reaching EXIT without a release is a leak.
    """
    release_nodes = {
        i for i, stmt in enumerate(cfg.statements)
        if stmt is not None and stmt is not acquire and is_release(stmt)
    }
    frontier: list[int] = []
    for node in cfg.nodes_for(acquire):
        frontier.extend(cfg.normal_successors(node))
    seen: set[int] = set()
    while frontier:
        node = frontier.pop()
        if node == EXIT:
            return False
        if node in seen or node in release_nodes:
            continue
        seen.add(node)
        frontier.extend(cfg.successors(node))
    return True
