"""Findings: what every analysis rule produces.

A :class:`Finding` is one diagnosed problem — rule id, severity, human
message, and a ``file:line`` anchor so editors and CI logs can jump to
it. An :class:`AnalysisReport` aggregates findings across rules and
targets, decides the CLI exit code (errors gate, warnings don't), and
serializes to the JSON shape the reporters and obs span events share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import ReproError


class Severity(enum.IntEnum):
    """Ordered severity levels (comparisons follow the int order)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}") from None


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem, anchored to ``file:line``."""

    rule: str
    severity: Severity
    message: str
    file: str = "<unknown>"
    line: int = 0
    symbol: str | None = None

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        prefix = f"{self.location}: {self.severity.name.lower()}"
        tail = f" [{self.symbol}]" if self.symbol else ""
        return f"{prefix} {self.rule}: {self.message}{tail}"


@dataclass
class AnalysisReport:
    """Accumulated findings plus the exit-code policy."""

    findings: list[Finding] = field(default_factory=list)
    #: files/targets examined (for the summary line)
    targets: list[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding] | "AnalysisReport") -> None:
        if isinstance(findings, AnalysisReport):
            self.findings.extend(findings.findings)
            self.targets.extend(findings.targets)
        else:
            self.findings.extend(findings)

    def note_target(self, target: str) -> None:
        self.targets.append(target)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings do not gate)."""
        return not self.errors

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        return 1 if any(f.severity >= fail_on for f in self.findings) else 0

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (f.file, f.line, f.rule, f.message))

    def counts(self) -> dict[str, int]:
        result = {s.name.lower(): 0 for s in Severity}
        for finding in self.findings:
            result[finding.severity.name.lower()] += 1
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.analysis/v1",
            "targets": len(self.targets),
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def span_events(self) -> list[dict[str, Any]]:
        """The findings in the compact shape attached to obs spans."""
        return [
            {"rule": f.rule, "severity": f.severity.name.lower(),
             "message": f.message, "location": f.location}
            for f in self.sorted_findings()
        ]

    def summary(self) -> str:
        counts = self.counts()
        return (f"{len(self.targets)} target(s): "
                f"{counts['error']} error(s), "
                f"{counts['warning']} warning(s), "
                f"{counts['info']} info")


class AnalysisError(ReproError):
    """Strict-mode escalation: the analyzed target has error findings.

    Carries the full :class:`AnalysisReport` so callers (and tests) can
    inspect exactly which rules fired.
    """

    def __init__(self, target: str, report: AnalysisReport):
        lines = [f.render() for f in report.errors]
        super().__init__(
            f"static analysis of {target} found "
            f"{len(report.errors)} error(s):\n  " + "\n  ".join(lines))
        self.target = target
        self.report = report


def record_findings(report: AnalysisReport, target: str) -> None:
    """Record a report as obs span events + counters (no-op when
    tracing is disabled)."""
    from repro.obs import get_registry, is_enabled, span

    with span("analysis.check", target=target) as check_span:
        check_span.set("findings", report.span_events())
        check_span.set("errors", len(report.errors))
        check_span.set("warnings", len(report.warnings))
    if is_enabled():
        registry = get_registry()
        registry.inc("analysis.checks")
        registry.inc("analysis.findings", len(report.findings))
