"""CFG rules: FaultPlan and bench-case configs as pure checkers.

Both configs already have parsers/validators at their point of use —
:meth:`repro.dist.faults.FaultPlan.parse` and
:meth:`repro.obs.bench.BenchSuite.add` — but those fire mid-run, after
the expensive work started. Re-using them here turns the same logic
into a pre-flight check that reports ``file:line`` findings instead of
raising from inside a coordinator or a bench sweep.

* **CFG001** — a fault-plan spec string fails to parse;
* **CFG002** — a fault plan schedules two faults for the same
  worker/superstep slot (previously last-write-wins silent);
* **CFG003** — a bench case is malformed (callable takes required
  arguments, or params are not JSON-serializable for the artifact);
* **CFG004** — a bench case's ``baseline_case`` names an unregistered
  case;
* **CFG005** — a traffic-mix spec string is invalid (unknown op name,
  negative weight, or weights that do not sum to 1) — the
  :meth:`repro.serve.traffic.TrafficMix.parse` validation as a
  pre-flight instead of a mid-load-test failure;
* **CFG006** — an SLO spec string is invalid (bad grammar, unknown
  request op, non-positive latency threshold, or a target outside
  (0, 1]) — the :meth:`repro.obs.slo.SLOSpec.parse` validation before
  a monitor ever evaluates it;
* **CFG007** — a circuit-breaker/deadline config literal is invalid
  (unknown key, non-numeric value, out-of-range threshold or window)
  — the :meth:`repro.serve.resilience.BreakerConfig.parse` validation
  as a pre-flight instead of a boot-time failure of the armed server.
"""

from __future__ import annotations

import inspect
import json
from typing import TYPE_CHECKING

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.registry import finding, register_rule
from repro.dist.faults import FaultPlan, duplicate_faults

if TYPE_CHECKING:
    from repro.obs.bench import BenchSuite

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "CFG001", "config", Severity.ERROR,
    "fault-plan spec string fails to parse")
register_rule(
    "CFG002", "config", Severity.ERROR,
    "fault plan schedules duplicate faults for the same "
    "worker/superstep slot")
register_rule(
    "CFG003", "config", Severity.ERROR,
    "bench case is malformed (non-nullary callable or "
    "non-JSON-serializable params)")
register_rule(
    "CFG004", "config", Severity.ERROR,
    "bench case baseline_case references an unregistered case")
register_rule(
    "CFG005", "config", Severity.ERROR,
    "traffic-mix spec is invalid (unknown op, negative weight, or "
    "weights not summing to 1)")
register_rule(
    "CFG006", "config", Severity.ERROR,
    "SLO spec is invalid (bad grammar, unknown op, non-positive "
    "threshold, or target outside (0, 1])")
register_rule(
    "CFG007", "config", Severity.ERROR,
    "breaker/deadline config is invalid (unknown key, non-numeric "
    "value, or out-of-range window/threshold/probes/cooldown)")


def check_fault_plan(spec: str, *, file: str = "<fault-plan>",
                     line: int = 0) -> AnalysisReport:
    """Validate a fault-plan DSL string without arming anything."""
    report = AnalysisReport()
    report.note_target(file)
    try:
        plan = FaultPlan.parse(spec)
    except ValueError as error:
        rule_id = "CFG002" if "duplicate" in str(error) else "CFG001"
        report.add(finding(rule_id, str(error), file=file, line=line))
        return report
    report.extend(check_fault_plan_object(plan, file=file, line=line))
    return report


def check_fault_plan_object(plan: FaultPlan, *,
                            file: str = "<fault-plan>",
                            line: int = 0) -> AnalysisReport:
    """Validate an already-built plan (builder API bypasses parse)."""
    report = AnalysisReport()
    for description in duplicate_faults(plan.faults):
        report.add(finding(
            "CFG002",
            f"duplicate fault: {description}; the duplicate would "
            f"re-fire on replay instead of being a no-op",
            file=file, line=line))
    return report


def check_traffic_mix(spec: str, *, file: str = "<traffic-mix>",
                      line: int = 0) -> AnalysisReport:
    """Validate a ``read=0.7,write=0.2,algo=0.1`` traffic-mix string
    without booting a server or generating load."""
    # Imported lazily: repro.serve imports repro.graphdb and
    # repro.workloads; the analysis layer must stay importable
    # without dragging the whole serving stack in.
    from repro.serve.traffic import TrafficMix

    report = AnalysisReport()
    report.note_target(file)
    try:
        TrafficMix.parse(spec)
    except ValueError as error:
        report.add(finding("CFG005", str(error), file=file, line=line))
    return report


def check_slo_spec(spec: str, *, file: str = "<slo>",
                   line: int = 0) -> AnalysisReport:
    """Validate one ``latency:OP<Nms@T`` / ``errors:OP@T`` SLO literal
    without standing up a monitor."""
    # Lazy for symmetry with check_traffic_mix — repro.obs.slo is
    # light, but the analysis layer imports nothing it is not asked
    # to check.
    from repro.obs.slo import SLOSpec

    report = AnalysisReport()
    report.note_target(file)
    try:
        SLOSpec.parse(spec)
    except ValueError as error:
        report.add(finding("CFG006", str(error), file=file, line=line))
    return report


def check_breaker_config(spec: str, *, file: str = "<breaker>",
                         line: int = 0) -> AnalysisReport:
    """Validate a ``window=20,threshold=0.5,...`` breaker literal
    (optionally carrying ``deadline_ms``) without arming a breaker."""
    # Lazy for the same reason as check_traffic_mix: the serve stack
    # is only imported when a breaker literal is actually checked.
    from repro.serve.resilience import BreakerConfig

    report = AnalysisReport()
    report.note_target(file)
    try:
        BreakerConfig.parse(spec)
    except ValueError as error:
        report.add(finding("CFG007", str(error), file=file, line=line))
    return report


def check_bench_cases(suite: "BenchSuite") -> AnalysisReport:
    """Validate every registered case of a bench suite."""
    report = AnalysisReport()
    names = set(suite.names())
    for case in suite.cases():
        file, line = _case_location(case)
        report.note_target(f"bench:{case.name}")
        signature = None
        try:
            signature = inspect.signature(case.fn)
        except (TypeError, ValueError):
            pass
        if signature is not None:
            required = [
                p for p in signature.parameters.values()
                if p.default is inspect.Parameter.empty
                and p.kind in (p.POSITIONAL_ONLY,
                               p.POSITIONAL_OR_KEYWORD,
                               p.KEYWORD_ONLY)
            ]
            if required:
                report.add(finding(
                    "CFG003",
                    f"bench case {case.name!r}: fn takes required "
                    f"argument(s) "
                    f"{[p.name for p in required]}; cases must be "
                    f"nullary (close over inputs)",
                    file=file, line=line, symbol=case.name))
        try:
            json.dumps(case.params)
        except (TypeError, ValueError):
            report.add(finding(
                "CFG003",
                f"bench case {case.name!r}: params are not "
                f"JSON-serializable; the BENCH artifact embeds them",
                file=file, line=line, symbol=case.name))
        baseline = case.params.get("baseline_case")
        if baseline is not None and baseline not in names:
            report.add(finding(
                "CFG004",
                f"bench case {case.name!r}: baseline_case "
                f"{baseline!r} is not registered (known: "
                f"{sorted(names)})",
                file=file, line=line, symbol=case.name))
    return report


def _case_location(case) -> tuple[str, int]:
    try:
        file = inspect.getsourcefile(case.fn) or "<bench>"
        _, line = inspect.getsourcelines(case.fn)
        return file, line
    except (OSError, TypeError):
        return "<bench>", 0
