"""Shared AST plumbing for the analysis rules.

Everything here is pure syntax: locating vertex-program functions,
resolving dotted call names through a module's import aliases, listing
a function's local names, and loading source for live Python objects so
API-level checks report real ``file:line`` locations.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: parameter names that mark a function as a vertex program.
CONTEXT_PARAM_NAMES = frozenset({"ctx", "context"})

#: annotation text that marks a function as a vertex program.
CONTEXT_ANNOTATION = "VertexContext"

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ProgramAst:
    """One vertex program's syntax plus its source anchor."""

    func: FunctionNode
    ctx_name: str
    file: str = "<program>"
    line_offset: int = 0
    #: module-level import aliases: local name -> dotted origin
    imports: dict[str, str] = field(default_factory=dict)
    #: names bound in the program's own scope (params + assignments)
    locals: frozenset[str] = frozenset()

    def line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 0) + self.line_offset

    @property
    def name(self) -> str:
        return self.func.name


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def context_param(func: FunctionNode) -> str | None:
    """The vertex-context parameter name, or None if ``func`` does not
    look like a vertex program.

    A function qualifies when its first non-``self`` positional
    parameter is named ``ctx``/``context`` or annotated with
    ``VertexContext``, and it takes no other positional parameters —
    the :data:`repro.dgps.pregel.VertexProgram` calling convention.
    """
    args = list(func.args.posonlyargs) + list(func.args.args)
    if args and args[0].arg == "self":
        args = args[1:]
    if len(args) != 1:
        return None
    arg = args[0]
    if arg.arg in CONTEXT_PARAM_NAMES:
        return arg.arg
    annotation = arg.annotation
    if annotation is not None:
        text = ast.unparse(annotation)
        if CONTEXT_ANNOTATION in text:
            return arg.arg
    return None


def local_names(func: FunctionNode) -> frozenset[str]:
    """Names bound inside ``func``: parameters, assignment targets,
    loop/with/except targets, comprehension variables, and nested
    function/class definitions (nested scopes folded in — the rules
    only need "bound somewhere inside the program" vs "closure or
    global")."""
    names: set[str] = set()
    arguments = func.args
    for arg in (*arguments.posonlyargs, *arguments.args,
                *arguments.kwonlyargs):
        names.add(arg.arg)
    for arg in (arguments.vararg, arguments.kwarg):
        if arg is not None:
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not func:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


def module_imports(tree: ast.Module) -> dict[str, str]:
    """Map import aliases to dotted origins for a module AST:
    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from random
    import randint`` -> ``{"randint": "random.randint"}``."""
    return imports_from_nodes(ast.walk(tree))


def imports_from_nodes(
        nodes: Iterable[ast.AST]) -> dict[str, str]:
    """:func:`module_imports` over an already-walked node stream, so
    a caller sharing one tree walk across rule families does not pay
    for a second full traversal."""
    imports: dict[str, str] = {}
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_dotted(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted call name with its root resolved through import aliases
    (``np.random.rand`` -> ``numpy.random.rand``)."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = imports.get(root)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


#: VertexContext surface a real program touches (anything counts).
_VERTEX_SURFACE = frozenset({
    "send", "send_to_neighbors", "vote_to_halt", "aggregate",
    "aggregated", "messages", "superstep", "vertex", "value",
    "out_edges", "num_out_edges", "num_vertices",
})


def uses_vertex_surface(func: FunctionNode, ctx_name: str) -> bool:
    """True when the body touches the :class:`VertexContext` API on
    its context parameter — distinguishes vertex programs from other
    single-``context``-parameter callbacks (triggers, hooks)."""
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == ctx_name
                and node.attr in _VERTEX_SURFACE):
            return True
    return False


def find_vertex_programs(tree: ast.AST) -> list[tuple[FunctionNode, str]]:
    """Every function in ``tree`` that follows the vertex-program
    calling convention (and actually uses the context surface), with
    its context-parameter name."""
    programs = []
    for func in iter_functions(tree):
        ctx_name = context_param(func)
        if ctx_name is not None and uses_vertex_surface(func, ctx_name):
            programs.append((func, ctx_name))
    return programs


def parse_object_source(obj: Any) -> tuple[ast.Module, str, int] | None:
    """(AST, file, line offset) for a live function/class, or None when
    source is unavailable (builtins, REPL definitions, C extensions).

    ``line offset`` maps the parsed (dedented) source's line 1 back to
    the real file, so findings carry true ``file:line`` anchors.
    """
    try:
        source = inspect.getsource(obj)
        file = inspect.getsourcefile(obj) or "<unknown>"
        _, start_line = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        return None
    return tree, file, start_line - 1


def const_str(node: ast.expr) -> str | None:
    """The value of a string constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
