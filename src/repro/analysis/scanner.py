"""File/directory scanning: the ``python -m repro.analysis`` engine.

Walks Python sources, finds the analyzable artifacts in each module,
and runs the matching rule families:

* functions following the vertex-program calling convention (a single
  ``ctx``/``context`` or ``VertexContext``-annotated parameter) get
  the DET determinism and CKPT checkpoint-safety lints;
* ``FaultPlan.parse("...")`` string literals get the CFG fault-plan
  checks (including duplicate-slot rejection);
* ``TrafficMix.parse("...")`` string literals get the CFG005
  traffic-mix checks (known op names, weights summing to 1);
* ``BreakerConfig.parse("...")`` string literals get the CFG007
  breaker/deadline checks (known keys, in-range window/threshold);
* ``run_query(graph, "...")`` / ``repro.query.parse("...")`` string
  literals get the QRY parse + unbound-variable checks (schema-aware
  checks need a live :class:`~repro.graphs.schema.GraphSchema`, so
  file scans run the program-independent subset).

Unparseable files are findings (``SRC001``), not crashes — a CI gate
must not die on the code it gates.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis import checkpoint_safety, determinism
from repro.analysis.astutils import (
    ProgramAst,
    const_str,
    dotted_name,
    find_vertex_programs,
    local_names,
    module_imports,
)
from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.query_check import check_query
from repro.analysis.config_check import (
    check_breaker_config,
    check_fault_plan,
    check_slo_spec,
    check_traffic_mix,
)
from repro.analysis.registry import finding, register_rule

register_rule(
    "SRC001", "source", Severity.ERROR,
    "file fails to parse as Python")

#: directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through),
    deterministic order."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS
                           for part in candidate.parts):
                    yield candidate


def _query_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    """(query text, literal node) when ``node`` is a recognizable
    query-parse/execute call with a string-literal query."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail == "run_query" and len(node.args) >= 2:
        text = const_str(node.args[1])
        if text is not None:
            return text, node.args[1]
    return None


def _fault_plan_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("FaultPlan.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _traffic_mix_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("TrafficMix.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _breaker_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("BreakerConfig.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _slo_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("SLOSpec.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


# Parsed-AST cache, keyed by file path. ``analysis.full_sweep`` is
# ~20x the next-slowest bench case and most of that is ast.parse over
# files re-visited across repetitions/rule sweeps; source files do not
# change mid-run, so parses are cached against an (mtime_ns, size)
# stat signature and reused until the file changes on disk. Syntax
# errors cache too — a broken file is re-reported, not re-parsed.
_AST_CACHE: dict[str, tuple[tuple[int, int],
                            ast.Module | SyntaxError]] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_ast_cache() -> None:
    """Drop every cached parse and zero the hit/miss counters."""
    _AST_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def ast_cache_stats() -> dict[str, int]:
    """Current cache effectiveness: hits, misses, entries."""
    return {"hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
            "entries": len(_AST_CACHE)}


def _parse_cached(path: Path) -> ast.Module | SyntaxError:
    """The file's parse tree (or its SyntaxError), via the cache."""
    key = str(path)
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None  # unstatable: fall through to a fresh read
    if signature is not None:
        cached = _AST_CACHE.get(key)
        if cached is not None and cached[0] == signature:
            _CACHE_STATS["hits"] += 1
            return cached[1]
    _CACHE_STATS["misses"] += 1
    source = path.read_text(encoding="utf-8")
    try:
        parsed: ast.Module | SyntaxError = ast.parse(source)
    except SyntaxError as error:
        parsed = error
    if signature is not None:
        _AST_CACHE[key] = (signature, parsed)
    return parsed


def _syntax_report(error: SyntaxError, file: str) -> AnalysisReport:
    report = AnalysisReport()
    report.note_target(file)
    report.add(finding(
        "SRC001", f"does not parse: {error.msg}", file=file,
        line=error.lineno or 0))
    return report


def _scan_tree(tree: ast.Module, file: str) -> AnalysisReport:
    """Run every rule family over one parsed module."""
    report = AnalysisReport()
    report.note_target(file)
    imports = module_imports(tree)

    for func, ctx_name in find_vertex_programs(tree):
        program_ast = ProgramAst(
            func=func, ctx_name=ctx_name, file=file, imports=imports,
            locals=local_names(func))
        report.extend(determinism.check_program(program_ast))
        report.extend(checkpoint_safety.check_program(program_ast))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fault_literal = _fault_plan_literal(node)
        if fault_literal is not None:
            text, literal = fault_literal
            sub = check_fault_plan(text, file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        mix_literal = _traffic_mix_literal(node)
        if mix_literal is not None:
            text, literal = mix_literal
            sub = check_traffic_mix(text, file=file,
                                    line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        breaker_literal = _breaker_literal(node)
        if breaker_literal is not None:
            text, literal = breaker_literal
            sub = check_breaker_config(text, file=file,
                                       line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        slo_literal = _slo_literal(node)
        if slo_literal is not None:
            text, literal = slo_literal
            sub = check_slo_spec(text, file=file,
                                 line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        query_literal = _query_literal(node)
        if query_literal is not None:
            text, literal = query_literal
            sub = check_query(text, file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
    return report


def scan_source(source: str, file: str = "<source>") -> AnalysisReport:
    """Analyze one module's source text (uncached — text has no path
    identity to key a cache on)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return _syntax_report(error, file)
    return _scan_tree(tree, file)


def scan_file(path: str | Path) -> AnalysisReport:
    path = Path(path)
    try:
        parsed = _parse_cached(path)
    except OSError as error:
        report = AnalysisReport()
        report.note_target(str(path))
        report.add(finding("SRC001", f"unreadable: {error}",
                           file=str(path)))
        return report
    if isinstance(parsed, SyntaxError):
        return _syntax_report(parsed, str(path))
    return _scan_tree(parsed, str(path))


def analyze_paths(paths: Iterable[str | Path]) -> AnalysisReport:
    """Scan every Python file under ``paths`` into one report."""
    report = AnalysisReport()
    for path in iter_python_files(paths):
        report.extend(scan_file(path))
    return report
