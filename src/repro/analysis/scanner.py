"""File/directory scanning: the ``python -m repro.analysis`` engine.

Walks Python sources, finds the analyzable artifacts in each module,
and runs the matching rule families:

* functions following the vertex-program calling convention (a single
  ``ctx``/``context`` or ``VertexContext``-annotated parameter) get
  the DET determinism and CKPT checkpoint-safety lints;
* ``FaultPlan.parse("...")`` string literals get the CFG fault-plan
  checks (including duplicate-slot rejection);
* ``TrafficMix.parse("...")`` string literals get the CFG005
  traffic-mix checks (known op names, weights summing to 1);
* ``BreakerConfig.parse("...")`` string literals get the CFG007
  breaker/deadline checks (known keys, in-range window/threshold);
* ``run_query(graph, "...")`` / ``repro.query.parse("...")`` string
  literals get the QRY parse + unbound-variable checks (schema-aware
  checks need a live :class:`~repro.graphs.schema.GraphSchema`, so
  file scans run the program-independent subset);
* every module gets the RACE concurrency pass, the LEAK/DLC
  resource-and-deadline pass, and ``# repro: ignore[...]``
  suppression handling (stale markers surface as SUP001).

Unparseable files are findings (``SRC001``), not crashes — a CI gate
must not die on the code it gates.
"""

from __future__ import annotations

import ast
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, TypeVar

from repro.analysis import (
    checkpoint_safety,
    concurrency,
    config_check,
    determinism,
    query_check,
    resources,
    suppressions as suppressions_mod,
)
from repro.analysis.astutils import (
    ProgramAst,
    const_str,
    dotted_name,
    find_vertex_programs,
    local_names,
    imports_from_nodes,
)
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.query_check import check_query
from repro.analysis.config_check import (
    check_breaker_config,
    check_fault_plan,
    check_slo_spec,
    check_traffic_mix,
)
from repro.analysis.registry import finding, register_rule
from repro.analysis.suppressions import (
    Suppression,
    apply_suppressions,
    extract_suppressions,
)

register_rule(
    "SRC001", "source", Severity.ERROR,
    "file fails to parse as Python")

#: directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: composite version of every rule family; cached per-file results
#: are invalid the moment any family's RULE_VERSION bumps.
_RULES_VERSION = "|".join((
    f"det:{determinism.RULE_VERSION}",
    f"ckpt:{checkpoint_safety.RULE_VERSION}",
    f"qry:{query_check.RULE_VERSION}",
    f"cfg:{config_check.RULE_VERSION}",
    f"race:{concurrency.RULE_VERSION}",
    f"leak:{resources.RULE_VERSION}",
    f"sup:{suppressions_mod.RULE_VERSION}",
))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through),
    deterministic order."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS
                           for part in candidate.parts):
                    yield candidate


def _query_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    """(query text, literal node) when ``node`` is a recognizable
    query-parse/execute call with a string-literal query."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail == "run_query" and len(node.args) >= 2:
        text = const_str(node.args[1])
        if text is not None:
            return text, node.args[1]
    return None


def _fault_plan_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("FaultPlan.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _traffic_mix_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("TrafficMix.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _breaker_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("BreakerConfig.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


def _slo_literal(node: ast.Call) -> tuple[str, ast.expr] | None:
    dotted = dotted_name(node.func)
    if dotted is None or not dotted.endswith("SLOSpec.parse"):
        return None
    if node.args:
        text = const_str(node.args[0])
        if text is not None:
            return text, node.args[0]
    return None


# Parsed-AST cache, keyed by file path. ``analysis.full_sweep`` is
# ~20x the next-slowest bench case and most of that is ast.parse over
# files re-visited across repetitions/rule sweeps; source files do not
# change mid-run, so parses (plus the file's suppression markers) are
# cached against an (mtime_ns, size) stat signature and reused until
# the file changes on disk. Syntax errors cache too — a broken file is
# re-reported, not re-parsed. A second layer caches each file's
# *findings* keyed by the same signature plus ``_RULES_VERSION``, so
# an unchanged file under unchanged rules skips the rule sweep
# entirely; a result-cache hit counts as a (logical) parse-cache hit
# since the cached parse's work is what gets reused.
_AST_CACHE: dict[str, tuple[
    tuple[int, int], ast.Module | SyntaxError,
    tuple[Suppression, ...]]] = {}
_RESULT_CACHE: dict[str, tuple[
    tuple[int, int], str, tuple[Finding, ...]]] = {}
_CACHE_STATS = {"hits": 0, "misses": 0, "result_hits": 0}

#: wall-clock milliseconds attributed to each rule family this
#: process (reset by :func:`clear_ast_cache`).
_FAMILY_MS: dict[str, float] = {}

_T = TypeVar("_T")


def _timed(family: str, check: Callable[..., _T],
           *args, **kwargs) -> _T:
    start = time.perf_counter()
    result = check(*args, **kwargs)
    _FAMILY_MS[family] = _FAMILY_MS.get(family, 0.0) + (
        time.perf_counter() - start) * 1000.0
    return result


def clear_ast_cache() -> None:
    """Drop every cached parse/result and zero all counters."""
    _AST_CACHE.clear()
    _RESULT_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0
    _FAMILY_MS.clear()


def ast_cache_stats() -> dict[str, object]:
    """Current cache effectiveness (hits, misses, entries,
    result_hits) plus per-rule-family sweep milliseconds."""
    return {"hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
            "entries": len(_AST_CACHE),
            "result_hits": _CACHE_STATS["result_hits"],
            "family_ms": rule_timings()}


def rule_timings() -> dict[str, float]:
    """Milliseconds spent per rule family since the last cache
    clear, rounded for display."""
    return {family: round(ms, 3)
            for family, ms in sorted(_FAMILY_MS.items())}


def _signature(path: Path) -> tuple[int, int] | None:
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _parse_cached(
        path: Path, signature: tuple[int, int] | None) -> tuple[
            ast.Module | SyntaxError, tuple[Suppression, ...]]:
    """The file's parse tree (or its SyntaxError) plus its suppression
    markers, via the cache."""
    key = str(path)
    if signature is not None:
        cached = _AST_CACHE.get(key)
        if cached is not None and cached[0] == signature:
            _CACHE_STATS["hits"] += 1
            return cached[1], cached[2]
    _CACHE_STATS["misses"] += 1
    source = path.read_text(encoding="utf-8")
    try:
        parsed: ast.Module | SyntaxError = ast.parse(source)
    except SyntaxError as error:
        parsed = error
    markers = extract_suppressions(source)
    if signature is not None:
        _AST_CACHE[key] = (signature, parsed, markers)
    return parsed, markers


def _syntax_report(error: SyntaxError, file: str) -> AnalysisReport:
    report = AnalysisReport()
    report.note_target(file)
    report.add(finding(
        "SRC001", f"does not parse: {error.msg}", file=file,
        line=error.lineno or 0))
    return report


def _scan_tree(
        tree: ast.Module, file: str,
        suppressions: tuple[Suppression, ...] = ()) -> AnalysisReport:
    """Run every rule family over one parsed module."""
    report = AnalysisReport()
    report.note_target(file)

    # One walk feeds every family: config/query literals and import
    # aliases here, plus the class and function lists the RACE/LEAK
    # rules share.
    classes: list[ast.ClassDef] = []
    functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    import_nodes: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes.append(node)
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(node)
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            import_nodes.append(node)
            continue
        if not isinstance(node, ast.Call):
            continue
        fault_literal = _fault_plan_literal(node)
        if fault_literal is not None:
            text, literal = fault_literal
            sub = _timed("config", check_fault_plan, text,
                         file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        mix_literal = _traffic_mix_literal(node)
        if mix_literal is not None:
            text, literal = mix_literal
            sub = _timed("config", check_traffic_mix, text,
                         file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        breaker_literal = _breaker_literal(node)
        if breaker_literal is not None:
            text, literal = breaker_literal
            sub = _timed("config", check_breaker_config, text,
                         file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        slo_literal = _slo_literal(node)
        if slo_literal is not None:
            text, literal = slo_literal
            sub = _timed("config", check_slo_spec, text,
                         file=file, line=literal.lineno)
            report.findings.extend(sub.findings)
            continue
        query_literal = _query_literal(node)
        if query_literal is not None:
            text, literal = query_literal
            sub = _timed("query", check_query, text,
                         file=file, line=literal.lineno)
            report.findings.extend(sub.findings)

    imports = imports_from_nodes(import_nodes)
    for func, ctx_name in find_vertex_programs(tree):
        program_ast = ProgramAst(
            func=func, ctx_name=ctx_name, file=file, imports=imports,
            locals=local_names(func))
        report.extend(_timed(
            "determinism", determinism.check_program, program_ast))
        report.extend(_timed(
            "checkpoint-safety", checkpoint_safety.check_program,
            program_ast))

    report.extend(_timed(
        "concurrency", concurrency.check_module, tree, file,
        imports=imports, classes=classes, functions=functions))
    report.extend(_timed(
        "resources", resources.check_module, tree, file,
        imports=imports, classes=classes, functions=functions))
    if suppressions:
        report.findings = _timed(
            "suppression", apply_suppressions, report.findings,
            suppressions, file)
    return report


def scan_source(source: str, file: str = "<source>") -> AnalysisReport:
    """Analyze one module's source text (uncached — text has no path
    identity to key a cache on)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return _syntax_report(error, file)
    return _scan_tree(tree, file,
                      suppressions=extract_suppressions(source))


def scan_file(path: str | Path) -> AnalysisReport:
    path = Path(path)
    key = str(path)
    signature = _signature(path)
    if signature is not None:
        cached = _RESULT_CACHE.get(key)
        if cached is not None and cached[0] == signature \
                and cached[1] == _RULES_VERSION:
            _CACHE_STATS["hits"] += 1
            _CACHE_STATS["result_hits"] += 1
            report = AnalysisReport()
            report.note_target(key)
            report.findings = list(cached[2])
            return report
    try:
        parsed, markers = _parse_cached(path, signature)
    except OSError as error:
        report = AnalysisReport()
        report.note_target(key)
        report.add(finding("SRC001", f"unreadable: {error}",
                           file=key))
        return report
    if isinstance(parsed, SyntaxError):
        report = _syntax_report(parsed, key)
    else:
        report = _scan_tree(parsed, key, suppressions=markers)
    if signature is not None:
        _RESULT_CACHE[key] = (
            signature, _RULES_VERSION, tuple(report.findings))
    return report


def analyze_paths(paths: Iterable[str | Path]) -> AnalysisReport:
    """Scan every Python file under ``paths`` into one report."""
    report = AnalysisReport()
    for path in iter_python_files(paths):
        report.extend(scan_file(path))
    return report
