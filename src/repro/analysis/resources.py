"""LEAK + DLC rules: resource lifetimes and deadline coverage.

The serve layer hands out three kinds of scarce resources — admission
slots (a bounded semaphore shared by every handler thread), trace
spans (open spans distort latency attribution and pin memory), and
file handles. All three follow the same contract: acquire must be
paired with a release reachable on **every** exit, exception paths
included. The LEAK rules check that contract on the intra-function
CFG from :mod:`repro.analysis.cfg`:

* **LEAK001** — an admission slot (``.admit()`` guard not used as a
  context manager) or an unconditional semaphore ``.acquire()``
  without a release on all paths starves the server: each leak
  permanently shrinks the admission pool.
* **LEAK002** — a ``span(...)`` / ``forced_span(...)`` that is never
  entered (``with`` directly, or assigned and entered later) records
  nothing and leaks its attribute payload. Returning the span, or
  storing it on ``self`` for a sibling method to close, transfers
  ownership and is exempt.
* **LEAK003** — ``handle = open(...)`` without ``with`` needs
  ``handle.close()`` reachable on every path; a discarded
  ``open(...)`` result is always a leak. Returning the handle
  transfers ownership.

**DLC001** closes the deadline-protocol gap: a function that engages
the protocol (captures :func:`repro.obs.deadline.current_deadline`)
but runs a loop with no cooperative check — ``deadline.check(...)``
or ``check_deadline(...)`` in *some* loop — can blow through its
budget unbounded. The rule is function-level on purpose: one checked
hot loop is cooperative even if a trivial sibling loop (listener
fan-out, stats fold) is not.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    iter_functions,
    module_imports,
    resolve_dotted,
)
from repro.analysis.cfg import (
    build_cfg,
    own_exprs,
    own_statements,
    releases_on_all_paths,
)
from repro.analysis.concurrency import (
    FunctionNode,
    check_release_paths,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import finding, register_rule

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "LEAK001", "resources", Severity.ERROR,
    "admission slot/semaphore acquired without guaranteed release")
register_rule(
    "LEAK002", "resources", Severity.WARNING,
    "span created but never entered as a context manager")
register_rule(
    "LEAK003", "resources", Severity.ERROR,
    "file handle opened without close on every path")
register_rule(
    "DLC001", "deadline-coverage", Severity.WARNING,
    "deadline-engaged function loops without a cooperative check")

_SEMAPHORE_FACTORIES = frozenset({
    "threading.Semaphore", "threading.BoundedSemaphore",
})

_DEADLINE_CAPTURE = frozenset({
    "repro.obs.current_deadline",
    "repro.obs.deadline.current_deadline",
})

_DEADLINE_CHECK = frozenset({
    "repro.obs.check_deadline",
    "repro.obs.deadline.check_deadline",
})


def _with_usage(
        statements: list[ast.stmt]) -> tuple[set[str], set[int]]:
    """(names entered via ``with name:``, ids of expressions used
    directly as ``with`` items)."""
    entered: set[str] = set()
    item_ids: set[int] = set()
    for stmt in statements:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            continue
        for item in stmt.items:
            if isinstance(item.context_expr, ast.Name):
                entered.add(item.context_expr.id)
            else:
                for node in ast.walk(item.context_expr):
                    item_ids.add(id(node))
    return entered, item_ids


def _returned_names(statements: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in statements:
        if isinstance(stmt, ast.Return) \
                and isinstance(stmt.value, ast.Name):
            names.add(stmt.value.id)
    return names


# -- span factories ----------------------------------------------------

#: import-resolved origins of the span factories; matching on the
#: resolved origin (not the bare name) keeps a module's own ``span``
#: helper, or any unrelated ``x.span(...)`` method, out of scope.
_SPAN_ORIGINS = frozenset({
    "repro.obs.span", "repro.obs.spans.span",
    "repro.obs.forced_span", "repro.obs.spans.forced_span",
})


def _class_semaphore_attrs(
        classes: list[ast.ClassDef],
        imports: dict[str, str]) -> dict[int, set[str]]:
    """``id(method)`` -> the ``self.X`` semaphore receivers of its
    enclosing class (one pass over the module's classes)."""
    by_func: dict[int, set[str]] = {}
    for node in classes:
        attrs: set[str] = set()
        methods = [m for m in node.body
                   if isinstance(m, FunctionNode)]
        for method in methods:
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign) \
                        and isinstance(sub.value, ast.Call) \
                        and resolve_dotted(sub.value.func, imports) \
                        in _SEMAPHORE_FACTORIES:
                    for target in sub.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value,
                                               ast.Name)
                                and target.value.id == "self"):
                            attrs.add(f"self.{target.attr}")
        if attrs:
            for method in methods:
                by_func[id(method)] = attrs
    return by_func


def _contains_close(stmt: ast.stmt, name: str) -> bool:
    for expr in own_exprs(stmt):
        for node in ast.walk(expr):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                return True
    return False


def _owned_assign_target(stmt: ast.stmt,
                         node: ast.AST) -> ast.expr | None:
    """The single assignment target when ``node`` is exactly the
    value of ``stmt``."""
    if (isinstance(stmt, ast.Assign) and node is stmt.value
            and len(stmt.targets) == 1):
        return stmt.targets[0]
    return None


def _check_function(func: FunctionNode, file: str,
                    imports: dict[str, str],
                    sem_attrs: set[str]) -> list[Finding]:
    """LEAK001-003 + DLC001 over one function, in one sweep."""
    statements = own_statements(func)
    entered, item_ids = _with_usage(statements)
    returned = _returned_names(statements)
    findings: list[Finding] = []
    cfg = None

    def get_cfg():
        nonlocal cfg
        if cfg is None:
            cfg = build_cfg(func)
        return cfg

    # LEAK001a: unconditional semaphore acquires need releases.
    receivers = set(sem_attrs)
    for stmt in statements:
        if isinstance(stmt, ast.Assign) \
                and isinstance(stmt.value, ast.Call) \
                and resolve_dotted(stmt.value.func, imports) \
                in _SEMAPHORE_FACTORIES:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    receivers.add(target.id)
    if receivers:
        findings.extend(check_release_paths(
            func, receivers, "LEAK001", file, "admission slot"))

    loops: list[ast.stmt] = []
    captured: set[str] = set()
    engaged = False

    for stmt in statements:
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            loops.append(stmt)
        for expr in own_exprs(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve_dotted(node.func, imports)
                target = _owned_assign_target(stmt, node)

                # DLC001: deadline capture sites.
                if resolved in _DEADLINE_CAPTURE:
                    engaged = True
                    if isinstance(target, ast.Name):
                        captured.add(target.id)
                    continue

                # LEAK001b: bare .admit() guards must be entered.
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "admit" \
                        and id(node) not in item_ids \
                        and not (isinstance(target, ast.Name)
                                 and target.id in entered) \
                        and not (isinstance(stmt, ast.Return)
                                 and node is stmt.value):
                    findings.append(finding(
                        "LEAK001",
                        "admit() slot guard is never entered; use "
                        "'with ...admit():' so the slot is returned "
                        "on every path",
                        file=file, line=node.lineno,
                        symbol=func.name))
                    continue

                # LEAK002: spans must be entered (or ownership must
                # transfer: returned, or stored on self for a
                # sibling method to close).
                if resolved in _SPAN_ORIGINS:
                    if id(node) in item_ids \
                            or isinstance(stmt, ast.Return):
                        continue
                    if isinstance(target, ast.Name) \
                            and (target.id in entered
                                 or target.id in returned):
                        continue
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        continue
                    findings.append(finding(
                        "LEAK002",
                        "span is created but never entered; enter "
                        "it ('with span(...):') so it closes and "
                        "records on every path",
                        file=file, line=node.lineno,
                        symbol=func.name))
                    continue

                # LEAK003: open() handles.
                if resolved == "open" and id(node) not in item_ids:
                    if isinstance(target, ast.Name):
                        handle = target.id
                        if handle in returned:
                            continue
                        if releases_on_all_paths(
                                get_cfg(), stmt,
                                lambda s, h=handle:
                                _contains_close(s, h)):
                            continue
                        findings.append(finding(
                            "LEAK003",
                            f"{handle} = open(...) may exit "
                            f"{func.name} without close; use 'with "
                            f"open(...)' or try/finally",
                            file=file, line=node.lineno,
                            symbol=func.name))
                    else:
                        findings.append(finding(
                            "LEAK003",
                            "open(...) result is never closed; "
                            "bind it with 'with open(...) as f:'",
                            file=file, line=node.lineno,
                            symbol=func.name))

    # DLC001: engaged + loops but no loop has a cooperative check.
    if engaged and loops:
        def has_check(loop: ast.stmt) -> bool:
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                if resolve_dotted(node.func, imports) \
                        in _DEADLINE_CHECK:
                    return True
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "check"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in captured):
                    return True
            return False

        if not any(has_check(loop) for loop in loops):
            findings.append(finding(
                "DLC001",
                f"{func.name} captures current_deadline() but no "
                f"loop performs a cooperative deadline check",
                file=file, line=loops[0].lineno, symbol=func.name))
    return findings


def check_module(
        tree: ast.Module, file: str, *,
        imports: dict[str, str] | None = None,
        classes: list[ast.ClassDef] | None = None,
        functions: list[FunctionNode] | None = None) -> list[Finding]:
    """Run LEAK001-003 and DLC001 over one parsed module.

    ``imports``/``classes``/``functions`` let the scanner share one
    tree walk across every rule family; when omitted (direct calls,
    tests) they are derived here.
    """
    if imports is None:
        imports = module_imports(tree)
    if classes is None:
        classes = [n for n in ast.walk(tree)
                   if isinstance(n, ast.ClassDef)]
    if functions is None:
        functions = list(iter_functions(tree))
    sem_attrs = _class_semaphore_attrs(classes, imports)
    findings: list[Finding] = []
    for func in functions:
        findings.extend(_check_function(
            func, file, imports, sem_attrs.get(id(func), set())))
    return findings
