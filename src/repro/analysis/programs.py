"""API-level analysis of live vertex programs and PregelSpecs.

:func:`analyze_program` lifts a live callable back to source via
``inspect``, so findings carry the real ``file:line`` of the user's
code; :func:`analyze_spec` adds the value-level checks AST analysis
cannot see (aggregator identities, non-callable initial values). Both
are what ``strict=True`` runs at build time in the spec builders, the
:class:`~repro.dist.coordinator.Coordinator`, and
:func:`~repro.dgps.pregel.run_pregel`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis import checkpoint_safety, determinism
from repro.analysis.astutils import (
    ProgramAst,
    context_param,
    find_vertex_programs,
    local_names,
    module_imports,
    parse_object_source,
)
from repro.analysis.findings import (
    AnalysisError,
    AnalysisReport,
    record_findings,
)


def _program_target(program: Callable) -> Any:
    """The thing to lift to source: the function itself, or the class
    of a callable instance (``__call__``-style programs)."""
    if isinstance(program, type):
        return program
    if not callable(program):
        return program
    if hasattr(program, "__code__"):  # plain function / lambda / method
        return program
    return type(program)


def analyze_program(program: Callable,
                    name: str | None = None) -> AnalysisReport:
    """Run the DET + CKPT rule families over one vertex program."""
    report = AnalysisReport()
    label = name or getattr(program, "__name__",
                            type(program).__name__)
    report.note_target(f"program:{label}")
    parsed = parse_object_source(_program_target(program))
    if parsed is None:
        return report  # no source (C extension / REPL): nothing to lint
    tree, file, offset = parsed
    imports = _globals_imports(program)
    imports.update(module_imports(tree))
    programs = find_vertex_programs(tree)
    if not programs:
        # The object itself may be the program even if its parameter
        # is named unconventionally; fall back to its first function.
        for func in tree.body:
            if hasattr(func, "args"):
                ctx = context_param(func)  # type: ignore[arg-type]
                if ctx is None and func.args.args:  # type: ignore
                    ctx = func.args.args[0].arg  # type: ignore
                if ctx is not None:
                    programs = [(func, ctx)]  # type: ignore[list-item]
                break
    for func, ctx_name in programs:
        program_ast = ProgramAst(
            func=func, ctx_name=ctx_name, file=file,
            line_offset=offset, imports=imports,
            locals=local_names(func))
        report.extend(determinism.check_program(program_ast))
        report.extend(checkpoint_safety.check_program(program_ast))
    return report


def _globals_imports(program: Callable) -> dict[str, str]:
    """Import aliases visible to a live function through its module
    globals (``inspect.getsource`` only returns the function body, so
    ``import numpy as np`` at module top level would otherwise be
    invisible)."""
    imports: dict[str, str] = {}
    cells = getattr(program, "__closure__", None) or ()
    freevars = getattr(getattr(program, "__code__", None),
                       "co_freevars", ())
    candidates = list(getattr(program, "__globals__", {}).items())
    for name, cell in zip(freevars, cells):
        try:
            candidates.append((name, cell.cell_contents))
        except ValueError:  # still-empty cell
            continue
    for name, value in candidates:
        module_name = getattr(value, "__name__", None)
        if module_name and type(value).__name__ == "module":
            imports[name] = module_name
    return imports


def analyze_spec(spec: Any, *, strict: bool = False,
                 name: str | None = None) -> AnalysisReport:
    """Analyze a :class:`~repro.dgps.pregel.PregelSpec`: the program's
    AST rules plus value probes on the initial value and aggregator
    identities. With ``strict=True``, error findings raise
    :class:`~repro.analysis.findings.AnalysisError` and the findings
    are recorded as obs span events."""
    label = name or getattr(spec.program, "__name__", "spec")
    report = analyze_program(spec.program, name=label)
    if not callable(spec.initial_value):
        report.extend(checkpoint_safety.check_value(
            spec.initial_value, what="PregelSpec.initial_value",
            symbol=label))
    for agg_name, (_, identity) in (spec.aggregators or {}).items():
        report.extend(checkpoint_safety.check_value(
            identity, what=f"aggregator {agg_name!r} identity",
            symbol=label))
    record_findings(report, f"spec:{label}")
    if strict and not report.ok:
        raise AnalysisError(f"spec:{label}", report)
    return report
