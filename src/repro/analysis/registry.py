"""The rule catalog: every shipped rule, its family and severity.

The catalog is metadata, not dispatch — each rule family module
(:mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.checkpoint_safety`,
:mod:`~repro.analysis.query_check`, :mod:`~repro.analysis.config_check`)
registers its rules here at import time and emits findings tagged with
the registered ids. The CLI uses the catalog for ``rules`` listing and
``--select`` / ``--ignore`` filtering; DESIGN.md's rule table is a
rendering of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one rule."""

    rule_id: str
    family: str
    severity: Severity
    summary: str


_RULES: dict[str, RuleInfo] = {}


def register_rule(rule_id: str, family: str, severity: Severity,
                  summary: str) -> RuleInfo:
    """Register a rule id; re-registration must be identical."""
    info = RuleInfo(rule_id, family, severity, summary)
    existing = _RULES.get(rule_id)
    if existing is not None and existing != info:
        raise ValueError(
            f"rule {rule_id!r} already registered with different "
            f"metadata")
    _RULES[rule_id] = info
    return info


def all_rules() -> list[RuleInfo]:
    return sorted(_RULES.values(), key=lambda info: info.rule_id)


def rule_info(rule_id: str) -> RuleInfo:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: "
            f"{sorted(_RULES)}") from None


def finding(rule_id: str, message: str, *, file: str = "<unknown>",
            line: int = 0, symbol: str | None = None,
            severity: Severity | None = None) -> Finding:
    """Build a finding for a registered rule (severity defaults to the
    catalog's)."""
    info = rule_info(rule_id)
    return Finding(
        rule=rule_id,
        severity=severity if severity is not None else info.severity,
        message=message,
        file=file,
        line=line,
        symbol=symbol)


def match_selection(rule_id: str, select: tuple[str, ...] | None,
                    ignore: tuple[str, ...] = ()) -> bool:
    """Prefix-based rule selection (``DET`` matches ``DET001``...)."""
    if any(rule_id.startswith(prefix) for prefix in ignore):
        return False
    if select is None:
        return True
    return any(rule_id.startswith(prefix) for prefix in select)
