"""RACE rules: thread-safety lints over the serve/dist/obs stack.

The serve layer (PRs 7-9) is genuinely multi-threaded —
``ThreadingHTTPServer`` handlers, admission slots, circuit breakers,
contextvar-bound trace ids and deadlines — and its thread-safety
invariants were previously enforced only by convention. These rules
make the conventions machine-checked:

* **RACE001** — a class that allocates its own ``threading.Lock`` /
  ``RLock`` has declared "my state is shared"; every mutation of
  ``self`` state outside a ``with self._lock:`` block (or an
  acquire/release pair) is a lost-update waiting for load. Private
  helpers documented "call with the lock held" are honored via an
  intra-class call-graph fixpoint: a method whose every intra-class
  call site is lock-guarded (or inside another lock-bound method) is
  itself lock-bound. ``__init__``-family methods are exempt — the
  object is not yet shared.
* **RACE002** — a bare ``lock.acquire()`` must reach a ``release()``
  on *every* path (checked on the intra-function CFG, exception edges
  included); ``with`` or ``try/finally`` are the accepted shapes.
* **RACE003** — a ``ContextVar.set()`` is only safe inside a
  scope-managed helper (the ``trace_scope`` / ``deadline_scope``
  pattern): a ``@contextmanager`` function that resets the var in a
  ``finally``. A raw ``set()`` leaks ambient state into whatever runs
  next on the thread.
* **RACE004** — blocking calls (``time.sleep``, un-timeouted
  ``socket`` / ``http.client`` constructors) inside request-handler
  methods pin a server thread; handlers must stay non-blocking or
  opt in explicitly via ``# repro: ignore[RACE004]``.

Everything here is pure syntax over one module's AST — no imports are
executed. Locks received from outside (constructor parameters) are
invisible to RACE001 by design: the rule keys on the allocation site.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    dotted_name,
    iter_functions,
    module_imports,
    resolve_dotted,
)
from repro.analysis.cfg import (
    build_cfg,
    own_exprs,
    own_statements,
    releases_on_all_paths,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import finding, register_rule

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "RACE001", "concurrency", Severity.ERROR,
    "lock-holding class mutates self state outside its lock")
register_rule(
    "RACE002", "concurrency", Severity.ERROR,
    "lock.acquire() without a release on every path")
register_rule(
    "RACE003", "concurrency", Severity.ERROR,
    "ContextVar.set() outside a scope-managed helper")
register_rule(
    "RACE004", "concurrency", Severity.WARNING,
    "blocking call inside a request-handler method")

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: resolved constructors that make a class "lock-holding".
_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock"})

#: method names whose call mutates the receiver in place (shared with
#: the DET rules' view of container mutation).
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse", "move_to_end", "__setitem__",
})

#: methods that run before the object can be shared across threads.
_UNSHARED_METHODS = frozenset({
    "__init__", "__post_init__", "__new__", "__del__",
})

_SCOPE_DECORATORS = frozenset({
    "contextlib.contextmanager", "contextlib.asynccontextmanager",
})

_HANDLER_BASES = ("BaseHTTPRequestHandler", "SimpleHTTPRequestHandler")


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _self_rooted(node: ast.AST) -> str | None:
    """Dotted path under ``self`` when the attribute/subscript chain
    roots at ``self`` (``self.a.b[k]`` -> ``a.b``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        inner = node.value
        while isinstance(inner, ast.Subscript):
            inner = inner.value
        node = inner
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _is_lock_call(node: ast.expr, imports: dict[str, str]) -> bool:
    return (isinstance(node, ast.Call)
            and resolve_dotted(node.func, imports) in _LOCK_FACTORIES)


def _field_lock_default(node: ast.expr,
                        imports: dict[str, str]) -> bool:
    """``field(default_factory=threading.RLock)`` (dataclass form)."""
    if not isinstance(node, ast.Call):
        return False
    resolved = resolve_dotted(node.func, imports)
    if resolved not in ("dataclasses.field", "field"):
        return False
    for keyword in node.keywords:
        if (keyword.arg == "default_factory"
                and resolve_dotted(keyword.value, imports)
                in _LOCK_FACTORIES):
            return True
    return False


def lock_attrs(cls: ast.ClassDef, imports: dict[str, str]) -> set[str]:
    """Attribute names holding a lock this class allocates itself."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
                and (_is_lock_call(stmt.value, imports)
                     or _field_lock_default(stmt.value, imports))):
            attrs.add(stmt.target.id)
    for method in cls.body:
        if not isinstance(method, FunctionNode):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_lock_call(node.value, imports):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.add(attr)
    return attrs


# -- RACE001: unguarded self-state mutation ---------------------------


def _scan_method(method: FunctionNode, locks: set[str]) -> tuple[
        list[tuple[int, str]], list[tuple[str, bool]]]:
    """(unguarded mutations as ``(line, description)``, intra-class
    call sites as ``(callee, guarded)``)."""
    mutations: list[tuple[int, str]] = []
    calls: list[tuple[str, bool]] = []

    def is_lock_expr(expr: ast.expr) -> bool:
        attr = _self_attr(expr)
        return attr is not None and attr in locks

    def lock_op(stmt: ast.stmt, op: str) -> bool:
        """``self.<lock>.acquire()`` / ``.release()`` statement."""
        if not isinstance(stmt, ast.Expr):
            return False
        call = stmt.value
        return (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == op
                and is_lock_expr(call.func.value))

    def scan_expr(expr: ast.AST, guarded: bool) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                calls.append((func.attr, guarded))
            elif func.attr in _MUTATING_METHODS and not guarded:
                rooted = _self_rooted(func.value)
                if rooted is not None and rooted not in locks:
                    mutations.append((
                        node.lineno,
                        f"self.{rooted}.{func.attr}(...)"))

    def store_targets(stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, ast.Assign):
            return list(stmt.targets)
        if isinstance(stmt, ast.AugAssign):
            return [stmt.target]
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return [stmt.target]
        if isinstance(stmt, ast.Delete):
            return list(stmt.targets)
        return []

    def scan_stores(stmt: ast.stmt) -> None:
        flat: list[ast.expr] = []
        for target in store_targets(stmt):
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            rooted = _self_rooted(target)
            if rooted is not None and rooted not in locks:
                mutations.append((stmt.lineno, f"self.{rooted}"))

    def visit_block(stmts: list[ast.stmt], guarded: bool) -> None:
        held = guarded
        for stmt in stmts:
            visit_stmt(stmt, held)
            if lock_op(stmt, "acquire"):
                held = True
            elif lock_op(stmt, "release"):
                held = guarded

    def visit_stmt(stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                is_lock_expr(item.context_expr) for item in stmt.items)
            for expr in own_exprs(stmt):
                scan_expr(expr, guarded)
            visit_block(stmt.body, inner)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, FunctionNode):
            # Nested defs inherit the syntactic guard state; closures
            # escaping the lock are out of scope for a syntax rule.
            visit_block(stmt.body, guarded)
            return
        if isinstance(stmt, ast.Try):
            visit_block(stmt.body, guarded)
            for handler in stmt.handlers:
                visit_block(handler.body, guarded)
            visit_block(stmt.orelse, guarded)
            visit_block(stmt.finalbody, guarded)
            return
        for expr in own_exprs(stmt):
            scan_expr(expr, guarded)
        if not guarded:
            scan_stores(stmt)
        for attr in ("body", "orelse"):
            visit_block(getattr(stmt, attr, []), guarded)

    visit_block(list(method.body), False)
    return mutations, calls


def _check_race001(cls: ast.ClassDef, file: str,
                   imports: dict[str, str]) -> list[Finding]:
    locks = lock_attrs(cls, imports)
    if not locks:
        return []
    methods = [m for m in cls.body if isinstance(m, FunctionNode)]
    per_method: dict[str, list[tuple[int, str]]] = {}
    call_sites: dict[str, list[tuple[str, bool]]] = {}
    for method in methods:
        mutations, calls = _scan_method(method, locks)
        per_method[method.name] = mutations
        for callee, guarded in calls:
            call_sites.setdefault(callee, []).append(
                (method.name, guarded))

    # Fixpoint: a method is lock-bound when every intra-class call
    # site is guarded, inside an unshared method, or inside another
    # lock-bound method ("call with the lock held" helpers).
    lock_bound: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in per_method:
            if name in lock_bound:
                continue
            sites = call_sites.get(name, [])
            if sites and all(
                    guarded or caller in lock_bound
                    or caller in _UNSHARED_METHODS
                    for caller, guarded in sites):
                lock_bound.add(name)
                changed = True

    findings: list[Finding] = []
    for method in methods:
        if method.name in _UNSHARED_METHODS \
                or method.name in lock_bound:
            continue
        for line, description in per_method[method.name]:
            findings.append(finding(
                "RACE001",
                f"{description} mutated outside "
                f"'with self.{sorted(locks)[0]}:' in lock-holding "
                f"class {cls.name}",
                file=file, line=line,
                symbol=f"{cls.name}.{method.name}"))
    return findings


# -- RACE002: acquire without release on every path -------------------


def _contains_method_call(stmt: ast.stmt, receiver: str,
                          method: str) -> bool:
    for expr in own_exprs(stmt):
        for node in ast.walk(expr):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == method
                    and dotted_name(node.func.value) == receiver):
                return True
    return False


def bare_acquire(stmt: ast.stmt,
                 receivers: set[str]) -> tuple[str, int] | None:
    """(receiver, line) when ``stmt`` is an unconditional blocking
    ``<receiver>.acquire()`` statement (no timeout/blocking args —
    conditional acquires hand the failure path back to the caller)."""
    if isinstance(stmt, ast.Expr):
        value: ast.expr = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    else:
        return None
    if not (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
            and not value.args and not value.keywords):
        return None
    receiver = dotted_name(value.func.value)
    if receiver is None or receiver not in receivers:
        return None
    return receiver, value.lineno


def _acquire_receivers(func: FunctionNode, cls_locks: set[str],
                       imports: dict[str, str]) -> set[str]:
    receivers = {f"self.{attr}" for attr in cls_locks}
    for stmt in own_statements(func):
        if isinstance(stmt, ast.Assign) \
                and _is_lock_call(stmt.value, imports):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    receivers.add(target.id)
    return receivers


def check_release_paths(
        func: FunctionNode, receivers: set[str], rule_id: str,
        file: str, what: str) -> list[Finding]:
    """Shared CFG walk for RACE002/LEAK001: every bare ``.acquire()``
    on ``receivers`` must reach a ``.release()`` on every path."""
    findings: list[Finding] = []
    cfg = None
    for stmt in own_statements(func):
        acquired = bare_acquire(stmt, receivers)
        if acquired is None:
            continue
        receiver, line = acquired
        if cfg is None:
            cfg = build_cfg(func)
        if not releases_on_all_paths(
                cfg, stmt,
                lambda s, r=receiver: _contains_method_call(
                    s, r, "release")):
            findings.append(finding(
                rule_id,
                f"{receiver}.acquire() may exit {func.name} without "
                f"release; wrap the {what} in 'with' or try/finally",
                file=file, line=line, symbol=func.name))
    return findings


def _check_race002(
        file: str, imports: dict[str, str],
        classes: list[ast.ClassDef],
        functions: list[FunctionNode]) -> list[Finding]:
    cls_locks: dict[int, set[str]] = {}
    for node in classes:
        attrs = lock_attrs(node, imports)
        for member in node.body:
            if isinstance(member, FunctionNode):
                cls_locks[id(member)] = attrs
    findings: list[Finding] = []
    for func in functions:
        receivers = _acquire_receivers(
            func, cls_locks.get(id(func), set()), imports)
        if receivers:
            findings.extend(check_release_paths(
                func, receivers, "RACE002", file, "critical section"))
    return findings


# -- RACE003: contextvar set outside a scope helper -------------------


def _is_scope_helper(func: FunctionNode,
                     imports: dict[str, str]) -> bool:
    return any(
        resolve_dotted(decorator, imports) in _SCOPE_DECORATORS
        or dotted_name(decorator) in ("contextmanager",
                                      "asynccontextmanager")
        for decorator in func.decorator_list)


def _resets_in_finally(func: FunctionNode, var: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "reset"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == var):
                    return True
    return False


def _check_race003(tree: ast.Module, file: str,
                   imports: dict[str, str]) -> list[Finding]:
    declared: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) \
                and isinstance(stmt.value, ast.Call) \
                and resolve_dotted(stmt.value.func, imports) in (
                    "contextvars.ContextVar", "ContextVar"):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    declared.add(target.id)

    # One traversal collects both the set-sites and the reset receiver
    # names; candidates are judged afterwards, once reset_names is
    # complete.
    sets: list[tuple[str, int, FunctionNode | None]] = []
    reset_names: set[str] = set()

    def visit(node: ast.AST, enclosing: FunctionNode | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Attribute) \
                    and isinstance(child.func.value, ast.Name):
                if child.func.attr == "set":
                    sets.append((child.func.value.id, child.lineno,
                                 enclosing))
                elif child.func.attr == "reset":
                    reset_names.add(child.func.value.id)
            if isinstance(child, FunctionNode):
                visit(child, child)
            else:
                visit(child, enclosing)

    visit(tree, None)

    findings: list[Finding] = []
    for var, line, enclosing in sets:
        known = var in declared or (
            var in imports and var in reset_names)
        if known and not (
                enclosing is not None
                and _is_scope_helper(enclosing, imports)
                and _resets_in_finally(enclosing, var)):
            findings.append(finding(
                "RACE003",
                f"{var}.set(...) outside a scope-managed "
                f"helper; use a @contextmanager that resets "
                f"the token in finally",
                file=file, line=line,
                symbol=enclosing.name if enclosing else None))
    return findings


# -- RACE004: blocking calls in request handlers ----------------------


def _handler_classes(
        classes: list[ast.ClassDef],
        imports: dict[str, str]) -> list[ast.ClassDef]:
    handlers: dict[str, ast.ClassDef] = {}
    for cls in classes:
        for base in cls.bases:
            resolved = resolve_dotted(base, imports) or ""
            if resolved.rsplit(".", 1)[-1] in _HANDLER_BASES:
                handlers[cls.name] = cls
    # one level of in-module inheritance
    for cls in classes:
        if cls.name in handlers:
            continue
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id in handlers:
                handlers[cls.name] = cls
    return list(handlers.values())


def _blocking_reason(node: ast.Call,
                     imports: dict[str, str]) -> str | None:
    resolved = resolve_dotted(node.func, imports)
    if resolved == "time.sleep":
        return "time.sleep()"
    if resolved in ("http.client.HTTPConnection",
                    "http.client.HTTPSConnection",
                    "socket.create_connection",
                    "socket.socket"):
        if not any(kw.arg == "timeout" for kw in node.keywords):
            return f"un-timeouted {resolved}"
    return None


def _check_race004(classes: list[ast.ClassDef], file: str,
                   imports: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []
    for cls in _handler_classes(classes, imports):
        for method in cls.body:
            if not isinstance(method, FunctionNode):
                continue
            for stmt in own_statements(method):
                for expr in own_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        reason = _blocking_reason(node, imports)
                        if reason is not None:
                            findings.append(finding(
                                "RACE004",
                                f"{reason} blocks a server thread "
                                f"inside request handler "
                                f"{cls.name}.{method.name}",
                                file=file, line=node.lineno,
                                symbol=f"{cls.name}.{method.name}"))
    return findings


def check_module(
        tree: ast.Module, file: str, *,
        imports: dict[str, str] | None = None,
        classes: list[ast.ClassDef] | None = None,
        functions: list[FunctionNode] | None = None) -> list[Finding]:
    """Run RACE001-004 over one parsed module.

    ``imports``/``classes``/``functions`` let the scanner share one
    tree walk across every rule family; when omitted (direct calls,
    tests) they are derived here.
    """
    if imports is None:
        imports = module_imports(tree)
    if classes is None:
        classes = [n for n in ast.walk(tree)
                   if isinstance(n, ast.ClassDef)]
    if functions is None:
        functions = list(iter_functions(tree))
    findings: list[Finding] = []
    for node in classes:
        findings.extend(_check_race001(node, file, imports))
    findings.extend(_check_race002(file, imports, classes, functions))
    findings.extend(_check_race003(tree, file, imports))
    findings.extend(_check_race004(classes, file, imports))
    return findings
