"""Inline suppressions: ``# repro: ignore[RULE,...]`` comments.

A growing rule set needs an escape hatch for deliberate violations —
the serve layer's chaos drip-feed *wants* to sleep inside a request
handler — but unaudited escape hatches rot. The contract here:

* a suppression silences findings **on its own line only**, matched
  by exact rule id (``RACE004``) or family prefix (``RACE``);
* every token must earn its keep: a token that silences nothing is
  itself a finding (**SUP001**), so stale suppressions surface the
  moment the code they excused changes;
* SUP001 cannot be suppressed — the audit trail has no trapdoor.

Extraction tokenizes the source and matches **comment tokens only**
(cached alongside the parse in the scanner) — a docstring that merely
*mentions* the marker syntax is not a suppression. Files that fail to
tokenize fall back to a per-line regex so a suppression next to a
syntax oddity still counts.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import finding, register_rule

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "SUP001", "suppression", Severity.WARNING,
    "suppression comment matches no finding on its line")

_MARKER = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: ignore[...]`` marker."""

    line: int
    rules: tuple[str, ...]


def _marker_rules(text: str) -> tuple[str, ...]:
    match = _MARKER.search(text)
    if match is None:
        return ()
    return tuple(
        token.strip().upper()
        for token in match.group(1).split(",") if token.strip())


def _comment_lines(source: str) -> list[tuple[int, str]] | None:
    """(line, comment text) for every comment token, or None when the
    source does not tokenize."""
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(
                io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return comments


def extract_suppressions(source: str) -> tuple[Suppression, ...]:
    """Every suppression marker in ``source``, line-anchored."""
    comments = _comment_lines(source)
    if comments is None:
        comments = list(enumerate(source.splitlines(), start=1))
    found: list[Suppression] = []
    for lineno, text in comments:
        rules = _marker_rules(text)
        if rules:
            found.append(Suppression(line=lineno, rules=rules))
    return tuple(found)


def _token_matches(token: str, rule_id: str) -> bool:
    return rule_id == token or (
        rule_id.startswith(token) and len(token) >= 3)


def apply_suppressions(
        findings: list[Finding],
        suppressions: tuple[Suppression, ...],
        file: str) -> list[Finding]:
    """Drop findings a same-line marker matches; emit SUP001 for
    every token that matched nothing."""
    if not suppressions:
        return findings
    by_line = {s.line: s for s in suppressions}
    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for item in findings:
        marker = by_line.get(item.line)
        token = None
        if marker is not None and item.rule != "SUP001":
            token = next(
                (t for t in marker.rules
                 if _token_matches(t, item.rule)), None)
        if token is None:
            kept.append(item)
        else:
            used.add((marker.line, token))
    for marker in suppressions:
        for token in marker.rules:
            if (marker.line, token) not in used:
                kept.append(finding(
                    "SUP001",
                    f"ignore[{token}] suppresses nothing on this "
                    f"line; delete the stale marker",
                    file=file, line=marker.line))
    return kept
