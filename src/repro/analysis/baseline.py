"""Baseline grandfathering for incremental rule adoption.

Turning on a new rule family over a mature tree usually surfaces debt
nobody can pay down in one PR. The baseline makes adoption monotonic:
``--update-baseline`` snapshots today's findings into a committed
JSON file, ``--baseline`` filters exactly those findings out of later
runs, and anything *new* still gates. The repo's own policy is
stricter — ``analysis-baseline.json`` is committed **empty** and a
tier-1 test asserts it stays empty — but the mechanism is what makes
that promise enforceable rather than aspirational.

Matching is on ``(rule, posix-normalized file, message)``: stable
across line drift from unrelated edits, invalidated the moment the
finding's substance changes.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath
from typing import Any

from repro.analysis.findings import AnalysisReport, Finding
from repro.errors import ReproError

BASELINE_SCHEMA = "repro.analysis/baseline/v1"

BaselineKey = tuple[str, str, str]


class BaselineError(ReproError):
    """Unreadable or schema-mismatched baseline file."""


def baseline_key(item: Finding) -> BaselineKey:
    return (item.rule, _norm(item.file), item.message)


def _norm(file: str) -> str:
    path = PurePath(file).as_posix()
    return path[2:] if path.startswith("./") else path


def load_baseline(path: str | Path) -> set[BaselineKey]:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(
            f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(
            f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(data, dict) \
            or data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} does not declare schema "
            f"{BASELINE_SCHEMA!r}")
    entries = data.get("findings", [])
    keys: set[BaselineKey] = set()
    for entry in entries:
        try:
            keys.add((entry["rule"], _norm(entry["file"]),
                      entry["message"]))
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"baseline {path} entry {entry!r} is missing "
                f"rule/file/message") from error
    return keys


def apply_baseline(
        report: AnalysisReport,
        baseline: set[BaselineKey]) -> tuple[AnalysisReport, int]:
    """(report minus baselined findings, matched count)."""
    kept = AnalysisReport(targets=list(report.targets))
    matched = 0
    for item in report.findings:
        if baseline_key(item) in baseline:
            matched += 1
        else:
            kept.add(item)
    return kept, matched


def baseline_payload(report: AnalysisReport) -> dict[str, Any]:
    entries: list[dict[str, str]] = []
    seen: set[BaselineKey] = set()
    for item in report.sorted_findings():
        key = baseline_key(item)
        if key in seen:
            continue
        seen.add(key)
        entries.append({"rule": key[0], "file": key[1],
                        "message": key[2]})
    return {"schema": BASELINE_SCHEMA, "findings": entries}


def write_baseline(report: AnalysisReport, path: str | Path) -> int:
    """Snapshot the report's findings; returns the entry count."""
    payload = baseline_payload(report)
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(payload["findings"])
