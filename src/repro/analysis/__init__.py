"""Static verification of vertex programs, queries, and fault plans.

The paper's survey puts debuggability and verifying correctness among
users' most pressing challenges (Table 19, §6); the runtime's chaos
harness asserts byte-identical replay but nothing catches the *user*
errors that silently break it until mid-run. This package closes that
gap with an AST-driven checker — a rule registry with severity levels,
``file:line`` findings, JSON/text reporters, and a CI-gateable
``python -m repro.analysis`` CLI — covering four rule families:

* **DET** (:mod:`~repro.analysis.determinism`) — vertex-program
  determinism: unseeded entropy, unordered-set iteration feeding
  sends/float accumulation, cross-superstep state outside the vertex
  value;
* **CKPT** (:mod:`~repro.analysis.checkpoint_safety`) — vertex values
  and aggregator identities must survive a JSON checkpoint
  round-trip;
* **QRY** (:mod:`~repro.analysis.query_check`) — query ASTs walked
  against a :class:`~repro.graphs.schema.GraphSchema`: unknown
  labels/properties, type-mismatched predicates, unbound variables;
* **CFG** (:mod:`~repro.analysis.config_check`) — fault plans (parse
  errors, duplicate slots) and bench-case configs as pure checkers;
* **RACE** (:mod:`~repro.analysis.concurrency`) — flow-sensitive
  thread-safety: unguarded self-state mutation in lock-holding
  classes, acquire without release on every path, raw
  ``ContextVar.set()``, blocking calls in request handlers;
* **LEAK**/**DLC** (:mod:`~repro.analysis.resources`) — admission
  slots, spans, and file handles released on every exit (checked on
  the intra-function CFG of :mod:`~repro.analysis.cfg` with
  exception edges), plus deadline-coverage for loops in
  deadline-engaged functions;
* **SUP** (:mod:`~repro.analysis.suppressions`) — inline
  ``# repro: ignore[RULE]`` markers, with stale markers flagged.

Adoption infrastructure lives next to the rules: a committed
baseline (:mod:`~repro.analysis.baseline`) grandfathers pre-existing
findings, and :func:`render_sarif` exports SARIF 2.1.0 for CI code
scanning.

Opt-in ``strict=True`` wiring runs these at build time in the spec
builders (:func:`repro.dgps.algorithms.pagerank_spec` ...), the
:class:`~repro.dist.coordinator.Coordinator`, and
:func:`repro.query.run_query`, raising :class:`AnalysisError` on
errors and recording findings as obs span events.
"""

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkpoint_safety import check_value, roundtrip_problem
from repro.analysis.config_check import (
    check_bench_cases,
    check_breaker_config,
    check_fault_plan,
    check_fault_plan_object,
    check_slo_spec,
    check_traffic_mix,
)
from repro.analysis.findings import (
    AnalysisError,
    AnalysisReport,
    Finding,
    Severity,
    record_findings,
)
from repro.analysis.programs import analyze_program, analyze_spec
from repro.analysis.query_check import check_query
from repro.analysis.registry import RuleInfo, all_rules, rule_info
from repro.analysis.reporters import (
    render_json,
    render_profile,
    render_rule_catalog,
    render_sarif,
    render_text,
)
from repro.analysis.scanner import (
    analyze_paths,
    ast_cache_stats,
    rule_timings,
    scan_file,
    scan_source,
)
from repro.analysis.suppressions import (
    apply_suppressions,
    extract_suppressions,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BaselineError",
    "Finding",
    "RuleInfo",
    "Severity",
    "all_rules",
    "analyze_paths",
    "apply_baseline",
    "apply_suppressions",
    "ast_cache_stats",
    "analyze_program",
    "analyze_spec",
    "check_bench_cases",
    "check_breaker_config",
    "check_fault_plan",
    "check_fault_plan_object",
    "check_query",
    "check_slo_spec",
    "check_traffic_mix",
    "check_value",
    "extract_suppressions",
    "load_baseline",
    "record_findings",
    "render_json",
    "render_profile",
    "render_rule_catalog",
    "render_sarif",
    "render_text",
    "roundtrip_problem",
    "rule_info",
    "rule_timings",
    "scan_file",
    "scan_source",
    "write_baseline",
]
