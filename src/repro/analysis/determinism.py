"""DET rules: vertex-program determinism lint.

The sharded runtime's whole fault-tolerance story rests on replay
determinism — :mod:`repro.dist.chaos` asserts a recovered run is
byte-identical to a fault-free one. That only holds when the vertex
program is a pure function of ``(vertex value, messages, superstep,
aggregates)``. These rules flag the three ways user programs break
that contract:

* **DET001** — reading an entropy source (unseeded ``random``,
  wall-clock time, ``os.urandom``, ``uuid4``): different on every
  execution, so replayed supersteps diverge.
* **DET002** — iterating a ``set``/``frozenset`` where the order feeds
  message sends or float accumulation: set order is hash-table order,
  so the distributed barrier's combiner folds floats in an
  unspecified order and results stop being reproducible across
  processes or Python versions.
* **DET003** — stashing cross-superstep state outside the vertex
  value (closure mutation, ``global``/``nonlocal``, attributes on
  ``self``): checkpoints capture only vertex values and inboxes, so
  recovery replays supersteps against *already-mutated* hidden state
  and the recovered run is no longer the fault-free run.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import ProgramAst, dotted_name, resolve_dotted
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import finding, register_rule

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "DET001", "determinism", Severity.ERROR,
    "vertex program reads an entropy source (unseeded random / time / "
    "os entropy); replayed supersteps diverge")
register_rule(
    "DET002", "determinism", Severity.ERROR,
    "iteration over an unordered set feeds message sends or float "
    "accumulation; results depend on hash order")
register_rule(
    "DET003", "determinism", Severity.ERROR,
    "cross-superstep state stashed outside the vertex value (closure / "
    "global / self); breaks checkpoint replay equivalence")

#: module-level entropy functions (dotted names after alias resolution).
_ENTROPY_CALLS = frozenset({
    *(f"random.{name}" for name in (
        "random", "randint", "randrange", "choice", "choices",
        "sample", "shuffle", "uniform", "gauss", "normalvariate",
        "betavariate", "expovariate", "triangular", "lognormvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "seed")),
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: entropy call *prefixes* (whole submodules).
_ENTROPY_PREFIXES = ("numpy.random.", "secrets.")

#: zero-argument constructors that produce an unseeded generator.
_UNSEEDED_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom", "numpy.random.default_rng",
    "numpy.random.Generator", "numpy.random.RandomState",
})

#: method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse", "__setitem__",
})

#: calls sending messages / contributing to aggregators.
_SEND_METHODS = frozenset({"send", "send_to_neighbors", "aggregate"})


def _is_entropy_call(call: ast.Call, imports: dict[str, str]) -> str | None:
    """The offending dotted name when ``call`` reads entropy, else
    None. Seeded constructors (``random.Random(7)``) are fine; the
    zero-argument forms are not."""
    dotted = resolve_dotted(call.func, imports)
    if dotted is None:
        return None
    if dotted in _ENTROPY_CALLS:
        return dotted
    if any(dotted.startswith(prefix) for prefix in _ENTROPY_PREFIXES):
        return dotted
    if dotted in _UNSEEDED_CONSTRUCTORS and not call.args \
            and not call.keywords:
        return f"{dotted}()"
    return None


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _SetTracker:
    """Tracks which local names are (syntactically) sets."""

    def __init__(self, program: ProgramAst):
        self._set_names: set[str] = set()
        for node in ast.walk(program.func):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                annotation = ast.unparse(node.annotation)
                if annotation.split("[")[0] in ("set", "frozenset",
                                                "Set", "FrozenSet"):
                    if isinstance(node.target, ast.Name):
                        self._set_names.add(node.target.id)

    def is_unordered(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name) and node.id in self._set_names:
            return True
        return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return True
    return False


def _feeds_send_or_accumulation(body: list[ast.stmt]) -> bool:
    """True when the loop body sends messages, aggregates, or
    accumulates (``+=`` and friends)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                if node.func.attr in _SEND_METHODS:
                    return True
    return False


def check_entropy(program: ProgramAst) -> list[Finding]:
    """DET001: entropy sources inside the program body."""
    findings = []
    for node in ast.walk(program.func):
        if isinstance(node, ast.Call):
            offender = _is_entropy_call(node, program.imports)
            if offender is not None:
                findings.append(finding(
                    "DET001",
                    f"call to {offender} inside vertex program "
                    f"{program.name!r}: every replayed superstep sees a "
                    f"different value; seed outside the program and "
                    f"store draws in the vertex value",
                    file=program.file, line=program.line(node),
                    symbol=program.name))
    return findings


def check_unordered_iteration(program: ProgramAst) -> list[Finding]:
    """DET002: set iteration feeding sends or float accumulation."""
    findings = []
    tracker = _SetTracker(program)

    def flag(node: ast.AST, what: str) -> None:
        findings.append(finding(
            "DET002",
            f"{what} in vertex program {program.name!r}: set order is "
            f"hash-table order, so message / accumulation order is "
            f"unspecified; sort the elements first",
            file=program.file, line=program.line(node),
            symbol=program.name))

    for node in ast.walk(program.func):
        if isinstance(node, ast.For) and tracker.is_unordered(node.iter):
            if _feeds_send_or_accumulation(node.body):
                flag(node, "iteration over an unordered set feeds "
                           "sends/accumulation")
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("sum", "math.fsum") and node.args:
                arg = node.args[0]
                if tracker.is_unordered(arg):
                    flag(node, f"{dotted}() over an unordered set")
                elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)) \
                        and arg.generators \
                        and tracker.is_unordered(arg.generators[0].iter):
                    flag(node, f"{dotted}() over an unordered set")
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            # comprehension over a set whose elements are sent
            continue
    return findings


def check_hidden_state(program: ProgramAst) -> list[Finding]:
    """DET003: writes to anything that outlives the superstep call."""
    findings = []
    ctx = program.ctx_name
    local = program.locals

    def is_external(name: str | None) -> bool:
        return name is not None and name != ctx and name not in local

    def flag(node: ast.AST, what: str) -> None:
        findings.append(finding(
            "DET003",
            f"{what} in vertex program {program.name!r}: checkpoints "
            f"capture only vertex values and inboxes, so recovery "
            f"replays supersteps against already-mutated state; keep "
            f"cross-superstep state in the vertex value",
            file=program.file, line=program.line(node),
            symbol=program.name))

    for node in ast.walk(program.func):
        if isinstance(node, ast.Global):
            flag(node, f"global statement ({', '.join(node.names)})")
        elif isinstance(node, ast.Nonlocal):
            flag(node, f"nonlocal statement ({', '.join(node.names)})")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Attribute):
                    root = _root_name(target)
                    if root == "self":
                        flag(node, f"state stashed on self "
                                   f"({ast.unparse(target)})")
                    elif is_external(root):
                        flag(node, f"attribute write to closure/global "
                                   f"{ast.unparse(target)!r}")
                elif isinstance(target, ast.Subscript):
                    root = _root_name(target)
                    if root == "self":
                        flag(node, f"state stashed on self "
                                   f"({ast.unparse(target)})")
                    elif is_external(root):
                        flag(node, f"subscript write to closure/global "
                                   f"{ast.unparse(target)!r}")
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                root = _root_name(node.func.value)
                if root == "self":
                    flag(node, f"mutation of self state "
                               f"(self...{node.func.attr}())")
                elif is_external(root):
                    flag(node, f"mutating call "
                               f"{root}.{node.func.attr}() on a "
                               f"closure/global")
    return findings


def check_program(program: ProgramAst) -> list[Finding]:
    """All DET rules over one vertex program."""
    return (check_entropy(program)
            + check_unordered_iteration(program)
            + check_hidden_state(program))
