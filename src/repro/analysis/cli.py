"""``python -m repro.analysis``: the CI-gateable entry point.

Subcommands:

* ``check PATH [PATH...]`` (the default — bare paths work:
  ``python -m repro.analysis src/repro examples``): run the custom
  rule families over the files, print text, ``--json``, or
  ``--sarif`` findings, exit 1 when any error-severity finding
  survives filtering, ``--baseline``/``--update-baseline``
  grandfathering, and ``# repro: ignore[RULE]`` suppressions;
  ``--profile`` appends per-rule-family sweep timings.
* ``selfcheck [PATH...]``: run ``ruff`` and ``mypy`` (when installed;
  both are optional dev tools and are skipped with a note otherwise)
  plus the custom rules and the bench-suite config check over the
  repo.
* ``rules``: print the registered rule catalog.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.registry import match_selection
from repro.analysis.reporters import (
    render_json,
    render_profile,
    render_rule_catalog,
    render_sarif,
    render_text,
)
from repro.analysis.scanner import (
    analyze_paths,
    ast_cache_stats,
    rule_timings,
)

_SUBCOMMANDS = ("check", "selfcheck", "rules")

#: external tools selfcheck runs when importable.
_EXTERNAL_TOOLS = (
    ("ruff", ("-m", "ruff", "check")),
    ("mypy", ("-m", "mypy")),
)


def _filter(report: AnalysisReport, select: tuple[str, ...] | None,
            ignore: tuple[str, ...]) -> AnalysisReport:
    filtered = AnalysisReport(targets=list(report.targets))
    filtered.findings = [
        f for f in report.findings
        if match_selection(f.rule, select, ignore)]
    return filtered


def _csv(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _cmd_check(args: argparse.Namespace) -> int:
    report = _filter(analyze_paths(args.paths), _csv(args.select),
                     _csv(args.ignore) or ())
    if args.update_baseline:
        if args.baseline is None:
            print("--update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        count = write_baseline(report, args.baseline)
        print(f"baseline {args.baseline}: {count} finding(s) "
              f"recorded")
        return 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
        report, matched = apply_baseline(report, baseline)
        if matched:
            print(f"baseline: {matched} finding(s) grandfathered",
                  file=sys.stderr)
    if args.sarif:
        print(render_sarif(report))
    elif args.json:
        print(render_json(report))
    else:
        print(render_text(report))
    if args.profile:
        print(render_profile(rule_timings(), ast_cache_stats()))
    return report.exit_code(fail_on=Severity.parse(args.fail_on))


def _run_external(tool: str, tool_args: tuple[str, ...],
                  paths: list[str]) -> tuple[str, int | None]:
    """(status line, exit code or None when skipped)."""
    if importlib.util.find_spec(tool) is None:
        return f"{tool}: skipped (not installed)", None
    completed = subprocess.run(
        [sys.executable, *tool_args, *paths],
        capture_output=True, text=True)
    output = (completed.stdout + completed.stderr).strip()
    status = "ok" if completed.returncode == 0 else (
        f"exit {completed.returncode}")
    line = f"{tool}: {status}"
    if output and completed.returncode != 0:
        line += "\n" + output
    return line, completed.returncode


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    paths = args.paths or ["src/repro", "examples"]
    failures = 0
    for tool, tool_args in _EXTERNAL_TOOLS:
        line, code = _run_external(tool, tool_args, paths)
        print(line)
        if code not in (None, 0):
            failures += 1

    report = analyze_paths(paths)
    try:
        from repro.analysis.config_check import check_bench_cases
        from repro.obs.bench_cases import default_suite

        report.extend(check_bench_cases(default_suite()))
    except Exception as error:  # bench suite broken IS a finding
        print(f"bench-case check: failed to build suite ({error})")
        failures += 1
    print(f"custom rules: {report.summary()}")
    for finding in report.sorted_findings():
        print(f"  {finding.render()}")
    return 1 if failures or not report.ok else 0


def _cmd_rules(args: argparse.Namespace) -> int:
    print(render_rule_catalog())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verification of vertex programs, queries "
                    "and fault plans before they run.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze files/directories")
    check.add_argument("paths", nargs="+",
                       help="files or directories to scan")
    check.add_argument("--json", action="store_true",
                       help="emit the JSON report instead of text")
    check.add_argument("--select", default=None,
                       help="comma-separated rule-id prefixes to keep "
                            "(e.g. DET,QRY)")
    check.add_argument("--ignore", default=None,
                       help="comma-separated rule-id prefixes to drop")
    check.add_argument("--fail-on", default="error",
                       choices=("info", "warning", "error"),
                       help="lowest severity that causes exit 1")
    check.add_argument("--sarif", action="store_true",
                       help="emit a SARIF 2.1.0 log instead of text")
    check.add_argument("--baseline", default=None, metavar="PATH",
                       help="grandfather findings recorded in this "
                            "baseline file")
    check.add_argument("--update-baseline", action="store_true",
                       help="snapshot surviving findings into "
                            "--baseline and exit 0")
    check.add_argument("--profile", action="store_true",
                       help="append per-rule-family sweep timings "
                            "and cache stats")
    check.set_defaults(func=_cmd_check)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="ruff + mypy (when installed) + custom rules + bench "
             "config over the repo")
    selfcheck.add_argument("paths", nargs="*",
                           help="paths (default: src/repro examples)")
    selfcheck.set_defaults(func=_cmd_selfcheck)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare paths run the default subcommand:
    #   python -m repro.analysis src/repro examples
    if argv and argv[0] not in _SUBCOMMANDS \
            and not argv[0].startswith("-"):
        argv.insert(0, "check")
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
