"""Text and JSON rendering of analysis reports."""

from __future__ import annotations

import json

from repro.analysis.findings import AnalysisReport
from repro.analysis.registry import all_rules


def render_text(report: AnalysisReport) -> str:
    """GCC-style ``file:line: severity RULE: message`` lines plus a
    summary tail."""
    lines = [f.render() for f in report.sorted_findings()]
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: AnalysisReport, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def render_rule_catalog() -> str:
    """The registered rule table (the CLI's ``rules`` subcommand)."""
    rows = [("RULE", "FAMILY", "SEVERITY", "SUMMARY")]
    for info in all_rules():
        rows.append((info.rule_id, info.family,
                     info.severity.name.lower(), info.summary))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for rule_id, family, severity, summary in rows:
        lines.append(f"{rule_id:<{widths[0]}}  {family:<{widths[1]}}  "
                     f"{severity:<{widths[2]}}  {summary}")
    return "\n".join(lines)
