"""Text, JSON, and SARIF rendering of analysis reports."""

from __future__ import annotations

import json
from pathlib import PurePath

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.registry import all_rules

#: SARIF 2.1.0 result levels for our severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(report: AnalysisReport) -> str:
    """GCC-style ``file:line: severity RULE: message`` lines plus a
    summary tail."""
    lines = [f.render() for f in report.sorted_findings()]
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: AnalysisReport, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def render_sarif(report: AnalysisReport, indent: int = 2) -> str:
    """SARIF 2.1.0 log for CI code-scanning upload: one run, the full
    rule catalog in ``tool.driver.rules``, one ``result`` per finding
    with a physical location (posix uri + 1-based start line)."""
    rules = [
        {
            "id": info.rule_id,
            "shortDescription": {"text": info.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[info.severity],
            },
            "properties": {"family": info.family},
        }
        for info in all_rules()
    ]
    results = []
    for item in report.sorted_findings():
        result = {
            "ruleId": item.rule,
            "level": _SARIF_LEVELS[item.severity],
            "message": {"text": item.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePath(item.file).as_posix(),
                    },
                    "region": {"startLine": max(item.line, 1)},
                },
            }],
        }
        if item.symbol:
            result["properties"] = {"symbol": item.symbol}
        results.append(result)
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://example.invalid/repro-analysis",
                    "version": "1.0.0",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=indent, sort_keys=True)


def render_profile(family_ms: dict[str, float],
                   cache_stats: dict[str, object]) -> str:
    """The ``--profile`` table: sweep milliseconds per rule family
    plus AST/result cache effectiveness."""
    lines = ["rule-family timings (ms):"]
    if family_ms:
        width = max(len(name) for name in family_ms)
        total = sum(family_ms.values())
        for name in sorted(family_ms,
                           key=lambda n: -family_ms[n]):
            lines.append(f"  {name:<{width}}  {family_ms[name]:9.3f}")
        lines.append(f"  {'total':<{width}}  {total:9.3f}")
    else:
        lines.append("  (no rule sweeps ran)")
    lines.append(
        "ast cache: "
        f"{cache_stats['hits']} hit(s), "
        f"{cache_stats['misses']} miss(es), "
        f"{cache_stats['entries']} cached parse(s), "
        f"{cache_stats['result_hits']} whole-file result hit(s)")
    return "\n".join(lines)


def render_rule_catalog() -> str:
    """The registered rule table (the CLI's ``rules`` subcommand)."""
    rows = [("RULE", "FAMILY", "SEVERITY", "SUMMARY")]
    for info in all_rules():
        rows.append((info.rule_id, info.family,
                     info.severity.name.lower(), info.summary))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for rule_id, family, severity, summary in rows:
        lines.append(f"{rule_id:<{widths[0]}}  {family:<{widths[1]}}  "
                     f"{severity:<{widths[2]}}  {summary}")
    return "\n".join(lines)
