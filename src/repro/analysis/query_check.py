"""QRY rules: static validation of queries against a GraphSchema.

The executor discovers unknown labels the expensive way — by matching
nothing — and unknown properties surface as ``None`` values that
silently fail every predicate. Walking the parsed
:class:`repro.query.ast.Query` against a
:class:`repro.graphs.schema.GraphSchema` catches these *before* the
backtracking matcher runs:

* **QRY001** — the query text does not parse;
* **QRY002** — RETURN/WHERE references a variable no pattern binds
  (the executor's runtime check, available statically);
* **QRY003 / QRY004** — node / edge label unknown to the schema;
* **QRY005** — property unknown for the variable's declared label;
* **QRY006** — predicate compares a property against a literal of the
  wrong :class:`~repro.graphs.property_graph.PropertyType`.

Schema-dependent rules only fire for what the schema actually
declares: a schema with no edge rules says nothing about edge labels,
so none are rejected.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.registry import finding, register_rule
from repro.errors import GraphError, QueryError
from repro.graphs.property_graph import PropertyType, property_type_of
from repro.graphs.schema import GraphSchema
from repro.query.ast import Comparison, Literal, PropertyRef, Query
from repro.query.parser import parse

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "QRY001", "query", Severity.ERROR,
    "query text fails to parse")
register_rule(
    "QRY002", "query", Severity.ERROR,
    "RETURN/WHERE references a variable no pattern binds")
register_rule(
    "QRY003", "query", Severity.ERROR,
    "node label unknown to the schema")
register_rule(
    "QRY004", "query", Severity.ERROR,
    "edge label unknown to the schema")
register_rule(
    "QRY005", "query", Severity.ERROR,
    "property unknown for the variable's declared label")
register_rule(
    "QRY006", "query", Severity.ERROR,
    "predicate compares a property against a literal of the wrong "
    "type")


def _known_vertex_labels(schema: GraphSchema) -> frozenset[str] | None:
    """The closed set of vertex labels, or None when the schema does
    not constrain them."""
    if schema.allowed_vertex_labels is not None:
        return frozenset(schema.allowed_vertex_labels)
    if schema.vertex_rules:
        return frozenset(schema.vertex_rules)
    return None


def _known_edge_labels(schema: GraphSchema) -> frozenset[str] | None:
    known = set(schema.edge_rules) | set(schema.endpoint_rules)
    return frozenset(known) if known else None


def _variable_labels(query: Query) -> dict[str, str]:
    """variable -> declared label (first labeled occurrence wins)."""
    labels: dict[str, str] = {}
    for pattern in query.patterns:
        for node in pattern.nodes:
            if node.label is not None:
                labels.setdefault(node.variable, node.label)
    return labels


def _property_rule(schema: GraphSchema, label: str, key: str):
    for rule in schema.vertex_rules.get(label, ()):
        if rule.name == key:
            return rule
    return None


def _literal_type(value: object) -> PropertyType | None:
    if value is None:
        return None
    try:
        return property_type_of(value)
    except GraphError:
        return None


def check_query(
    query: Query | str,
    schema: GraphSchema | None = None,
    *,
    file: str = "<query>",
    line: int = 1,
) -> AnalysisReport:
    """Validate one query (text or pre-parsed) against ``schema``.

    Program-independent checks (parse, unbound variables) always run;
    label/property/type checks need a schema.
    """
    report = AnalysisReport()
    report.note_target(file)

    def add(rule_id: str, message: str, symbol: str | None = None) -> None:
        report.add(finding(rule_id, message, file=file, line=line,
                           symbol=symbol))

    if isinstance(query, str):
        try:
            query = parse(query)
        except QueryError as error:
            add("QRY001", f"query does not parse: {error}")
            return report

    known_variables = query.variables()
    for item in query.items:
        if item.variable not in known_variables:
            add("QRY002",
                f"RETURN references unbound variable {item.variable!r}",
                symbol=item.variable)
    referenced = []
    for condition in query.conditions:
        for operand in (condition.left, condition.right):
            if isinstance(operand, PropertyRef):
                referenced.append(operand)
            if hasattr(operand, "variable") \
                    and operand.variable not in known_variables:
                add("QRY002",
                    f"WHERE references unbound variable "
                    f"{operand.variable!r}", symbol=operand.variable)

    if schema is None:
        return report

    vertex_labels = _known_vertex_labels(schema)
    edge_labels = _known_edge_labels(schema)
    for pattern in query.patterns:
        for node in pattern.nodes:
            if (node.label is not None and vertex_labels is not None
                    and node.label not in vertex_labels):
                add("QRY003",
                    f"node label {node.label!r} is unknown to the "
                    f"schema (known: {sorted(vertex_labels)})",
                    symbol=node.variable)
        for edge in pattern.edges:
            if (edge.label is not None and edge_labels is not None
                    and edge.label not in edge_labels):
                add("QRY004",
                    f"edge label {edge.label!r} is unknown to the "
                    f"schema (known: {sorted(edge_labels)})")

    labels_of = _variable_labels(query)

    def check_property_ref(ref: PropertyRef, where: str) -> None:
        label = labels_of.get(ref.variable)
        if label is None:
            return  # unlabeled variable: schema can't vouch either way
        rules = schema.vertex_rules.get(label)
        if not rules:
            return  # schema declares nothing about this label's props
        if _property_rule(schema, label, ref.key) is None:
            add("QRY005",
                f"{where} references property {ref.key!r}, unknown "
                f"for label {label!r} (known: "
                f"{sorted(rule.name for rule in rules)})",
                symbol=f"{ref.variable}.{ref.key}")

    for item in query.items:
        if item.key is not None:
            check_property_ref(PropertyRef(item.variable, item.key),
                               "RETURN")
    for ref in referenced:
        check_property_ref(ref, "WHERE")

    for condition in query.conditions:
        _check_predicate_types(schema, labels_of, condition, add)
    return report


def _check_predicate_types(schema: GraphSchema,
                           labels_of: dict[str, str],
                           condition: Comparison, add) -> None:
    """QRY006: property-vs-literal comparisons must agree on type."""
    pairs = [(condition.left, condition.right),
             (condition.right, condition.left)]
    for prop, other in pairs:
        if not isinstance(prop, PropertyRef) or not isinstance(
                other, Literal):
            continue
        label = labels_of.get(prop.variable)
        if label is None:
            continue
        rule = _property_rule(schema, label, prop.key)
        if rule is None:
            continue  # QRY005 already covers unknown properties
        literal_type = _literal_type(other.value)
        if literal_type is None:
            continue
        if literal_type is not rule.property_type:
            add("QRY006",
                f"predicate compares {prop.variable}.{prop.key} "
                f"(declared {rule.property_type.value}) against "
                f"{other.value!r} ({literal_type.value})",
                symbol=f"{prop.variable}.{prop.key}")
