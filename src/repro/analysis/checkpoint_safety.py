"""CKPT rules: checkpoint-safety of vertex values and aggregators.

:class:`repro.dist.checkpoint.JsonCheckpointStore` persists worker
state as JSON, so a vertex value (or aggregator identity) that JSON
cannot represent fails at the first checkpoint — and one that JSON
*changes* (tuples become lists, int dict keys become strings) makes
the recovered run differ from the fault-free run, silently breaking
the byte-identical replay guarantee. These rules catch both:

* **CKPT001** — a value that JSON cannot serialize at all (sets,
  bytes, complex, lambdas, arbitrary objects); verified from return
  statements and literal construction in the AST, and from live
  values at the API level.
* **CKPT002** — a return type annotation naming a non-JSON type.
* **CKPT003** — a value JSON round-trips into a *different* value
  (tuples, non-string dict keys): works on the in-memory store,
  breaks on the durable one — a warning.
"""

from __future__ import annotations

import ast
import json
from typing import Any

from repro.analysis.astutils import ProgramAst, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import finding, register_rule

#: bumped whenever rule behavior changes; keys the scan-result cache.
RULE_VERSION = "1"

register_rule(
    "CKPT001", "checkpoint-safety", Severity.ERROR,
    "vertex value / aggregator is not JSON-serializable; the durable "
    "checkpoint store cannot persist it")
register_rule(
    "CKPT002", "checkpoint-safety", Severity.ERROR,
    "return annotation names a non-JSON-serializable type")
register_rule(
    "CKPT003", "checkpoint-safety", Severity.WARNING,
    "value changes under a JSON round-trip (tuple -> list, int keys -> "
    "str); recovered runs differ from fault-free runs on the durable "
    "store")

#: constructors whose results JSON cannot represent.
_UNSERIALIZABLE_CALLS = frozenset({
    "set", "frozenset", "bytes", "bytearray", "complex", "object",
    "memoryview",
})

#: annotation heads JSON cannot represent.
_UNSERIALIZABLE_ANNOTATIONS = frozenset({
    "set", "frozenset", "bytes", "bytearray", "complex",
    "Set", "FrozenSet",
})


def _returned_exprs(program: ProgramAst) -> list[ast.expr]:
    return [node.value for node in ast.walk(program.func)
            if isinstance(node, ast.Return) and node.value is not None]


def _classify_expr(node: ast.expr) -> tuple[str, str] | None:
    """("CKPT001"|"CKPT003", description) for an obviously unsafe
    expression, else None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "CKPT001", "a set literal"
    if isinstance(node, ast.Lambda):
        return "CKPT001", "a lambda"
    if isinstance(node, ast.Constant) and isinstance(
            node.value, (bytes, complex)):
        return "CKPT001", f"a {type(node.value).__name__} literal"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in _UNSERIALIZABLE_CALLS:
            return "CKPT001", f"a {dotted}() value"
    if isinstance(node, ast.Tuple):
        return "CKPT003", "a tuple"
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if isinstance(key, ast.Constant) and not isinstance(
                    key.value, str):
                return "CKPT003", (
                    f"a dict with non-string key "
                    f"{key.value!r} (JSON keys are strings)")
    return None


def check_returns(program: ProgramAst) -> list[Finding]:
    """CKPT001/CKPT003 over every return statement's expression."""
    findings = []
    for node in _returned_exprs(program):
        classified = _classify_expr(node)
        if classified is None:
            continue
        rule_id, what = classified
        findings.append(finding(
            rule_id,
            f"vertex program {program.name!r} returns {what} as the "
            f"vertex value; checkpoints persist values as JSON",
            file=program.file, line=program.line(node),
            symbol=program.name))
    return findings


def check_annotations(program: ProgramAst) -> list[Finding]:
    """CKPT002/CKPT003 over the return type annotation."""
    findings = []
    annotation = program.func.returns
    if annotation is None:
        return findings
    text = ast.unparse(annotation)
    head = text.split("[")[0].strip()
    bare = head.rsplit(".", 1)[-1]
    if bare in _UNSERIALIZABLE_ANNOTATIONS:
        findings.append(finding(
            "CKPT002",
            f"vertex program {program.name!r} declares return type "
            f"{text!r}, which JSON cannot serialize",
            file=program.file, line=program.line(annotation),
            symbol=program.name))
    elif bare in ("tuple", "Tuple"):
        findings.append(finding(
            "CKPT003",
            f"vertex program {program.name!r} declares return type "
            f"{text!r}; JSON round-trips tuples into lists",
            file=program.file, line=program.line(annotation),
            symbol=program.name))
    return findings


def check_program(program: ProgramAst) -> list[Finding]:
    """All CKPT AST rules over one vertex program."""
    return check_returns(program) + check_annotations(program)


# -- API-level value probes (used by analyze_spec / strict mode) --------

def roundtrip_problem(value: Any) -> tuple[str, str] | None:
    """("CKPT001"|"CKPT003", reason) when ``value`` does not survive a
    JSON round-trip unchanged, else None."""
    try:
        encoded = json.dumps(value)
    except (TypeError, ValueError):
        return "CKPT001", (
            f"{type(value).__name__} value {value!r} is not "
            f"JSON-serializable")
    try:
        restored = json.loads(encoded)
    except ValueError:  # non-compliant floats with allow_nan quirks
        return "CKPT001", f"value {value!r} does not decode from JSON"
    if restored != value or type(restored) is not type(value) and not (
            isinstance(value, (int, float))
            and isinstance(restored, (int, float))):
        return "CKPT003", (
            f"value {value!r} JSON round-trips to {restored!r}")
    return None


def check_value(value: Any, *, what: str, file: str = "<spec>",
                line: int = 0, symbol: str | None = None) -> list[Finding]:
    """Probe one live value (initial value, aggregator identity)."""
    if value is None or callable(value):
        return []
    problem = roundtrip_problem(value)
    if problem is None:
        return []
    rule_id, reason = problem
    return [finding(rule_id, f"{what}: {reason}", file=file, line=line,
                    symbol=symbol)]
