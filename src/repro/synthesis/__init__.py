"""Calibrated synthetic substitutes for the study's private inputs:
the 89-respondent population, the 90-paper literature corpus, and the
mailing-list/issue review corpus."""

from repro.synthesis.corpus import build_review_corpus
from repro.synthesis.literature import (LiteratureCorpus,
                                        build_literature_corpus)
from repro.synthesis.population import build_population
