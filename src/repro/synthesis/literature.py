"""Synthetic literature-review corpus (Section 2.3).

The authors reviewed 90 papers from VLDB 2014, KDD 2015, ICML 2016,
OSDI 2016, SC 2016 and SOCC 2015, annotating each with the graph datasets
used, the computations studied, and the software used. The per-annotation
totals appear as the "A" columns of Tables 4, 9, 10a/10b, 12 and 13.

We rebuild the corpus as 90 :class:`PaperRecord` objects whose annotation
marginals match those columns exactly. The per-venue distribution is not
published; papers are spread evenly (15 per venue).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data import paper_tables as pt
from repro.data import taxonomy
from repro.synthesis import sampler

VENUES = (
    "VLDB 2014", "KDD 2015", "ICML 2016", "OSDI 2016", "SC 2016", "SOCC 2015",
)

DEFAULT_SEED = 90


@dataclass(frozen=True)
class PaperRecord:
    """One reviewed publication and its annotations (Appendix A/B schema)."""

    paper_id: int
    venue: str
    entities: frozenset[str]
    non_human_categories: frozenset[str]
    graph_computations: frozenset[str]
    ml_computations: frozenset[str]
    ml_problems: frozenset[str]
    query_software: frozenset[str]
    non_query_software: frozenset[str]


class LiteratureCorpus:
    """The 90-paper corpus with counting helpers."""

    def __init__(self, papers: list[PaperRecord]):
        self.papers = list(papers)

    def __len__(self) -> int:
        return len(self.papers)

    def __iter__(self):
        return iter(self.papers)

    def count(self, field: str, label: str) -> int:
        """Number of papers whose ``field`` annotation contains ``label``."""
        return sum(1 for p in self.papers if label in getattr(p, field))

    def counts(self, field: str, labels) -> dict[str, int]:
        return {label: self.count(field, label) for label in labels}

    def by_venue(self) -> dict[str, int]:
        histogram: dict[str, int] = {venue: 0 for venue in VENUES}
        for paper in self.papers:
            histogram[paper.venue] += 1
        return histogram


def _column(table, labels) -> dict[str, int]:
    return {label: int(table.rows[label]["A"]) for label in labels}


def build_literature_corpus(seed: int = DEFAULT_SEED) -> LiteratureCorpus:
    """Build the calibrated 90-paper corpus."""
    rng = random.Random(seed)
    n = pt.PAPER_FACTS["papers_reviewed"]
    ids = list(range(1, n + 1))

    entity_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_4, taxonomy.ENTITY_KINDS))
    nh_pool = sorted(entity_sets["Non-Human"])
    nh_sets = sampler.multiselect_exact(
        rng, nh_pool, _column(pt.TABLE_4, taxonomy.NON_HUMAN_CATEGORIES))
    computation_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_9, taxonomy.GRAPH_COMPUTATIONS))
    ml_computation_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_10A, taxonomy.ML_COMPUTATIONS))
    ml_problem_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_10B, taxonomy.ML_PROBLEMS))
    software_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_12, taxonomy.QUERY_SOFTWARE))
    non_query_sets = sampler.multiselect_exact(
        rng, ids, _column(pt.TABLE_13, taxonomy.NON_QUERY_SOFTWARE))

    def labels_of(assignment, paper_id) -> frozenset[str]:
        return frozenset(
            label for label, members in assignment.items()
            if paper_id in members)

    shuffled = list(ids)
    rng.shuffle(shuffled)
    venue_of = {
        paper_id: VENUES[index % len(VENUES)]
        for index, paper_id in enumerate(shuffled)
    }

    papers = [
        PaperRecord(
            paper_id=paper_id,
            venue=venue_of[paper_id],
            entities=labels_of(entity_sets, paper_id),
            non_human_categories=labels_of(nh_sets, paper_id),
            graph_computations=labels_of(computation_sets, paper_id),
            ml_computations=labels_of(ml_computation_sets, paper_id),
            ml_problems=labels_of(ml_problem_sets, paper_id),
            query_software=labels_of(software_sets, paper_id),
            non_query_software=labels_of(non_query_sets, paper_id),
        )
        for paper_id in ids
    ]
    return LiteratureCorpus(papers)
