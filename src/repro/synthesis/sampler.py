"""Exact-marginal assignment primitives.

The paper publishes per-question counts, usually split by researcher (R) /
practitioner (P). To synthesize a population whose tabulation reproduces
those counts *exactly*, we need three primitives:

* :func:`choose_exact` -- pick exactly ``k`` members of a pool.
* :func:`partition_exact` -- split a pool into labelled cells with exact
  sizes (single-choice questions; members left over are "did not answer").
* :func:`multiselect_exact` -- assign labels to pool members so each label
  is held by exactly its published count, optionally guaranteeing every
  member at least ``min_per_member`` labels (multi-choice questions where
  the paper states e.g. "each selected 2 or more types").

All primitives are deterministic given the :class:`random.Random` instance.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


class InfeasibleAssignment(ValueError):
    """The requested counts cannot be realized over the given pool."""


def choose_exact(rng: random.Random, pool: Sequence[T], k: int) -> set[T]:
    """Choose exactly ``k`` distinct members of ``pool``."""
    if k < 0 or k > len(pool):
        raise InfeasibleAssignment(
            f"cannot choose {k} from a pool of {len(pool)}")
    return set(rng.sample(list(pool), k))


def partition_exact(
    rng: random.Random,
    pool: Sequence[T],
    counts: Mapping[str, int],
) -> dict[str, set[T]]:
    """Partition a subset of ``pool`` into labelled cells of exact sizes.

    Members not assigned to any cell represent participants who skipped the
    question. Raises :class:`InfeasibleAssignment` if the counts sum to more
    than the pool size.
    """
    total = sum(counts.values())
    if any(v < 0 for v in counts.values()):
        raise InfeasibleAssignment("negative count")
    if total > len(pool):
        raise InfeasibleAssignment(
            f"counts sum to {total} but pool has {len(pool)} members")
    shuffled = list(pool)
    rng.shuffle(shuffled)
    result: dict[str, set[T]] = {}
    start = 0
    for label, k in counts.items():
        result[label] = set(shuffled[start:start + k])
        start += k
    return result


def multiselect_exact(
    rng: random.Random,
    pool: Sequence[T],
    counts: Mapping[str, int],
    min_per_member: int | Mapping[T, int] = 0,
    preassigned: Mapping[str, Iterable[T]] | None = None,
) -> dict[str, set[T]]:
    """Assign multi-choice labels with exact per-label counts.

    Each label ``c`` ends up selected by exactly ``counts[c]`` members.
    ``min_per_member`` sets a lower bound on the number of distinct labels
    each member receives; it may be a single integer or a per-member mapping
    (used when some members already hold labels from another question and
    only need topping up). ``preassigned`` seeds specific label->members
    choices that the assignment must include; their sizes count toward the
    per-label totals.

    Feasibility requires ``counts[c] <= len(pool)`` for all labels and
    ``sum(counts) >= sum(min deficits)``. The construction is greedy
    largest-remaining-first, which realizes any feasible instance of this
    bipartite degree-sequence problem.
    """
    members = list(pool)
    n = len(members)
    member_set = set(members)
    for label, k in counts.items():
        if k < 0:
            raise InfeasibleAssignment(f"negative count for {label!r}")
        if k > n:
            raise InfeasibleAssignment(
                f"count {k} for {label!r} exceeds pool size {n}")

    assigned: dict[str, set[T]] = {label: set() for label in counts}
    if preassigned:
        for label, chosen in preassigned.items():
            chosen = set(chosen)
            if label not in counts:
                raise InfeasibleAssignment(
                    f"preassigned label {label!r} not in counts")
            if not chosen <= member_set:
                raise InfeasibleAssignment(
                    f"preassigned members for {label!r} outside pool")
            if len(chosen) > counts[label]:
                raise InfeasibleAssignment(
                    f"preassigned {len(chosen)} members for {label!r} but "
                    f"count is {counts[label]}")
            assigned[label] = chosen

    if isinstance(min_per_member, int):
        needs = {m: min_per_member for m in members}
    else:
        needs = {m: int(min_per_member.get(m, 0)) for m in members}
    held = {m: 0 for m in members}
    for label, chosen in assigned.items():
        for m in chosen:
            held[m] += 1
    deficits = {m: max(0, needs[m] - held[m]) for m in members}

    remaining = {label: counts[label] - len(assigned[label])
                 for label in counts}
    remaining = {label: k for label, k in remaining.items() if k > 0}
    if sum(deficits.values()) > sum(remaining.values()):
        raise InfeasibleAssignment(
            f"per-member minimums need {sum(deficits.values())} more "
            f"selections but only {sum(remaining.values())} remain")

    # Phase 1: satisfy per-member minimums. Members with the largest deficit
    # go first; each takes its labels from the currently largest-remaining
    # labels, which keeps the residual instance feasible (Gale-Ryser style).
    needy = [m for m in members if deficits[m] > 0]
    rng.shuffle(needy)
    needy.sort(key=lambda m: -deficits[m])
    for member in needy:
        open_labels = [c for c in remaining if member not in assigned[c]]
        if len(open_labels) < deficits[member]:
            raise InfeasibleAssignment(
                "not enough distinct labels remain to satisfy the "
                "per-member minimum")
        open_labels.sort(key=lambda c: (-remaining[c], rng.random()))
        for label in open_labels[:deficits[member]]:
            assigned[label].add(member)
            remaining[label] -= 1
            if remaining[label] == 0:
                del remaining[label]

    # Phase 2: distribute the remaining selections uniformly among members
    # that do not already hold the label.
    for label in sorted(remaining, key=str):
        k = remaining[label]
        eligible = [m for m in members if m not in assigned[label]]
        if k > len(eligible):
            raise InfeasibleAssignment(
                f"label {label!r} needs {k} more members but only "
                f"{len(eligible)} lack it")
        for member in rng.sample(eligible, k):
            assigned[label].add(member)

    return {label: assigned[label] for label in counts}


def grouped_multiselect_exact(
    rng: random.Random,
    groups: Mapping[str, Sequence[T]],
    grouped_counts: Mapping[str, Mapping[str, int]],
    min_per_member: int = 0,
) -> dict[str, set[T]]:
    """Run :func:`multiselect_exact` per group and merge the results.

    ``grouped_counts`` maps label -> {group -> count}. This realizes the
    paper's R/P-split marginals: each label's researcher count and
    practitioner count are both exact.
    """
    merged: dict[str, set[T]] = {label: set() for label in grouped_counts}
    for group_name, members in groups.items():
        counts = {label: per_group.get(group_name, 0)
                  for label, per_group in grouped_counts.items()}
        for label, chosen in multiselect_exact(
                rng, members, counts, min_per_member=min_per_member).items():
            merged[label] |= chosen
    return merged


def grouped_partition_exact(
    rng: random.Random,
    groups: Mapping[str, Sequence[T]],
    grouped_counts: Mapping[str, Mapping[str, int]],
) -> dict[str, set[T]]:
    """Run :func:`partition_exact` per group and merge the results."""
    merged: dict[str, set[T]] = {label: set() for label in grouped_counts}
    for group_name, members in groups.items():
        counts = {label: per_group.get(group_name, 0)
                  for label, per_group in grouped_counts.items()}
        for label, chosen in partition_exact(rng, members, counts).items():
            merged[label] |= chosen
    return merged


def counts_from_table_rows(
    rows: Mapping[str, Mapping[str, int | None]],
    labels: Iterable[str] | None = None,
) -> dict[str, dict[str, int]]:
    """Extract ``label -> {"R": r, "P": p}`` from a table's rows."""
    wanted = set(labels) if labels is not None else None
    out: dict[str, dict[str, int]] = {}
    for label, cells in rows.items():
        if wanted is not None and label not in wanted:
            continue
        out[label] = {
            "R": int(cells.get("R") or 0),
            "P": int(cells.get("P") or 0),
        }
    return out
