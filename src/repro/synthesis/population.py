"""Calibrated synthetic survey population.

The original 89 survey responses are private; this module builds a synthetic
population whose tabulation reproduces the paper's published marginals
*exactly* (Tables 2-17) along with every cross-question correlation the
paper states in its running text:

* Section 2.2: 36 researchers / 53 practitioners; role counts.
* Table 6: the 20 participants with >1B-edge graphs come from organizations
  of sizes 4 x (1-10), 4 x (10-100), 7 x (100-1000), 4 x (>10000); the
  published row sums to 19, so one big-graph participant skipped the
  organization-size question.
* Section 5.1: 16 of the RDBMS users also use graph database systems; the
  Table 12 question was answered by 84 participants, each choosing >= 2.
* Section 5.2: 29 of the 45 participants using distributed software have
  graphs of over 100M edges.
* Section 4.2: 61 participants use ML (at least one computation or problem).
* Section 4.3: 32 participants (16 R / 16 P) run streaming or incremental
  computations; everyone whose graphs are *streaming* (Table 8) is among
  them.
* Section 5.2 / Appendix C: 33 participants store a graph in multiple
  formats, 25 of whom described the formats; the most popular combination
  is a relational + graph database format.

One published inconsistency is handled explicitly: the Table 15 marginals
sum to 272 selections (> 3 x 89), so the "top 3 challenges" cap cannot hold
for every participant; challenges are modelled as plain multi-select.
"""

from __future__ import annotations

import random

from repro.data import paper_tables as pt
from repro.data import taxonomy
from repro.survey.respondent import Population, Respondent
from repro.synthesis import sampler

#: Default seed; any seed yields the same marginals, only membership varies.
DEFAULT_SEED = 2017

# Calibration constants not uniquely determined by the paper (documented
# choices; each satisfies every published constraint).
_ACADEMIA_LAB_OVERLAP = 6        # 31 + 11 - 36
_NO_STORE_R, _NO_STORE_P = 1, 2  # the 3 participants storing no data
_ML_USERS_R, _ML_USERS_P = 26, 35            # union is 61 (Section 4.2)
_SOFTWARE_ANSWERED_R, _SOFTWARE_ANSWERED_P = 34, 50   # 84 answered Table 12
_RDBMS_GRAPHDB_OVERLAP_R, _RDBMS_GRAPHDB_OVERLAP_P = 5, 11   # 16 total
_MULTI_FORMAT_R, _MULTI_FORMAT_P = 14, 19    # 33 total said yes
_FORMATS_DESCRIBED = 25
_REL_GRAPH_FORMAT_OVERLAP = 6    # most popular combination (Appendix C)
#: Org-size composition of the 20 big-graph participants (Table 6), split
#: R/P so that it fits inside the Table 3 per-group marginals. ``None`` is
#: the one participant who skipped the organization-size question.
_BIG_GRAPH_ORG_R = {"1 - 10": 2, "10 - 100": 1, "100 - 1000": 3,
                    ">10000": 1, None: 1}
_BIG_GRAPH_ORG_P = {"1 - 10": 2, "10 - 100": 3, "100 - 1000": 4,
                    ">10000": 3}
#: Of the 45 distributed-software users, 29 have >100M-edge graphs (§5.2).
_DISTRIBUTED_BIG_R, _DISTRIBUTED_BIG_P = 12, 17


class _Draft:
    """Mutable per-respondent answer sheet used during construction."""

    def __init__(self, respondent_id: int):
        self.respondent_id = respondent_id
        self.answers: dict[str, object] = {}
        self.sets: dict[str, set[str]] = {}
        self.hours: dict[str, str] = {}

    def add(self, field: str, label: str) -> None:
        self.sets.setdefault(field, set()).add(label)

    def build(self) -> Respondent:
        frozen = {name: frozenset(values)
                  for name, values in self.sets.items()}
        return Respondent(respondent_id=self.respondent_id,
                          hours=dict(self.hours), **self.answers, **frozen)


def _apply_sets(drafts, field, assignment):
    """Record a label->members assignment into the drafts."""
    for label, members in assignment.items():
        for member in members:
            drafts[member].add(field, label)


def _apply_partition(drafts, field, assignment):
    for label, members in assignment.items():
        for member in members:
            drafts[member].answers[field] = label


def build_population(seed: int = DEFAULT_SEED) -> Population:
    """Build the calibrated 89-respondent population."""
    rng = random.Random(seed)
    ids = list(range(1, pt.PAPER_FACTS["participants"] + 1))
    drafts = {i: _Draft(i) for i in ids}

    r_ids = sorted(sampler.choose_exact(
        rng, ids, pt.PAPER_FACTS["researchers"]))
    p_ids = [i for i in ids if i not in set(r_ids)]
    groups = {"R": r_ids, "P": p_ids}

    _assign_fields(rng, drafts, groups)
    _assign_roles(rng, drafts, ids)
    org_by_member = _assign_org_sizes(rng, drafts, groups)
    _assign_entities(rng, drafts, groups)
    big_graph, over_100m = _assign_graph_sizes(
        rng, drafts, groups, org_by_member)
    _assign_topology(rng, drafts, groups)
    storers = _assign_stored_data(rng, drafts, groups)
    _assign_property_types(rng, drafts, groups, storers)
    streaming_graph = _assign_dynamism(rng, drafts, groups)
    _assign_graph_computations(rng, drafts, groups)
    _assign_ml(rng, drafts, groups)
    _assign_traversals(rng, drafts, groups)
    _assign_streaming_incremental(rng, drafts, groups, streaming_graph)
    _assign_query_software(rng, drafts, groups)
    _assign_non_query_software(rng, drafts, groups)
    _assign_architectures(rng, drafts, groups, over_100m)
    _assign_storage_formats(rng, drafts, groups)
    _assign_challenges(rng, drafts, groups)
    _assign_hours(rng, drafts, ids)

    del big_graph  # membership is fully encoded in the edge buckets
    return Population(drafts[i].build() for i in ids)


# ---------------------------------------------------------------------------
# Question-by-question assignment (one function per paper table)
# ---------------------------------------------------------------------------

def _assign_fields(rng, drafts, groups):
    """Table 2 plus the Section 2.2 researcher-definition rule."""
    r_ids, p_ids = groups["R"], groups["P"]
    # Researchers: exactly 31 academia, 11 industry lab, union = all 36.
    both = sampler.choose_exact(rng, r_ids, _ACADEMIA_LAB_OVERLAP)
    rest = [i for i in r_ids if i not in both]
    academia_only = sampler.choose_exact(rng, rest, 31 - _ACADEMIA_LAB_OVERLAP)
    lab_only = set(rest) - academia_only
    for member in both | academia_only:
        drafts[member].add("fields_of_work", "Research in Academia")
    for member in both | lab_only:
        drafts[member].add("fields_of_work", "Research in Industry Lab")

    other_fields = [f for f in taxonomy.FIELDS_OF_WORK
                    if f not in taxonomy.RESEARCHER_FIELDS]
    counts = sampler.counts_from_table_rows(pt.TABLE_2.rows, other_fields)
    # Researchers already have >= 1 field; practitioners need >= 1.
    r_counts = {label: g["R"] for label, g in counts.items()}
    p_counts = {label: g["P"] for label, g in counts.items()}
    _apply_sets(drafts, "fields_of_work",
                sampler.multiselect_exact(rng, r_ids, r_counts))
    _apply_sets(drafts, "fields_of_work",
                sampler.multiselect_exact(rng, p_ids, p_counts,
                                          min_per_member=1))


def _assign_roles(rng, drafts, ids):
    """Section 2.2 role counts (no published R/P split)."""
    counts = {
        "Engineer": pt.PAPER_FACTS["role_engineer"],
        "Researcher": pt.PAPER_FACTS["role_researcher"],
        "Data Analyst": pt.PAPER_FACTS["role_data_analyst"],
        "Manager": pt.PAPER_FACTS["role_manager"],
    }
    _apply_sets(drafts, "roles",
                sampler.multiselect_exact(rng, ids, counts, min_per_member=1))


def _assign_org_sizes(rng, drafts, groups):
    """Table 3; returns member -> org size (or None) for Table 6 use."""
    counts = sampler.counts_from_table_rows(pt.TABLE_3.rows)
    assignment = sampler.grouped_partition_exact(rng, groups, counts)
    _apply_partition(drafts, "org_size", assignment)
    org_by_member: dict[int, str | None] = {
        i: None for members in groups.values() for i in members}
    for label, members in assignment.items():
        for member in members:
            org_by_member[member] = label
    return org_by_member


def _assign_entities(rng, drafts, groups):
    """Table 4 (survey columns)."""
    entity_counts = sampler.counts_from_table_rows(
        pt.TABLE_4.rows, taxonomy.ENTITY_KINDS)
    assignment = sampler.grouped_multiselect_exact(rng, groups, entity_counts)
    _apply_sets(drafts, "entities", assignment)

    nh_groups = {
        "R": sorted(assignment["Non-Human"] & set(groups["R"])),
        "P": sorted(assignment["Non-Human"] & set(groups["P"])),
    }
    nh_counts = sampler.counts_from_table_rows(
        pt.TABLE_4.rows, taxonomy.NON_HUMAN_CATEGORIES)
    _apply_sets(drafts, "non_human_categories",
                sampler.grouped_multiselect_exact(rng, nh_groups, nh_counts))


def _assign_graph_sizes(rng, drafts, groups, org_by_member):
    """Tables 5a/5b/5c with the Table 6 cross-constraint.

    Returns ``(big_graph_members, over_100m_members)`` where the latter is
    everyone selecting an edge bucket of 100M-1B or >1B (used for the §5.2
    distributed-architecture correlation).
    """
    _apply_sets(drafts, "vertex_buckets", sampler.grouped_multiselect_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_5A.rows)))
    _apply_sets(drafts, "byte_buckets", sampler.grouped_multiselect_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_5C.rows)))

    # Pick the >1B-edge members so their org sizes realize Table 6 exactly.
    big_graph: set[int] = set()
    for group_name, composition in (("R", _BIG_GRAPH_ORG_R),
                                    ("P", _BIG_GRAPH_ORG_P)):
        for org_size, k in composition.items():
            pool = [i for i in groups[group_name]
                    if org_by_member[i] == org_size and i not in big_graph]
            big_graph |= sampler.choose_exact(rng, pool, k)

    edge_counts = sampler.counts_from_table_rows(pt.TABLE_5B.rows)
    # Keep the 100M-1B selectors disjoint from the >1B selectors so that
    # exactly 41 participants have >100M-edge graphs (29 of whom will use
    # distributed software, matching §5.2's "29 of the 45").
    preassigned = {">1B": big_graph}
    assignment: dict[str, set[int]] = {label: set() for label in edge_counts}
    for group_name, members in groups.items():
        member_set = set(members)
        counts = {label: g[group_name] for label, g in edge_counts.items()}
        big_here = big_graph & member_set
        non_big = [i for i in members if i not in big_here]
        mid = sampler.choose_exact(rng, non_big, counts["100M - 1B"])
        part = sampler.multiselect_exact(
            rng, members, counts,
            preassigned={">1B": big_here, "100M - 1B": mid})
        for label, chosen in part.items():
            assignment[label] |= chosen
    _apply_sets(drafts, "edge_buckets", assignment)
    del preassigned
    over_100m = assignment["100M - 1B"] | assignment[">1B"]
    return big_graph, over_100m


def _assign_topology(rng, drafts, groups):
    """Tables 7a and 7b (single choice, everyone answered)."""
    _apply_partition(drafts, "directedness", sampler.grouped_partition_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_7A.rows)))
    _apply_partition(drafts, "simplicity", sampler.grouped_partition_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_7B.rows)))


def _assign_stored_data(rng, drafts, groups):
    """Section 3.3: all but 3 participants store data on vertices/edges."""
    no_store = (sampler.choose_exact(rng, groups["R"], _NO_STORE_R)
                | sampler.choose_exact(rng, groups["P"], _NO_STORE_P))
    storers = {"R": [], "P": []}
    for group_name, members in groups.items():
        for member in members:
            stores = member not in no_store
            drafts[member].answers["stores_data"] = stores
            if stores:
                storers[group_name].append(member)
    return storers


def _assign_property_types(rng, drafts, groups, storers):
    """Table 7c, assigned among the participants who store data."""
    vertex_counts = {
        label: {"R": cells["V-R"], "P": cells["V-P"]}
        for label, cells in pt.TABLE_7C.rows.items()}
    edge_counts = {
        label: {"R": cells["E-R"], "P": cells["E-P"]}
        for label, cells in pt.TABLE_7C.rows.items()}
    _apply_sets(drafts, "vertex_property_types",
                sampler.grouped_multiselect_exact(rng, storers, vertex_counts))
    _apply_sets(drafts, "edge_property_types",
                sampler.grouped_multiselect_exact(rng, storers, edge_counts))


def _assign_dynamism(rng, drafts, groups):
    """Table 8; returns the streaming-graph members for §4.3 linkage."""
    assignment = sampler.grouped_multiselect_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_8.rows),
        min_per_member=1)
    _apply_sets(drafts, "dynamism", assignment)
    return assignment["Streaming"]


def _assign_graph_computations(rng, drafts, groups):
    """Table 9 (survey columns)."""
    _apply_sets(drafts, "graph_computations",
                sampler.grouped_multiselect_exact(
                    rng, groups,
                    sampler.counts_from_table_rows(pt.TABLE_9.rows)))


def _assign_ml(rng, drafts, groups):
    """Tables 10a/10b with the Section 4.2 union-of-61 constraint."""
    ml_users = {
        "R": sorted(sampler.choose_exact(rng, groups["R"], _ML_USERS_R)),
        "P": sorted(sampler.choose_exact(rng, groups["P"], _ML_USERS_P)),
    }
    computation_counts = sampler.counts_from_table_rows(pt.TABLE_10A.rows)
    problem_counts = sampler.counts_from_table_rows(pt.TABLE_10B.rows)
    joint = {**computation_counts, **problem_counts}
    assignment = sampler.grouped_multiselect_exact(
        rng, ml_users, joint, min_per_member=1)
    for label in computation_counts:
        _apply_sets(drafts, "ml_computations", {label: assignment[label]})
    for label in problem_counts:
        _apply_sets(drafts, "ml_problems", {label: assignment[label]})


def _assign_traversals(rng, drafts, groups):
    """Table 11 (single choice; 73 of 89 answered)."""
    _apply_partition(drafts, "traversal", sampler.grouped_partition_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_11.rows)))


def _assign_streaming_incremental(rng, drafts, groups, streaming_graph):
    """Section 4.3: 32 participants (16 R / 16 P), covering everyone whose
    graphs are streaming (Table 8)."""
    yes: set[int] = set()
    for group_name, members in groups.items():
        member_set = set(members)
        seed_members = streaming_graph & member_set
        extra_pool = [i for i in members if i not in seed_members]
        extra = sampler.choose_exact(rng, extra_pool, 16 - len(seed_members))
        yes |= seed_members | extra
    for members in groups.values():
        for member in members:
            drafts[member].answers["streaming_incremental"] = member in yes


def _assign_query_software(rng, drafts, groups):
    """Table 12 with §5.1 constraints: 84 answered, each choosing >= 2
    types, and 16 RDBMS users also use graph database systems."""
    counts = sampler.counts_from_table_rows(pt.TABLE_12.rows)
    answered = {
        "R": sorted(sampler.choose_exact(
            rng, groups["R"], _SOFTWARE_ANSWERED_R)),
        "P": sorted(sampler.choose_exact(
            rng, groups["P"], _SOFTWARE_ANSWERED_P)),
    }
    overlap_target = {"R": _RDBMS_GRAPHDB_OVERLAP_R,
                      "P": _RDBMS_GRAPHDB_OVERLAP_P}
    graphdb = "Graph Database System"
    rdbms = "Relational Database Management System"
    for group_name, pool in answered.items():
        group_counts = {label: g[group_name] for label, g in counts.items()}
        graphdb_members = sampler.choose_exact(
            rng, pool, group_counts[graphdb])
        inside = sampler.choose_exact(
            rng, sorted(graphdb_members), overlap_target[group_name])
        outside_pool = [i for i in pool if i not in graphdb_members]
        outside = sampler.choose_exact(
            rng, outside_pool,
            group_counts[rdbms] - overlap_target[group_name])
        assignment = sampler.multiselect_exact(
            rng, pool, group_counts, min_per_member=2,
            preassigned={graphdb: graphdb_members, rdbms: inside | outside})
        _apply_sets(drafts, "query_software", assignment)


def _assign_non_query_software(rng, drafts, groups):
    """Table 13 (survey columns)."""
    _apply_sets(drafts, "non_query_software",
                sampler.grouped_multiselect_exact(
                    rng, groups,
                    sampler.counts_from_table_rows(pt.TABLE_13.rows)))


def _assign_architectures(rng, drafts, groups, over_100m):
    """Table 14 with §5.2: 29 of the 45 distributed users have >100M-edge
    graphs."""
    counts = sampler.counts_from_table_rows(pt.TABLE_14.rows)
    big_quota = {"R": _DISTRIBUTED_BIG_R, "P": _DISTRIBUTED_BIG_P}
    for group_name, members in groups.items():
        member_set = set(members)
        group_counts = {label: g[group_name] for label, g in counts.items()}
        big_pool = sorted(over_100m & member_set)
        small_pool = [i for i in members if i not in over_100m]
        distributed = (
            sampler.choose_exact(rng, big_pool, big_quota[group_name])
            | sampler.choose_exact(
                rng, small_pool,
                group_counts["Distributed"] - big_quota[group_name]))
        assignment = sampler.multiselect_exact(
            rng, members, group_counts,
            preassigned={"Distributed": distributed})
        _apply_sets(drafts, "architectures", assignment)


def _assign_storage_formats(rng, drafts, groups):
    """Section 5.2 / Appendix C (Table 17): 33 store multiple formats, 25
    described them; relational + graph DB is the most popular combination."""
    yes = (sampler.choose_exact(rng, groups["R"], _MULTI_FORMAT_R)
           | sampler.choose_exact(rng, groups["P"], _MULTI_FORMAT_P))
    for members in groups.values():
        for member in members:
            drafts[member].answers["multiple_formats"] = member in yes
    described = sorted(sampler.choose_exact(
        rng, sorted(yes), _FORMATS_DESCRIBED))
    counts = {label: cells["#"] for label, cells in pt.TABLE_17.rows.items()}
    graph_members = sampler.choose_exact(
        rng, described, counts["Graph Databases"])
    rel_inside = sampler.choose_exact(
        rng, sorted(graph_members), _REL_GRAPH_FORMAT_OVERLAP)
    rel_outside = sampler.choose_exact(
        rng, [i for i in described if i not in graph_members],
        counts["Relational Databases"] - _REL_GRAPH_FORMAT_OVERLAP)
    assignment = sampler.multiselect_exact(
        rng, described, counts, min_per_member=1,
        preassigned={"Graph Databases": graph_members,
                     "Relational Databases": rel_inside | rel_outside})
    _apply_sets(drafts, "storage_formats", assignment)


def _assign_challenges(rng, drafts, groups):
    """Table 15. The published marginals sum to 272 > 3 x 89 selections, so
    the nominal top-3 cap cannot be honored; plain multi-select instead."""
    _apply_sets(drafts, "challenges", sampler.grouped_multiselect_exact(
        rng, groups, sampler.counts_from_table_rows(pt.TABLE_15.rows)))


def _assign_hours(rng, drafts, ids):
    """Table 16 (one single-choice question per task; no R/P split)."""
    for task in taxonomy.WORKLOAD_TASKS:
        cells = pt.TABLE_16.rows[task]
        counts = {bucket: int(cells[bucket])
                  for bucket in taxonomy.HOUR_BUCKETS}
        for bucket, members in sampler.partition_exact(
                rng, ids, counts).items():
            for member in members:
                drafts[member].hours[task] = bucket
