"""Synthetic mailing-list / issue corpus (substitute for Section 2.4 data).

The authors' corpus -- roughly 6000 emails and issues across 22 products --
is private. This generator rebuilds a corpus with the same published
structure:

* per-product email / issue / commit volumes of Table 20 (``NA`` cells
  become zero messages or an absent repository);
* per-product *active mailing-list users* in Feb-Apr 2017 equal to Table 1;
* challenge discussions planted at the Table 19 rates, only in products of
  the technology classes the paper attributes them to;
* graph-size mentions planted at the Table 18 rates;
* everything else is routine traffic (how-tos, bug reports, release
  announcements), mirroring the paper's observation that the overwhelming
  majority of messages were routine.

The mining pipeline (:mod:`repro.mining.pipeline`) then *re-discovers*
Tables 1 and 18-20 from the corpus text alone.
"""

from __future__ import annotations

import datetime as dt
import math
import random

from repro.data import paper_tables as pt
from repro.data import taxonomy
from repro.mining.records import (
    ACTIVE_WINDOW_END,
    ACTIVE_WINDOW_START,
    EmailMessage,
    Issue,
    RepoActivity,
    ReviewCorpus,
)
from repro.synthesis import texts

DEFAULT_SEED = 622


def _slug(product: str) -> str:
    return "".join(ch for ch in product.lower() if ch.isalnum())


def _random_date(rng: random.Random, start: dt.date, end: dt.date) -> dt.date:
    span = (end - start).days
    return start + dt.timedelta(days=rng.randrange(span + 1))


def _random_outside_window(rng: random.Random) -> dt.date:
    """A Jan-Sep 2017 date outside the Feb-Apr active window."""
    january = (dt.date(2017, 1, 1), dt.date(2017, 1, 31))
    late = (dt.date(2017, 5, 1), dt.date(2017, 9, 30))
    # Weight by the number of days in each segment.
    if rng.random() < 31 / (31 + 153):
        return _random_date(rng, *january)
    return _random_date(rng, *late)


class _Slot:
    """A message placeholder awaiting its content."""

    __slots__ = ("product", "is_email", "sender", "date",
                 "subject", "body", "planted")

    def __init__(self, product: str, is_email: bool, sender: str,
                 date: dt.date):
        self.product = product
        self.is_email = is_email
        self.sender = sender
        self.date = date
        self.subject = ""
        self.body = ""
        self.planted = False


def _format_amount(rng: random.Random, value: float) -> str:
    """Format a count the way users write them in emails."""
    style = rng.choice(("word", "suffix", "comma"))
    if style == "comma":
        return f"{int(value):,}"
    for scale, word, suffix in ((1e12, "trillion", "T"),
                                (1e9, "billion", "B"),
                                (1e6, "million", "M")):
        if value >= scale:
            quantity = value / scale
            text = (f"{quantity:.1f}".rstrip("0").rstrip(".")
                    if quantity < 10 else f"{quantity:.0f}")
            return f"{text} {word}" if style == "word" else f"{text}{suffix}"
    return f"{int(value):,}"


def _sample_in_bucket(
    rng: random.Random, low: float, high: float,
) -> float:
    """Log-uniform value inside [low, high), rounded to 2 significant
    digits and clamped back into the bucket."""
    if math.isinf(high):
        high = low * 5
    value = 10 ** rng.uniform(math.log10(low), math.log10(high))
    magnitude = 10 ** (math.floor(math.log10(value)) - 1)
    value = round(value / magnitude) * magnitude
    return min(max(value, low), math.nextafter(high, low))


def build_review_corpus(seed: int = DEFAULT_SEED) -> ReviewCorpus:
    """Build the calibrated review corpus."""
    rng = random.Random(seed)
    slots: list[_Slot] = []
    repos: dict[str, RepoActivity] = {}

    for product in taxonomy.PRODUCTS:
        cells = pt.TABLE_20.rows[product]
        email_count = cells["Emails"] or 0
        issue_count = cells["Issues"] or 0
        commit_count = cells["Commits"]
        repos[product] = RepoActivity(product=product,
                                      commit_count=commit_count)

        active_users = 0
        if product in pt.TABLE_1.rows:
            active_users = int(pt.TABLE_1.rows[product]["Users"])
        slots.extend(
            _email_slots(rng, product, email_count, active_users))
        pool = [f"{_slug(product)}-dev{i}" for i in range(1, 9)]
        for _ in range(issue_count):
            slots.append(_Slot(
                product, is_email=False, sender=rng.choice(pool),
                date=_random_date(rng, dt.date(2017, 1, 1),
                                  dt.date(2017, 9, 30))))

    _plant_challenges(rng, slots)
    _plant_sizes(rng, slots)
    _fill_noise(rng, slots)
    return _materialize(slots, repos)


def _email_slots(
    rng: random.Random, product: str, email_count: int, active_users: int,
) -> list[_Slot]:
    """Email slots whose Feb-Apr distinct-sender count equals Table 1."""
    if email_count == 0:
        return []
    if active_users > email_count:
        raise ValueError(
            f"{product}: cannot realize {active_users} active users with "
            f"only {email_count} emails")
    window_count = min(
        email_count, max(active_users, math.ceil(email_count / 3)))
    window_senders = [f"{_slug(product)}-user{i}"
                      for i in range(1, active_users + 1)]
    extra_senders = [f"{_slug(product)}-lurker{i}"
                     for i in range(1, max(2, active_users // 3) + 1)]
    slots = []
    for index in range(email_count):
        if index < window_count:
            date = _random_date(rng, ACTIVE_WINDOW_START, ACTIVE_WINDOW_END)
            if index < active_users:
                sender = window_senders[index]
            else:
                sender = rng.choice(window_senders)
        else:
            date = _random_outside_window(rng)
            sender = rng.choice(window_senders + extra_senders)
        slots.append(_Slot(product, is_email=True, sender=sender, date=date))
    return slots


def _eligible_products(group: str) -> set[str]:
    from repro.mining.classifier import GROUP_CLASSES

    classes = GROUP_CLASSES[group]
    return {product for product, cls in taxonomy.PRODUCTS.items()
            if cls in classes}


def _plant_challenges(rng: random.Random, slots: list[_Slot]) -> None:
    """Distribute Table 19 challenge discussions over eligible slots."""
    for group, challenges in taxonomy.REVIEW_CHALLENGE_GROUPS.items():
        products = _eligible_products(group)
        pool = [s for s in slots if s.product in products and not s.planted]
        rng.shuffle(pool)
        cursor = 0
        for challenge in challenges:
            count = int(pt.TABLE_19.rows[challenge]["#"])
            templates = texts.CHALLENGE_TEMPLATES[challenge]
            if cursor + count > len(pool):
                raise ValueError(
                    f"not enough messages in {group} products to plant "
                    f"{count} x {challenge}")
            for i in range(count):
                slot = pool[cursor + i]
                subject, body = templates[i % len(templates)]
                slot.subject = subject.format(product=slot.product)
                slot.body = body.format(product=slot.product)
                slot.planted = True
            cursor += count


def _plant_sizes(rng: random.Random, slots: list[_Slot]) -> None:
    """Distribute Table 18 graph-size mentions over remaining slots."""
    from repro.mining.sizes import EDGE_BUCKET_BOUNDS, VERTEX_BUCKET_BOUNDS

    pool = [s for s in slots if not s.planted]
    rng.shuffle(pool)
    cursor = 0
    plans: list[tuple[str, float, float]] = []
    for name, low, high in VERTEX_BUCKET_BOUNDS:
        plans.extend(
            [("vertices", low, high)] * int(pt.TABLE_18A.rows[name]["#"]))
    for name, low, high in EDGE_BUCKET_BOUNDS:
        plans.extend(
            [("edges", low, high)] * int(pt.TABLE_18B.rows[name]["#"]))
    if len(plans) > len(pool):
        raise ValueError("not enough messages to plant size mentions")
    for kind, low, high in plans:
        slot = pool[cursor]
        cursor += 1
        value = _sample_in_bucket(rng, low, high)
        unit = ("edges" if kind != "vertices"
                else rng.choice(("vertices", "nodes")))
        subject, body = rng.choice(texts.SIZE_TEMPLATES)
        amount = _format_amount(rng, value)
        slot.subject = subject.format(
            product=slot.product, amount=amount, unit=unit)
        slot.body = body.format(
            product=slot.product, amount=amount, unit=unit)
        slot.planted = True


def _fill_noise(rng: random.Random, slots: list[_Slot]) -> None:
    for slot in slots:
        if slot.planted:
            continue
        subject, body = rng.choice(texts.NOISE_TEMPLATES)
        slot.subject = subject.format(product=slot.product)
        slot.body = body.format(product=slot.product)


def _materialize(
    slots: list[_Slot], repos: dict[str, RepoActivity],
) -> ReviewCorpus:
    corpus = ReviewCorpus(repos=repos)
    email_id = issue_id = 0
    for slot in slots:
        if slot.is_email:
            email_id += 1
            corpus.emails.append(EmailMessage(
                message_id=email_id, product=slot.product,
                sender=slot.sender, date=slot.date,
                subject=slot.subject, body=slot.body))
        else:
            issue_id += 1
            corpus.issues.append(Issue(
                issue_id=issue_id, product=slot.product,
                author=slot.sender, date=slot.date,
                title=slot.subject, body=slot.body))
    return corpus
