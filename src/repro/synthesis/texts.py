"""Text templates for the synthetic mailing-list / issue corpus.

The real corpus is private, so we synthesize messages whose *signal* -- the
challenge topics of Table 19 and the graph-size mentions of Table 18 -- is
planted at the published rates. Templates are deliberately varied in
phrasing so the classifier in :mod:`repro.mining.classifier` has to match
topics, not byte-identical strings.

Template placeholders: ``{product}`` and, for size sentences, ``{amount}``
(already formatted, e.g. ``"1.5 billion"``) and ``{unit}``.
"""

from __future__ import annotations

#: Challenge name -> list of (subject, body) templates.
CHALLENGE_TEMPLATES: dict[str, list[tuple[str, str]]] = {
    "High-degree Vertices": [
        ("Skipping supernodes during traversal",
         "Some of our vertices have millions of neighbors. Is there a way to"
         " make {product} skip paths that go through these high-degree"
         " vertices? Results through them are not interesting to us."),
        ("Query performance on high degree vertices",
         "Traversals in {product} crawl once they hit a high-degree vertex."
         " Can we treat such supernodes specially, or exclude them from path"
         " expansion entirely?"),
        ("Special handling for celebrity nodes",
         "We model followers, and a few celebrity accounts are high-degree"
         " vertices with huge fan-in. We would like an option to skip paths"
         " over these vertices when matching."),
        ("Exclude hub vertices from shortest path search",
         "Is it possible to tell the shortest-path procedure in {product} to"
         " avoid expanding very high-degree vertices? Going through the hubs"
         " produces paths our analysts do not find interesting."),
    ],
    "Hyperedges": [
        ("Representing hyperedges",
         "We need an edge that connects three or more entities at once, for"
         " example a family relationship among three people. {product} has no"
         " native hyperedge support -- what is the recommended workaround?"),
        ("Modeling n-ary relationships",
         "How do people model a hyperedge in {product}? We currently create a"
         " mock hyperedge vertex and link every participant to it, but native"
         " support would be much cleaner."),
        ("Feature request: hyperedge support",
         "Please consider supporting hyperedges, i.e. edges between more than"
         " two vertices. Our contracts connect a buyer, a seller, and a"
         " broker, and the hyperedge vertex simulation is awkward."),
    ],
    "Triggers": [
        ("Trigger-like functionality on insert",
         "Is there something like a database trigger in {product}? We want to"
         " automatically add a created-at property to every vertex during"
         " insertion."),
        ("Running a hook on update",
         "We need a trigger that copies a vertex to a backup file whenever it"
         " is updated. Do {product} hooks or an event handler API support"
         " this?"),
        ("Feature request: triggers on edge creation",
         "A trigger mechanism firing on edge creation would let us maintain"
         " derived counters without polling. Is anything like the"
         " TransactionEventHandler planned?"),
    ],
    "Versioning and Historical Analysis": [
        ("Querying previous versions of the graph",
         "We must keep the history of every change to vertices and edges and"
         " run queries over past versions of the graph. Does {product}"
         " support versioning, or must we build it at the application layer?"),
        ("Historical analysis of changes",
         "Our auditors ask for historical analysis: what did this subgraph"
         " look like last March? Is there a recommended versioning pattern"
         " for {product}?"),
        ("Time travel queries",
         "Any plans for time-travel queries, i.e. reading the graph as of an"
         " earlier timestamp? We currently store a version number on every"
         " edge and filter manually."),
    ],
    "Schema & Constraints": [
        ("Defining a schema over the graph",
         "Is there a way to define a schema for {product} graphs, similar to"
         " what DTD or XSD provide for XML? We want to reject vertices that"
         " lack a mandatory property."),
        ("Enforcing an acyclicity constraint",
         "We need to enforce the constraint that our dependency graph stays"
         " acyclic. Can {product} check constraints like this on write?"),
        ("Schema validation for edge properties",
         "Feature request: a schema language so that every edge of a given"
         " label must carry a numeric weight property. Constraint checking at"
         " load time would catch most of our data bugs."),
    ],
    "Layout": [
        ("Hierarchical layout support",
         "How can I draw my graph so that managers appear above their"
         " reports? I am looking for a hierarchical layout in {product} where"
         " some vertices are drawn on top of others."),
        ("Drawing a phylogenetic tree layout",
         "I need a specialized tree layout, like a phylogenetic tree, with"
         " the root at the center. Which layout algorithm in {product} can"
         " produce that arrangement?"),
        ("Star graph layout looks wrong",
         "When I draw a star graph, the spokes overlap badly. Is there a"
         " layout that places the hub in the middle and spreads the leaves"
         " evenly?"),
        ("Planar layout for circuit graphs",
         "Our circuit graphs are planar; is there a planar layout in"
         " {product} that avoids edge crossings altogether?"),
    ],
    "Customizability": [
        ("Customizing vertex shapes and colors",
         "How do I customize the design of the rendered graph in {product}?"
         " I want square shapes for servers, round ones for clients, and a"
         " different color per data center."),
        ("Styling edges by weight",
         "Is it possible to customize the edge style so heavier edges are"
         " drawn thicker and in a darker color? The default style makes every"
         " relationship look the same."),
        ("Custom label fonts",
         "We need to customize label rendering: font, size, and placement"
         " relative to the vertex. Where do I configure the style of labels"
         " in {product}?"),
    ],
    "Large-graph Visualization": [
        ("Rendering millions of vertices",
         "{product} becomes unresponsive when we try to render a graph with"
         " millions of vertices. Is there a recommended way to visualize very"
         " large graphs, perhaps by sampling?"),
        ("Visualizing a large graph freezes the canvas",
         "Trying to visualize our full network (hundreds of thousands of"
         " vertices) freezes the canvas for minutes. How do others explore"
         " large graphs interactively?"),
    ],
    "Dynamic Graph Visualization": [
        ("Animating graph changes over time",
         "We have a dynamic graph that changes every minute. Can {product}"
         " animate additions and deletions so we can watch the graph evolve"
         " over time?"),
        ("Playback of a changing graph",
         "Is there support for animating a time sequence of graph snapshots,"
         " highlighting updated vertices as the animation plays?"),
    ],
    "Subqueries": [
        ("Using a query inside another query",
         "I want to use the result of one query as part of another query --"
         " essentially a subquery. Can {product} compose queries this way, or"
         " embed SQL as a subquery?"),
        ("Subquery as a predicate",
         "Is there a way to write a nested query whose result is used as a"
         " predicate in the outer query? Our current workaround runs two"
         " round trips through the client."),
        ("Query composition support",
         "Does {product} support composition, where the result of a subquery"
         " is itself a graph that can be queried further?"),
    ],
    "Querying Across Multiple Graphs": [
        ("Query spanning multiple graphs",
         "We store separate graphs per tenant and need a query across"
         " multiple graphs: start a traversal in one graph and continue it in"
         " another, like joining tables. Is that possible in {product}?"),
        ("Combining results from two graphs",
         "How can I use the results of a traversal in one graph to seed a"
         " traversal in a second graph? Querying across multiple graphs in"
         " one statement would save us a lot of glue code."),
    ],
    "Off-the-shelf Algorithms": [
        ("Request: add a built-in algorithm for betweenness",
         "Could {product} add a built-in betweenness centrality algorithm?"
         " Composing it from the low-level API is error prone, and we would"
         " rather call an off-the-shelf implementation."),
        ("Please ship an off-the-shelf k-core implementation",
         "Feature request: an off-the-shelf k-core decomposition. Most of us"
         " would rather reuse a tested algorithm from the library than"
         " implement it ourselves."),
        ("Add algorithm: approximate diameter",
         "It would be great if {product} could add an algorithm for"
         " approximate diameter so users do not have to hand-roll it with the"
         " programming API."),
        ("Built-in label propagation",
         "Please add a built-in label propagation algorithm to the library."
         " Everyone on our team has reimplemented it at least once."),
    ],
    "Graph Generators": [
        ("Generating k-regular test graphs",
         "The synthetic graph generator in {product} is very useful for"
         " testing. Could it also generate k-regular graphs?"),
        ("Random power-law generator for directed graphs",
         "Feature request for the graph generator module: random directed"
         " power-law graphs, so we can stress-test our ranking code on"
         " realistic degree distributions."),
        ("More options in the synthetic generator",
         "We use the generator to create test fixtures. Please add options"
         " for generating bipartite and small-world graphs too."),
    ],
    "GPU Support": [
        ("Running algorithms on the GPU",
         "Are there plans for GPU support in {product}? Our PageRank runs"
         " would fit comfortably in GPU memory and should speed up a lot."),
        ("CUDA backend",
         "Feature request: a CUDA backend so traversal-heavy workloads can"
         " execute on the GPU instead of the CPU."),
    ],
}

#: Routine messages; they must not trip any challenge rule or size pattern.
NOISE_TEMPLATES: list[tuple[str, str]] = [
    ("How to connect from the Java driver",
     "I am trying to connect to {product} from the Java driver behind a"
     " proxy and keep getting a connection refused error. Which ports need"
     " to be open?"),
    ("OutOfMemoryError during bulk load",
     "Loading our dataset into {product} fails with an OutOfMemoryError"
     " after about twenty minutes. Increasing the heap helped a little."
     " What are the recommended JVM settings?"),
    ("Slow query after upgrade",
     "After upgrading {product} to the latest release, one of our lookups"
     " became noticeably slower. The execution plan shows an index is no"
     " longer used. Any pointers?"),
    ("Release announcement",
     "We are happy to announce a new release of {product} with bug fixes"
     " and performance improvements. See the changelog for details."),
    ("Integration with Kafka",
     "Has anyone integrated {product} with Kafka for ingesting events?"
     " Looking for example code or a connector."),
    ("Build fails on ARM",
     "The build of {product} fails on my ARM machine with a linker error."
     " Attaching the log. Is this platform supported?"),
    ("Question about licensing",
     "Quick question: is the {product} community edition licensed for"
     " commercial use, and what does the enterprise license add?"),
    ("Backup and restore procedure",
     "What is the recommended way to back up a running {product} instance"
     " without downtime, and how do I restore a single database?"),
    ("Docs link broken",
     "The documentation page about configuration options returns a 404."
     " Could someone update the link on the website?"),
    ("How to write this lookup",
     "I have persons connected to companies and want every person who"
     " worked at the same company as a given person. What is the idiomatic"
     " way to express that lookup in {product}?"),
    ("Unicode characters garbled on import",
     "CSV import into {product} garbles non-ASCII characters even though"
     " the file is UTF-8. Is there an encoding option I am missing?"),
    ("Cluster node fails to rejoin",
     "One machine in our {product} cluster fails to rejoin after a network"
     " partition. The log shows repeated leader election timeouts."),
]

#: Sentences that carry a graph-size mention (Table 18). ``{amount}`` is a
#: formatted quantity, ``{unit}`` is "vertices"/"edges"/"nodes".
SIZE_TEMPLATES: list[tuple[str, str]] = [
    ("Loading a very large graph",
     "We are loading a graph with {amount} {unit} into {product} and the"
     " import has been running for two days. Is there a faster bulk path?"),
    ("Capacity planning question",
     "Our production graph has grown to {amount} {unit}. How much disk and"
     " memory should we provision for {product} at this scale?"),
    ("Scaling beyond one machine",
     "At {amount} {unit}, a single server no longer keeps up. What do other"
     " {product} users run at this scale?"),
    ("Performance with a huge dataset",
     "Benchmarking {product} on a dataset of {amount} {unit}: traversal"
     " latency is fine but the initial load is painful. Tuning advice?"),
]
