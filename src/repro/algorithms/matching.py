"""Subgraph matching (Table 9: "finding all diamond patterns, SPARQL").

A backtracking subgraph-isomorphism matcher in the VF2 style: candidate
ordering by pattern connectivity, endpoint-degree pruning, and optional
vertex/edge label compatibility for property graphs. Also provides motif
counting for the classic small patterns (triangle, diamond, square) and a
SPARQL-flavored triple-pattern matcher used by the query layer.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graphs.adjacency import Graph, Vertex

Assignment = dict[Vertex, Vertex]
Compatibility = Callable[[Vertex, Vertex], bool]


def find_subgraph_isomorphisms(
    pattern: Graph,
    target: Graph,
    vertex_compatible: Compatibility | None = None,
    limit: int | None = None,
) -> Iterator[Assignment]:
    """All injective mappings pattern -> target preserving pattern edges.

    This is subgraph *monomorphism*: every pattern edge must map onto a
    target edge, extra target edges are allowed. Directed patterns match
    edge direction; undirected patterns match either direction.

    Args:
        pattern: the small query graph.
        target: the data graph (same directedness as the pattern).
        vertex_compatible: optional predicate
            ``(pattern_vertex, target_vertex) -> bool`` for label checks.
        limit: stop after this many matches.
    """
    if pattern.directed != target.directed:
        raise ValueError("pattern and target must agree on directedness")
    order = _matching_order(pattern)
    if not order:
        yield {}
        return
    compatible = vertex_compatible or (lambda p, t: True)
    target_vertices = list(target.vertices())
    found = 0

    def candidates(index: int, assignment: Assignment) -> Iterator[Vertex]:
        pattern_vertex = order[index]
        # Prefer extending from an already-mapped pattern neighbor.
        for neighbor in _pattern_neighbors(pattern, pattern_vertex):
            if neighbor in assignment:
                anchor = assignment[neighbor]
                if pattern.directed:
                    if pattern.has_edge(neighbor, pattern_vertex):
                        yield from target.out_neighbors(anchor)
                    else:
                        yield from target.in_neighbors(anchor)
                else:
                    yield from target.neighbors(anchor)
                return
        yield from target_vertices

    def feasible(pattern_vertex: Vertex, candidate: Vertex,
                 assignment: Assignment) -> bool:
        if candidate in assignment.values():
            return False
        if not compatible(pattern_vertex, candidate):
            return False
        if target.degree(candidate) < pattern.degree(pattern_vertex):
            return False
        for neighbor in _pattern_neighbors(pattern, pattern_vertex):
            if neighbor not in assignment:
                continue
            mapped = assignment[neighbor]
            if pattern.directed:
                if (pattern.has_edge(pattern_vertex, neighbor)
                        and not target.has_edge(candidate, mapped)):
                    return False
                if (pattern.has_edge(neighbor, pattern_vertex)
                        and not target.has_edge(mapped, candidate)):
                    return False
            else:
                if not target.has_edge(candidate, mapped):
                    return False
        return True

    def backtrack(index: int, assignment: Assignment) -> Iterator[Assignment]:
        nonlocal found
        if limit is not None and found >= limit:
            return
        if index == len(order):
            found += 1
            yield dict(assignment)
            return
        pattern_vertex = order[index]
        seen: set[Vertex] = set()
        for candidate in candidates(index, assignment):
            if candidate in seen:
                continue
            seen.add(candidate)
            if feasible(pattern_vertex, candidate, assignment):
                assignment[pattern_vertex] = candidate
                yield from backtrack(index + 1, assignment)
                del assignment[pattern_vertex]
                if limit is not None and found >= limit:
                    return

    yield from backtrack(0, {})


def _pattern_neighbors(pattern: Graph, vertex: Vertex) -> set[Vertex]:
    return set(pattern.neighbors(vertex))


def _matching_order(pattern: Graph) -> list[Vertex]:
    """Connectivity-first ordering: start at the highest-degree vertex,
    then repeatedly add the unmatched vertex with most matched neighbors."""
    vertices = list(pattern.vertices())
    if not vertices:
        return []
    order = [max(vertices, key=pattern.degree)]
    placed = {order[0]}
    while len(order) < len(vertices):
        def key(v: Vertex):
            attached = sum(
                1 for w in _pattern_neighbors(pattern, v) if w in placed)
            return (attached, pattern.degree(v))

        best = max((v for v in vertices if v not in placed), key=key)
        order.append(best)
        placed.add(best)
    return order


def count_subgraph_isomorphisms(pattern: Graph, target: Graph,
                                **kwargs) -> int:
    return sum(1 for _ in find_subgraph_isomorphisms(pattern, target,
                                                     **kwargs))


def count_motif(target: Graph, motif: str) -> int:
    """Count unlabeled undirected motifs, each occurrence once.

    Supported motifs: ``triangle``, ``square`` (4-cycle), ``diamond``
    (4-cycle plus one chord), ``path3`` (3-vertex path), ``star3``
    (claw). Counts divide the matcher's output by the motif's
    automorphism count.
    """
    pattern, automorphisms = _MOTIFS[motif]()
    matches = count_subgraph_isomorphisms(pattern, target.to_undirected()
                                          if target.directed else target)
    return matches // automorphisms


def _triangle() -> tuple[Graph, int]:
    g = Graph(directed=False)
    g.add_edges([(0, 1), (1, 2), (2, 0)])
    return g, 6


def _square() -> tuple[Graph, int]:
    g = Graph(directed=False)
    g.add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    return g, 8


def _diamond() -> tuple[Graph, int]:
    g = Graph(directed=False)
    g.add_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    return g, 4


def _path3() -> tuple[Graph, int]:
    g = Graph(directed=False)
    g.add_edges([(0, 1), (1, 2)])
    return g, 2


def _star3() -> tuple[Graph, int]:
    g = Graph(directed=False)
    g.add_edges([(0, 1), (0, 2), (0, 3)])
    return g, 6


_MOTIFS = {
    "triangle": _triangle,
    "square": _square,
    "diamond": _diamond,
    "path3": _path3,
    "star3": _star3,
}


# ---------------------------------------------------------------------------
# Triple patterns (the SPARQL-flavored interface)
# ---------------------------------------------------------------------------

class Var:
    """A query variable in a triple pattern."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"?{self.name}"

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))


def match_triples(
    graph,
    triples: list[tuple],
    edge_label_of: Callable[[int], str | None] | None = None,
) -> Iterator[dict[str, Vertex]]:
    """Match a conjunction of ``(subject, predicate, object)`` patterns.

    Subjects/objects are constants or :class:`Var`; predicates are edge
    labels (string constants, :class:`Var`, or ``None`` for "any edge").
    Works on a :class:`~repro.graphs.property_graph.PropertyGraph` (labels
    from the graph) or any graph when ``edge_label_of`` is supplied.
    """
    if edge_label_of is None:
        label_of = getattr(graph, "edge_label", None)
        if label_of is None:
            label_of = lambda edge_id: None  # noqa: E731 - tiny adapter
    else:
        label_of = edge_label_of

    edges = [(edge.u, label_of(edge.edge_id), edge.v)
             for edge in graph.edges()]
    if not graph.directed:
        edges.extend((v, label, u) for u, label, v in list(edges))

    def solve(index: int, binding: dict[str, Vertex]):
        if index == len(triples):
            yield dict(binding)
            return
        subject, predicate, obj = triples[index]
        for u, label, v in edges:
            trial = dict(binding)
            if not _bind(trial, subject, u):
                continue
            if not _bind(trial, obj, v):
                continue
            if predicate is not None and not _bind(trial, predicate, label):
                continue
            yield from solve(index + 1, trial)

    yield from solve(0, {})


def _bind(binding: dict[str, Vertex], term, value) -> bool:
    if isinstance(term, Var):
        if term.name in binding:
            return binding[term.name] == value
        binding[term.name] = value
        return True
    return term == value
