"""Fundamental traversals: BFS, DFS, and neighborhood queries.

Table 11 of the survey shows most participants use breadth-first search,
depth-first search, or both; Table 9 puts *neighborhood queries* ("finding
2-degree neighbors of a vertex") second among all graph computations.

All traversals accept any object implementing the read API of
:class:`~repro.graphs.adjacency.Graph` (including
:class:`~repro.graphs.views.GraphView`), and follow out-edges; pass
``graph.reverse()`` or use in-neighbors explicitly for backward walks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.errors import VertexNotFound
from repro.graphs.adjacency import Vertex


def bfs_order(graph, source: Vertex) -> Iterator[Vertex]:
    """Vertices in breadth-first order from ``source``."""
    for vertex, _ in bfs_with_depth(graph, source):
        yield vertex


def bfs_with_depth(graph, source: Vertex) -> Iterator[tuple[Vertex, int]]:
    """Breadth-first traversal yielding ``(vertex, depth)`` pairs."""
    if source not in graph:
        raise VertexNotFound(source)
    seen = {source}
    queue = deque([(source, 0)])
    while queue:
        vertex, depth = queue.popleft()
        yield vertex, depth
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, depth + 1))


def bfs_tree(graph, source: Vertex) -> dict[Vertex, Vertex | None]:
    """Parent pointers of the BFS tree (source maps to ``None``)."""
    if source not in graph:
        raise VertexNotFound(source)
    parent: dict[Vertex, Vertex | None] = {source: None}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in parent:
                parent[neighbor] = vertex
                queue.append(neighbor)
    return parent


def bfs_layers(graph, source: Vertex) -> list[list[Vertex]]:
    """Vertices grouped by BFS depth."""
    layers: list[list[Vertex]] = []
    for vertex, depth in bfs_with_depth(graph, source):
        if depth == len(layers):
            layers.append([])
        layers[depth].append(vertex)
    return layers


def dfs_preorder(graph, source: Vertex) -> Iterator[Vertex]:
    """Iterative depth-first preorder from ``source``."""
    if source not in graph:
        raise VertexNotFound(source)
    seen: set[Vertex] = set()
    stack = [source]
    while stack:
        vertex = stack.pop()
        if vertex in seen:
            continue
        seen.add(vertex)
        yield vertex
        # Reversed so the first-listed neighbor is visited first.
        stack.extend(reversed(list(graph.out_neighbors(vertex))))


def dfs_postorder(graph, source: Vertex) -> Iterator[Vertex]:
    """Iterative depth-first postorder from ``source``."""
    if source not in graph:
        raise VertexNotFound(source)
    seen = {source}
    stack: list[tuple[Vertex, Iterator[Vertex]]] = [
        (source, iter(graph.out_neighbors(source)))]
    while stack:
        vertex, neighbors = stack[-1]
        advanced = False
        for neighbor in neighbors:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append((neighbor, iter(graph.out_neighbors(neighbor))))
                advanced = True
                break
        if not advanced:
            stack.pop()
            yield vertex


def dfs_edges(graph, source: Vertex) -> Iterator[tuple[Vertex, Vertex]]:
    """Tree edges of the DFS from ``source`` in visit order."""
    if source not in graph:
        raise VertexNotFound(source)
    seen = {source}
    stack: list[tuple[Vertex, Iterator[Vertex]]] = [
        (source, iter(graph.out_neighbors(source)))]
    while stack:
        vertex, neighbors = stack[-1]
        advanced = False
        for neighbor in neighbors:
            if neighbor not in seen:
                seen.add(neighbor)
                yield vertex, neighbor
                stack.append((neighbor, iter(graph.out_neighbors(neighbor))))
                advanced = True
                break
        if not advanced:
            stack.pop()


def topological_order(graph) -> list[Vertex]:
    """Kahn topological sort; raises ``ValueError`` on a cycle."""
    if not graph.directed:
        raise ValueError("topological order requires a directed graph")
    in_degree = {v: 0 for v in graph.vertices()}
    for v in graph.vertices():
        for w in graph.out_neighbors(v):
            in_degree[w] += 1
    ready = deque(v for v, d in in_degree.items() if d == 0)
    order = []
    while ready:
        vertex = ready.popleft()
        order.append(vertex)
        for neighbor in graph.out_neighbors(vertex):
            in_degree[neighbor] -= 1
            if in_degree[neighbor] == 0:
                ready.append(neighbor)
    if len(order) != len(in_degree):
        raise ValueError("graph contains a cycle")
    return order


def k_hop_neighbors(graph, source: Vertex, k: int) -> set[Vertex]:
    """The Table 9 neighborhood query: vertices within ``k`` hops
    (excluding the source itself)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    result = {
        vertex
        for vertex, depth in bfs_with_depth(graph, source)
        if 0 < depth <= k
    }
    return result


def neighborhood_at_exact_distance(graph, source: Vertex,
                                   k: int) -> set[Vertex]:
    """Vertices at BFS distance exactly ``k``."""
    return {
        vertex
        for vertex, depth in bfs_with_depth(graph, source)
        if depth == k
    }


def walk(graph, source: Vertex, steps: int,
         choose: Callable[[list[Vertex]], Vertex]) -> list[Vertex]:
    """A generic guided walk: at each step ``choose`` picks the next vertex
    among the out-neighbors. Stops early at a sink. Used by sampling-based
    visualization and by tests as a traversal building block."""
    if source not in graph:
        raise VertexNotFound(source)
    path = [source]
    current = source
    for _ in range(steps):
        neighbors = list(graph.out_neighbors(current))
        if not neighbors:
            break
        current = choose(neighbors)
        path.append(current)
    return path
