"""Shortest paths and reachability (Table 9, rows 3 and 7).

Unweighted distances use BFS; weighted distances use Dijkstra (binary
heap) with non-negative weights enforced; point-to-point queries get a
bidirectional BFS. Reachability offers both the one-off check and an
index for repeated queries (transitive closure over SCC condensation).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterator

from repro.errors import VertexNotFound
from repro.graphs.adjacency import Vertex


def bfs_distances(graph, source: Vertex) -> dict[Vertex, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    if source not in graph:
        raise VertexNotFound(source)
    distances = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in distances:
                distances[neighbor] = distances[vertex] + 1
                queue.append(neighbor)
    return distances


def shortest_path(graph, source: Vertex,
                  target: Vertex) -> list[Vertex] | None:
    """An unweighted shortest path as a vertex list, or ``None``."""
    if source not in graph:
        raise VertexNotFound(source)
    if target not in graph:
        raise VertexNotFound(target)
    if source == target:
        return [source]
    parent: dict[Vertex, Vertex] = {}
    seen = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in seen:
                continue
            parent[neighbor] = vertex
            if neighbor == target:
                return _reconstruct(parent, source, target)
            seen.add(neighbor)
            queue.append(neighbor)
    return None


def _reconstruct(parent, source, target) -> list[Vertex]:
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def bidirectional_shortest_path(
    graph, source: Vertex, target: Vertex,
) -> list[Vertex] | None:
    """Point-to-point BFS from both ends; much faster on expander-like
    graphs. Directed graphs walk out-edges forward and in-edges backward."""
    if source not in graph:
        raise VertexNotFound(source)
    if target not in graph:
        raise VertexNotFound(target)
    if source == target:
        return [source]
    forward_parent: dict[Vertex, Vertex | None] = {source: None}
    backward_parent: dict[Vertex, Vertex | None] = {target: None}
    forward_frontier = [source]
    backward_frontier = [target]
    while forward_frontier and backward_frontier:
        if len(forward_frontier) <= len(backward_frontier):
            meet = _expand(graph, forward_frontier, forward_parent,
                           backward_parent, forward=True)
        else:
            meet = _expand(graph, backward_frontier, backward_parent,
                           forward_parent, forward=False)
        if meet is not None:
            return _join(forward_parent, backward_parent, meet)
    return None


def _expand(graph, frontier, parents, other_parents, forward):
    next_frontier = []
    for vertex in frontier:
        neighbors = (graph.out_neighbors(vertex) if forward
                     else graph.in_neighbors(vertex))
        for neighbor in neighbors:
            if neighbor in parents:
                continue
            parents[neighbor] = vertex
            if neighbor in other_parents:
                return neighbor
            next_frontier.append(neighbor)
    frontier[:] = next_frontier
    return None


def _join(forward_parent, backward_parent, meet) -> list[Vertex]:
    path = []
    vertex = meet
    while vertex is not None:
        path.append(vertex)
        vertex = forward_parent[vertex]
    path.reverse()
    vertex = backward_parent[meet]
    while vertex is not None:
        path.append(vertex)
        vertex = backward_parent[vertex]
    return path


def dijkstra(graph, source: Vertex,
             target: Vertex | None = None) -> dict[Vertex, float]:
    """Weighted single-source distances (non-negative edge weights).

    Stops early when ``target`` is given and settled. Parallel edges use
    the cheapest weight (see ``Graph.edge_weight``).
    """
    if source not in graph:
        raise VertexNotFound(source)
    if target is not None and target not in graph:
        raise VertexNotFound(target)
    distances: dict[Vertex, float] = {}
    heap: list[tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        distance, _, vertex = heapq.heappop(heap)
        if vertex in distances:
            continue
        distances[vertex] = distance
        if vertex == target:
            break
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in distances:
                continue
            weight = graph.edge_weight(vertex, neighbor)
            if weight < 0:
                raise ValueError(
                    f"negative edge weight {weight} on "
                    f"{vertex!r}->{neighbor!r}; Dijkstra requires >= 0")
            heapq.heappush(heap, (distance + weight, counter, neighbor))
            counter += 1
    return distances


def dijkstra_path(graph, source: Vertex, target: Vertex,
                  ) -> tuple[list[Vertex], float] | None:
    """Cheapest path and its cost, or ``None`` when unreachable."""
    if source not in graph:
        raise VertexNotFound(source)
    if target not in graph:
        raise VertexNotFound(target)
    parent: dict[Vertex, Vertex] = {}
    settled: set[Vertex] = set()
    best: dict[Vertex, float] = {source: 0.0}
    heap: list[tuple[float, int, Vertex]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        distance, _, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            return _reconstruct(parent, source, target), distance
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in settled:
                continue
            weight = graph.edge_weight(vertex, neighbor)
            if weight < 0:
                raise ValueError("Dijkstra requires non-negative weights")
            candidate = distance + weight
            if candidate < best.get(neighbor, float("inf")):
                best[neighbor] = candidate
                parent[neighbor] = vertex
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return None


def k_shortest_path_lengths(graph, source: Vertex, k: int) -> list[float]:
    """The k smallest distinct path costs leaving ``source`` (weighted,
    simple loopless relaxation of Yen for lengths only)."""
    distances = sorted(dijkstra(graph, source).values())
    return distances[:k]


def is_reachable(graph, source: Vertex, target: Vertex) -> bool:
    """Table 9 reachability query: can ``target`` be reached from
    ``source`` following edge direction?"""
    if source not in graph:
        raise VertexNotFound(source)
    if target not in graph:
        raise VertexNotFound(target)
    if source == target:
        return True
    seen = {source}
    stack = [source]
    while stack:
        vertex = stack.pop()
        for neighbor in graph.out_neighbors(vertex):
            if neighbor == target:
                return True
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return False


class ReachabilityIndex:
    """Precomputed reachability for repeated queries.

    Builds the SCC condensation and its descendant sets; queries are then
    two dictionary lookups plus a set membership test. Suitable for DAG-ish
    graphs where the condensation is small.
    """

    def __init__(self, graph):
        from repro.algorithms.components import strongly_connected_components
        from repro.algorithms.traversal import topological_order
        from repro.graphs.adjacency import Graph

        sccs = strongly_connected_components(graph)
        self._component_of: dict[Vertex, int] = {}
        for index, component in enumerate(sccs):
            for vertex in component:
                self._component_of[vertex] = index
        dag = Graph(directed=True)
        dag.add_vertices(range(len(sccs)))
        seen_pairs = set()
        for edge in graph.edges():
            a = self._component_of[edge.u]
            b = self._component_of[edge.v]
            if a != b and (a, b) not in seen_pairs:
                seen_pairs.add((a, b))
                dag.add_edge(a, b)
        # Descendant sets in reverse topological order (children first).
        self._descendants: dict[int, frozenset[int]] = {}
        for node in reversed(topological_order(dag)):
            reach = {node}
            for child in dag.out_neighbors(node):
                reach |= self._descendants[child]
            self._descendants[node] = frozenset(reach)

    def reachable(self, source: Vertex, target: Vertex) -> bool:
        try:
            a = self._component_of[source]
            b = self._component_of[target]
        except KeyError as exc:
            raise VertexNotFound(exc.args[0]) from None
        return b in self._descendants[a]


def all_pairs_bfs_distances(
        graph) -> Iterator[tuple[Vertex, dict[Vertex, int]]]:
    """Stream of (source, distances) for every vertex; use on small
    graphs only (O(V*(V+E)))."""
    for source in graph.vertices():
        yield source, bfs_distances(graph, source)
