"""Graph algorithms: every computation of the survey's Table 9 plus the
Table 11 traversals and the Section 4.3 streaming/incremental variants.

Module map (Table 9 row -> module):

* Finding Connected Components -> :mod:`repro.algorithms.components`
* Neighborhood Queries -> :mod:`repro.algorithms.traversal`
* Finding Short / Shortest Paths -> :mod:`repro.algorithms.paths`
* Subgraph Matching -> :mod:`repro.algorithms.matching`
* Ranking & Centrality Scores -> :mod:`repro.algorithms.pagerank`,
  :mod:`repro.algorithms.centrality`
* Aggregations -> :mod:`repro.algorithms.aggregation`
* Reachability Queries -> :mod:`repro.algorithms.paths`
* Graph Partitioning -> :mod:`repro.algorithms.partitioning`
* Node-similarity -> :mod:`repro.algorithms.similarity`
* Finding Frequent or Densest Subgraphs -> :mod:`repro.algorithms.dense`
* Computing Minimum Spanning Tree -> :mod:`repro.algorithms.mst`
* Graph Coloring -> :mod:`repro.algorithms.coloring`
* Diameter Estimation -> :mod:`repro.algorithms.diameter`
* Traversals (Table 11) -> :mod:`repro.algorithms.traversal`
* Streaming / incremental (Section 4.3) ->
  :mod:`repro.algorithms.streaming_algos`
"""

from repro.algorithms.aggregation import (
    average_clustering,
    degree_assortativity,
    degree_histogram,
    degree_statistics,
    density,
    global_clustering,
    local_clustering_coefficient,
    reciprocity,
    triangle_count,
    triangles_per_vertex,
)
from repro.algorithms.centrality import (
    approximate_betweenness,
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    harmonic_centrality,
    top_central,
)
from repro.algorithms.coloring import (
    chromatic_number_exact,
    dsatur_coloring,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)
from repro.algorithms.components import (
    IncrementalComponents,
    UnionFind,
    component_labels,
    connected_components,
    connected_components_unionfind,
    is_connected,
    largest_component,
    num_components,
    strongly_connected_components,
)
from repro.algorithms.dense import (
    core_numbers,
    degeneracy,
    densest_subgraph,
    frequent_subgraphs,
    k_core,
    k_truss,
    subgraph_density,
)
from repro.algorithms.diameter import (
    double_sweep_lower_bound,
    eccentricity,
    effective_diameter,
    exact_diameter,
    ifub_diameter,
    radius,
)
from repro.algorithms.matching import (
    Var,
    count_motif,
    count_subgraph_isomorphisms,
    find_subgraph_isomorphisms,
    match_triples,
)
from repro.algorithms.mst import (
    is_spanning_forest,
    kruskal_mst,
    maximum_spanning_tree,
    mst_weight,
    prim_mst,
)
from repro.algorithms.pagerank import (
    pagerank,
    personalized_pagerank,
    top_ranked,
)
from repro.algorithms.partitioning import (
    balance,
    bfs_grow_partition,
    communication_volume,
    edge_cut,
    label_propagation_refine,
    partition_graph,
    random_partition,
)
from repro.algorithms.paths import (
    ReachabilityIndex,
    bfs_distances,
    bidirectional_shortest_path,
    dijkstra,
    dijkstra_path,
    is_reachable,
    shortest_path,
)
from repro.algorithms.similarity import (
    adamic_adar,
    common_neighbors,
    cosine_similarity,
    jaccard_similarity,
    most_similar,
    preferential_attachment,
    simrank,
)
from repro.algorithms.streaming_algos import (
    IncrementalKCore,
    StreamingDegreeStats,
    StreamingTriangleCounter,
    hill_climb,
    streaming_connected_components,
)
from repro.algorithms.traversal import (
    bfs_layers,
    bfs_order,
    bfs_tree,
    bfs_with_depth,
    dfs_edges,
    dfs_postorder,
    dfs_preorder,
    k_hop_neighbors,
    topological_order,
)
