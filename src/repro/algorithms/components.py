"""Connected components -- the survey's most popular computation (Table 9).

Provides the static algorithms (BFS-based and union-find) plus an
*incremental* connectivity structure for the Section 4.3 participants who
reported running approximate/incremental connected components on changing
graphs.

For directed graphs, ``connected_components`` computes *weakly* connected
components (edge direction ignored); ``strongly_connected_components``
implements Tarjan's algorithm iteratively.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

from repro.graphs.adjacency import Vertex


def connected_components(graph) -> list[set[Vertex]]:
    """Weakly connected components via BFS over undirected adjacency."""
    seen: set[Vertex] = set()
    components = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = {start}
        seen.add(start)
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for neighbor in graph.neighbors(vertex):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def component_labels(graph) -> dict[Vertex, int]:
    """Vertex -> component index, indexes ordered by first discovery."""
    labels: dict[Vertex, int] = {}
    for index, component in enumerate(connected_components(graph)):
        for vertex in component:
            labels[vertex] = index
    return labels


def largest_component(graph) -> set[Vertex]:
    """The largest weakly connected component (empty set for empty graph)."""
    components = connected_components(graph)
    if not components:
        return set()
    return max(components, key=len)


def num_components(graph) -> int:
    return len(connected_components(graph))


def is_connected(graph) -> bool:
    """True for non-empty graphs with a single (weak) component."""
    components = connected_components(graph)
    return len(components) == 1


def strongly_connected_components(graph) -> list[set[Vertex]]:
    """Tarjan's SCC algorithm, iterative (safe for deep graphs)."""
    if not graph.directed:
        return connected_components(graph)
    index_counter = 0
    index: dict[Vertex, int] = {}
    lowlink: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    components: list[set[Vertex]] = []

    for root in graph.vertices():
        if root in index:
            continue
        work: list[tuple[Vertex, Iterator[Vertex]]] = [
            (root, iter(graph.out_neighbors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in index:
                    index[neighbor] = lowlink[neighbor] = index_counter
                    index_counter += 1
                    stack.append(neighbor)
                    on_stack.add(neighbor)
                    work.append(
                        (neighbor, iter(graph.out_neighbors(neighbor))))
                    advanced = True
                    break
                if neighbor in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def condensation_edges(graph) -> set[tuple[int, int]]:
    """Edges of the SCC condensation DAG as (component_index,
    component_index) pairs."""
    sccs = strongly_connected_components(graph)
    label = {}
    for i, component in enumerate(sccs):
        for vertex in component:
            label[vertex] = i
    edges = set()
    for edge in graph.edges():
        a, b = label[edge.u], label[edge.v]
        if a != b:
            edges.add((a, b))
    return edges


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def find(self, item: Hashable) -> Hashable:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of a and b; returns True if they were separate."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        return sum(1 for item, parent in self._parent.items()
                   if item == parent)

    def components(self) -> list[set[Hashable]]:
        by_root: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


def connected_components_unionfind(graph) -> list[set[Vertex]]:
    """Union-find variant; same result as :func:`connected_components`."""
    uf = UnionFind(graph.vertices())
    for edge in graph.edges():
        uf.union(edge.u, edge.v)
    return uf.components()


class IncrementalComponents:
    """Incremental (insert-only) connectivity for evolving graphs.

    The Section 4.3 streaming answers included "approximate connected
    components" maintained incrementally. Insertions are handled exactly
    in near-constant amortized time via union-find; deletions are not
    supported (that requires much heavier machinery), matching the
    insert-only incremental setting.
    """

    def __init__(self):
        self._uf = UnionFind()
        self._edges = 0

    def add_vertex(self, vertex: Vertex) -> None:
        self._uf.add(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Returns True when the edge merged two components."""
        self._edges += 1
        return self._uf.union(u, v)

    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._uf.connected(u, v)

    def num_components(self) -> int:
        return self._uf.component_count()

    def components(self) -> list[set[Vertex]]:
        return self._uf.components()
