"""Dense subgraph discovery (Table 9: "Finding Frequent or Densest
Subgraphs") plus k-core decomposition (a Section 4.3 user computation).

* :func:`densest_subgraph` -- Charikar's greedy peeling, a 1/2
  approximation to the maximum average-degree subgraph.
* :func:`k_core` / :func:`core_numbers` -- the degeneracy ordering
  algorithm (Batagelj-Zaversnik).
* :func:`k_truss` -- triangle-support peeling.
* :func:`frequent_subgraphs` -- frequency counting of the small motifs
  over a database of graphs (the "frequent subgraphs" reading of the
  Table 9 row).
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphs.adjacency import Graph, Vertex


def _simple_undirected_sets(graph) -> dict[Vertex, set[Vertex]]:
    sets: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    for edge in graph.edges():
        if edge.u == edge.v:
            continue
        sets[edge.u].add(edge.v)
        sets[edge.v].add(edge.u)
    return sets


def subgraph_density(graph, vertices: set[Vertex]) -> float:
    """Average degree density |E(S)| / |S| of an induced subgraph."""
    if not vertices:
        return 0.0
    edges = sum(
        1 for edge in graph.edges()
        if edge.u in vertices and edge.v in vertices and edge.u != edge.v
    )
    return edges / len(vertices)


def densest_subgraph(graph) -> tuple[set[Vertex], float]:
    """Charikar's peeling: repeatedly remove the minimum-degree vertex,
    return the densest prefix. Guaranteed within 1/2 of optimal."""
    neighbors = _simple_undirected_sets(graph)
    degree = {v: len(adjacent) for v, adjacent in neighbors.items()}
    edges = sum(degree.values()) // 2
    remaining = set(neighbors)

    best_density = edges / len(remaining) if remaining else 0.0
    best_size = len(remaining)
    removal_order: list[Vertex] = []

    buckets: dict[int, set[Vertex]] = defaultdict(set)
    for vertex, d in degree.items():
        buckets[d].add(vertex)
    current_min = 0

    while remaining:
        while current_min not in buckets or not buckets[current_min]:
            current_min += 1
        vertex = buckets[current_min].pop()
        remaining.discard(vertex)
        removal_order.append(vertex)
        edges -= degree[vertex]
        for neighbor in neighbors[vertex]:
            if neighbor in remaining:
                buckets[degree[neighbor]].discard(neighbor)
                degree[neighbor] -= 1
                buckets[degree[neighbor]].add(neighbor)
                current_min = min(current_min, degree[neighbor])
        neighbors_of_removed = neighbors[vertex]
        for neighbor in neighbors_of_removed:
            neighbors[neighbor].discard(vertex)
        if remaining:
            density = edges / len(remaining)
            if density > best_density:
                best_density = density
                best_size = len(remaining)

    all_vertices = removal_order
    best_set = set(all_vertices[len(all_vertices) - best_size:])
    return best_set, best_density


def core_numbers(graph) -> dict[Vertex, int]:
    """Core number of every vertex (Batagelj-Zaversnik peeling)."""
    neighbors = _simple_undirected_sets(graph)
    degree = {v: len(adjacent) for v, adjacent in neighbors.items()}
    cores: dict[Vertex, int] = {}
    buckets: dict[int, set[Vertex]] = defaultdict(set)
    for vertex, d in degree.items():
        buckets[d].add(vertex)
    current = 0
    remaining = len(degree)
    while remaining:
        while current not in buckets or not buckets[current]:
            current += 1
        vertex = buckets[current].pop()
        cores[vertex] = current
        remaining -= 1
        for neighbor in neighbors[vertex]:
            if neighbor in cores:
                continue
            if degree[neighbor] > current:
                buckets[degree[neighbor]].discard(neighbor)
                degree[neighbor] -= 1
                buckets[degree[neighbor]].add(neighbor)
        for neighbor in neighbors[vertex]:
            neighbors[neighbor].discard(vertex)
    return cores


def k_core(graph, k: int) -> set[Vertex]:
    """Vertices of the maximal subgraph with minimum degree >= k."""
    return {v for v, core in core_numbers(graph).items() if core >= k}


def degeneracy(graph) -> int:
    """The maximum core number (0 for an empty graph)."""
    cores = core_numbers(graph)
    return max(cores.values(), default=0)


def k_truss(graph, k: int) -> set[tuple[Vertex, Vertex]]:
    """Edges of the k-truss: every edge supported by >= k-2 triangles.

    Returned as canonical (u, v) pairs (repr-ordered endpoints).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    neighbors = _simple_undirected_sets(graph)

    def canonical(u: Vertex, v: Vertex) -> tuple[Vertex, Vertex]:
        return (u, v) if repr(u) <= repr(v) else (v, u)

    edges = {canonical(u, v)
             for u, adjacent in neighbors.items() for v in adjacent}
    support = {}
    for u, v in edges:
        support[u, v] = len(neighbors[u] & neighbors[v])

    changed = True
    while changed:
        changed = False
        for edge_key in [e for e in edges if support[e] < k - 2]:
            u, v = edge_key
            edges.discard(edge_key)
            changed = True
            neighbors[u].discard(v)
            neighbors[v].discard(u)
            for w in neighbors[u] & neighbors[v]:
                for other in (canonical(u, w), canonical(v, w)):
                    if other in edges:
                        support[other] -= 1
    return edges


def frequent_subgraphs(
    graphs: list[Graph],
    min_support: int,
    motifs: tuple[str, ...] = ("path3", "star3", "triangle", "square",
                               "diamond"),
) -> dict[str, int]:
    """Motifs appearing in at least ``min_support`` of the given graphs.

    Returns ``{motif_name: supporting_graph_count}`` for the motifs that
    meet the support threshold -- the transaction-style frequent-subgraph
    counting used in graph mining, restricted to the canonical small
    motifs of :mod:`repro.algorithms.matching`.
    """
    from repro.algorithms.matching import count_motif

    support: dict[str, int] = {}
    for motif in motifs:
        count = sum(1 for g in graphs if count_motif(g, motif) > 0)
        if count >= min_support:
            support[motif] = count
    return support
