"""Graph algorithms as linear algebra (the Table 12 "Linear Algebra
Library / Software" class).

The paper's conclusion points to the "ongoing effort to develop a
standard set of linear algebra operations for expressing graph
algorithms" (GraphBLAS). This module implements that style on scipy
sparse matrices: a small semiring abstraction plus the classic kernels --
BFS levels via boolean matrix-vector products, SSSP via min-plus
products, PageRank via plus-times iteration, and triangle counting via
``A^2 .* A``. Each is tested for equivalence against the direct
implementations in this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph, Vertex
from repro.graphs.csr import CSRGraph


def adjacency_matrix(graph: Graph | CSRGraph,
                     ) -> tuple[sp.csr_matrix, list[Vertex]]:
    """The weighted adjacency matrix A with A[i, j] = weight(i -> j),
    plus the vertex order the indices refer to. Parallel edges keep the
    minimum weight (matching ``Graph.edge_weight``)."""
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    n = csr.num_vertices()
    matrix = sp.csr_matrix(
        (csr.weights, csr.indices, csr.indptr), shape=(n, n))
    # Collapse parallel entries to the minimum weight.
    matrix = matrix.tocoo()
    if len(matrix.data):
        order = np.lexsort((matrix.data, matrix.col, matrix.row))
        rows, cols, data = (matrix.row[order], matrix.col[order],
                            matrix.data[order])
        keep = np.ones(len(data), dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        matrix = sp.csr_matrix(
            (data[keep], (rows[keep], cols[keep])), shape=(n, n))
    else:
        matrix = matrix.tocsr()
    return matrix, list(csr.vertex_order)


@dataclass(frozen=True)
class Semiring:
    """A GraphBLAS-style semiring: (add, add-identity, multiply)."""

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def vxm(self, vector: np.ndarray, matrix: sp.csr_matrix) -> np.ndarray:
        """vector-times-matrix over this semiring (dense vector)."""
        n = matrix.shape[0]
        result = np.full(n, self.zero, dtype=np.float64)
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for i in range(n):
            x = vector[i]
            if x == self.zero:
                continue
            row = slice(indptr[i], indptr[i + 1])
            contributions = self.multiply(x, data[row])
            cols = indices[row]
            result[cols] = self.add(result[cols], contributions)
        return result


PLUS_TIMES = Semiring("plus_times", add=np.add, zero=0.0,
                      multiply=lambda x, w: x * w)
MIN_PLUS = Semiring("min_plus", add=np.minimum, zero=np.inf,
                    multiply=lambda x, w: x + w)
OR_AND = Semiring("or_and", add=np.logical_or, zero=0.0,
                  multiply=lambda x, w: np.logical_and(x, w != 0))


def bfs_levels_matrix(graph: Graph, source: Vertex) -> dict[Vertex, int]:
    """BFS levels via repeated boolean vector-matrix products over the
    OR-AND semiring (the GraphBLAS BFS idiom)."""
    matrix, order = adjacency_matrix(graph)
    index_of = {v: i for i, v in enumerate(order)}
    n = len(order)
    levels = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n, dtype=np.float64)
    frontier[index_of[source]] = 1.0
    levels[index_of[source]] = 0
    level = 0
    while frontier.any():
        level += 1
        reached = OR_AND.vxm(frontier, matrix).astype(bool)
        new = reached & (levels < 0)
        levels[new] = level
        frontier = new.astype(np.float64)
    return {order[i]: int(levels[i]) for i in range(n) if levels[i] >= 0}


def sssp_matrix(graph: Graph, source: Vertex) -> dict[Vertex, float]:
    """Bellman-Ford as repeated min-plus vector-matrix products."""
    matrix, order = adjacency_matrix(graph)
    index_of = {v: i for i, v in enumerate(order)}
    n = len(order)
    distances = np.full(n, np.inf)
    distances[index_of[source]] = 0.0
    for _ in range(max(1, n - 1)):
        relaxed = np.minimum(distances, MIN_PLUS.vxm(distances, matrix))
        if np.array_equal(relaxed, distances):
            break
        distances = relaxed
    return {order[i]: float(distances[i])
            for i in range(n) if np.isfinite(distances[i])}


def pagerank_matrix(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> dict[Vertex, float]:
    """PageRank as plus-times iteration on the column-stochastic matrix."""
    matrix, order = adjacency_matrix(graph)
    n = len(order)
    if n == 0:
        return {}
    # Row-normalize: each vertex splits rank equally among out-edges
    # (unweighted semantics, matching repro.algorithms.pagerank).
    binary = matrix.copy()
    binary.data = np.ones_like(binary.data)
    out_degree = np.asarray(binary.sum(axis=1)).ravel()
    dangling = out_degree == 0
    scale = np.divide(1.0, out_degree, out=np.zeros(n), where=~dangling)
    transition = sp.diags(scale) @ binary
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new_rank = (damping * (PLUS_TIMES.vxm(rank, transition.tocsr())
                               + rank[dangling].sum() / n)
                    + (1 - damping) / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return {order[i]: float(rank[i]) for i in range(n)}


def triangle_count_matrix(graph: Graph) -> int:
    """Triangles via ``trace(A @ A .* A) / 6`` on the symmetrized
    unweighted adjacency (self-loops removed)."""
    matrix, _ = adjacency_matrix(graph)
    matrix = matrix.tolil()
    matrix.setdiag(0)
    matrix = matrix.tocsr()
    matrix.eliminate_zeros()
    matrix.data = np.ones_like(matrix.data)
    symmetric = matrix.maximum(matrix.T)
    squared = symmetric @ symmetric
    hadamard = squared.multiply(symmetric)
    return int(hadamard.sum()) // 6


def matrix_power_reachability(graph: Graph, k: int) -> sp.csr_matrix:
    """Boolean reachability within exactly <= k steps: OR of A^1..A^k."""
    matrix, _ = adjacency_matrix(graph)
    matrix.data = np.ones_like(matrix.data)
    reach = matrix.copy()
    power = matrix.copy()
    for _ in range(k - 1):
        power = (power @ matrix).sign()
        reach = reach.maximum(power)
    return reach.sign()


def degree_vector(graph: Graph) -> dict[Vertex, int]:
    """Out-degrees as A @ 1 (unweighted)."""
    matrix, order = adjacency_matrix(graph)
    binary = matrix.copy()
    binary.data = np.ones_like(binary.data)
    degrees = np.asarray(binary.sum(axis=1)).ravel()
    return {order[i]: int(degrees[i]) for i in range(len(order))}
