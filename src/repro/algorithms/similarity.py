"""Node similarity (Table 9: "e.g., SimRank").

SimRank via iterated fixed point, plus the cheap neighborhood similarity
measures (Jaccard, cosine, common neighbors, Adamic-Adar) that double as
link-prediction scores in :mod:`repro.ml.linkpred`.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import VertexNotFound
from repro.graphs.adjacency import Vertex


def _in_neighbor_sets(graph) -> dict[Vertex, list[Vertex]]:
    return {v: list(graph.in_neighbors(v)) for v in graph.vertices()}


def simrank(
    graph,
    decay: float = 0.8,
    max_iter: int = 20,
    tol: float = 1e-5,
) -> dict[tuple[Vertex, Vertex], float]:
    """All-pairs SimRank scores.

    ``s(a, a) = 1``; ``s(a, b)`` is the decayed average similarity of
    in-neighbor pairs. Suitable for small/medium graphs (O(n^2 d^2) per
    iteration); use :func:`simrank_single_pair` for a one-off query.
    """
    if not 0 < decay < 1:
        raise ValueError("decay must be in (0, 1)")
    vertices = list(graph.vertices())
    in_neighbors = _in_neighbor_sets(graph)
    scores: dict[tuple[Vertex, Vertex], float] = {}
    for a in vertices:
        for b in vertices:
            scores[a, b] = 1.0 if a == b else 0.0

    for _ in range(max_iter):
        delta = 0.0
        new_scores = dict(scores)
        for i, a in enumerate(vertices):
            for b in vertices[i + 1:]:
                na, nb = in_neighbors[a], in_neighbors[b]
                if not na or not nb:
                    value = 0.0
                else:
                    total = sum(scores[x, y] for x in na for y in nb)
                    value = decay * total / (len(na) * len(nb))
                delta = max(delta, abs(value - scores[a, b]))
                new_scores[a, b] = value
                new_scores[b, a] = value
        scores = new_scores
        if delta < tol:
            break
    return scores


def simrank_single_pair(graph, a: Vertex, b: Vertex, decay: float = 0.8,
                        max_iter: int = 20) -> float:
    """SimRank for one pair (computed via the all-pairs fixed point on the
    reachable ancestor subgraph for correctness, small-graph oriented)."""
    if a not in graph:
        raise VertexNotFound(a)
    if b not in graph:
        raise VertexNotFound(b)
    return simrank(graph, decay=decay, max_iter=max_iter)[a, b]


def _neighbor_set(graph, vertex: Vertex) -> set[Vertex]:
    if vertex not in graph:
        raise VertexNotFound(vertex)
    return set(graph.neighbors(vertex))


def common_neighbors(graph, a: Vertex, b: Vertex) -> int:
    return len(_neighbor_set(graph, a) & _neighbor_set(graph, b))


def jaccard_similarity(graph, a: Vertex, b: Vertex) -> float:
    na, nb = _neighbor_set(graph, a), _neighbor_set(graph, b)
    union = na | nb
    if not union:
        return 0.0
    return len(na & nb) / len(union)


def cosine_similarity(graph, a: Vertex, b: Vertex) -> float:
    na, nb = _neighbor_set(graph, a), _neighbor_set(graph, b)
    if not na or not nb:
        return 0.0
    return len(na & nb) / math.sqrt(len(na) * len(nb))


def adamic_adar(graph, a: Vertex, b: Vertex) -> float:
    """Common neighbors weighted by inverse log degree."""
    score = 0.0
    for shared in _neighbor_set(graph, a) & _neighbor_set(graph, b):
        degree = graph.degree(shared)
        if degree > 1:
            score += 1.0 / math.log(degree)
    return score


def preferential_attachment(graph, a: Vertex, b: Vertex) -> int:
    return len(_neighbor_set(graph, a)) * len(_neighbor_set(graph, b))


def most_similar(
    graph,
    vertex: Vertex,
    candidates: Iterable[Vertex] | None = None,
    measure: str = "jaccard",
    k: int = 10,
) -> list[tuple[Vertex, float]]:
    """Top-k most similar vertices by a named measure.

    Measures: ``jaccard``, ``cosine``, ``common``, ``adamic_adar``,
    ``preferential``. Candidates default to the 2-hop neighborhood (the
    only vertices that can share a neighbor).
    """
    measures = {
        "jaccard": jaccard_similarity,
        "cosine": cosine_similarity,
        "common": common_neighbors,
        "adamic_adar": adamic_adar,
        "preferential": preferential_attachment,
    }
    try:
        fn = measures[measure]
    except KeyError:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(measures)}"
        ) from None
    if candidates is None:
        pool = set()
        for neighbor in _neighbor_set(graph, vertex):
            pool |= _neighbor_set(graph, neighbor)
        pool.discard(vertex)
        pool -= _neighbor_set(graph, vertex)
    else:
        pool = {c for c in candidates if c != vertex}
    scored = [(candidate, float(fn(graph, vertex, candidate)))
              for candidate in pool]
    scored.sort(key=lambda item: (-item[1], repr(item[0])))
    return scored[:k]
