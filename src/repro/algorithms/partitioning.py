"""Graph partitioning (Table 9, row 8).

Balanced k-way partitioning with two practical heuristics -- BFS region
growing (the classic "bubble" scheme) and label-propagation refinement --
plus the quality metrics (edge cut, balance) used to compare them in the
ablation benchmark.
"""

from __future__ import annotations

import random
from collections import deque

from repro.graphs.adjacency import Vertex

Partition = dict[Vertex, int]


def edge_cut(graph, partition: Partition) -> int:
    """Number of edges whose endpoints land in different parts."""
    return sum(
        1 for edge in graph.edges()
        if partition[edge.u] != partition[edge.v]
    )


def communication_volume(graph, partition: Partition) -> int:
    """Number of (vertex, remote-part) pairs — the routing cost a
    sharded runtime actually pays.

    A vertex that sends along its out-edges ships one combined message
    per *distinct* remote part its neighbors live in (sender-side
    combining collapses the rest), so this counts
    ``sum over v of |{parts of v's neighbors} - {part of v}|``.
    Contrast with :func:`edge_cut`, which charges every crossing edge
    even when many lead to the same remote part.
    """
    total = 0
    for vertex in graph.vertices():
        home = partition[vertex]
        remote = {partition[neighbor]
                  for neighbor in graph.neighbors(vertex)}
        remote.discard(home)
        total += len(remote)
    return total


def balance(partition: Partition, k: int) -> float:
    """Max part size over ideal size (1.0 = perfectly balanced)."""
    if not partition:
        return 1.0
    sizes = [0] * k
    for part in partition.values():
        sizes[part] += 1
    ideal = len(partition) / k
    return max(sizes) / ideal if ideal else 1.0


def partition_sizes(partition: Partition, k: int) -> list[int]:
    sizes = [0] * k
    for part in partition.values():
        sizes[part] += 1
    return sizes


def bfs_grow_partition(graph, k: int, seed: int = 0) -> Partition:
    """Grow k balanced regions from spread-out seeds via BFS.

    Seeds are chosen greedily far apart (k-center style on hop distance
    from previously chosen seeds); regions grow in round-robin BFS waves
    capped at ceil(n/k) vertices; stranded vertices join the smallest
    part.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        return {}
    rng = random.Random(seed)
    k = min(k, n)
    capacity = -(-n // k)  # ceil
    seeds = _spread_seeds(graph, vertices, k, rng)

    partition: Partition = {}
    queues = [deque([seed]) for seed in seeds]
    sizes = [0] * k
    for part, seed_vertex in enumerate(seeds):
        partition[seed_vertex] = part
        sizes[part] = 1

    active = True
    while active:
        active = False
        for part in range(k):
            queue = queues[part]
            while queue and sizes[part] < capacity:
                vertex = queue.popleft()
                grew = False
                for neighbor in graph.neighbors(vertex):
                    if neighbor not in partition and sizes[part] < capacity:
                        partition[neighbor] = part
                        sizes[part] += 1
                        queue.append(neighbor)
                        grew = True
                if grew:
                    active = True
                    break  # round-robin: one expansion per part per round

    for vertex in vertices:
        if vertex not in partition:
            part = min(range(k), key=lambda p: sizes[p])
            partition[vertex] = part
            sizes[part] += 1
    return partition


def _spread_seeds(graph, vertices, k, rng) -> list[Vertex]:
    from repro.algorithms.paths import bfs_distances

    first = rng.choice(vertices)
    seeds = [first]
    min_distance = {v: float("inf") for v in vertices}
    while len(seeds) < k:
        distances = bfs_distances(graph, seeds[-1])
        for v in vertices:
            min_distance[v] = min(min_distance[v],
                                  distances.get(v, float("inf")))
        candidates = [v for v in vertices if v not in seeds]
        finite = [v for v in candidates
                  if min_distance[v] != float("inf")]
        pool = finite or candidates
        seeds.append(max(pool, key=lambda v: (
            min_distance[v] if min_distance[v] != float("inf") else -1,
            repr(v))))
    return seeds


def random_partition(graph, k: int, seed: int = 0) -> Partition:
    """Uniform random balanced assignment (the baseline)."""
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    return {vertex: index % k for index, vertex in enumerate(vertices)}


def label_propagation_refine(
    graph,
    partition: Partition,
    k: int,
    max_rounds: int = 10,
    slack: float = 1.05,
    seed: int = 0,
) -> Partition:
    """Greedy refinement: move a vertex to the neighbor-majority part when
    that reduces the cut and keeps parts within ``slack`` of ideal size."""
    rng = random.Random(seed)
    partition = dict(partition)
    sizes = [0] * k
    for part in partition.values():
        sizes[part] += 1
    n = len(partition)
    cap = slack * n / k if k else n

    for _ in range(max_rounds):
        moved = 0
        order = list(partition)
        rng.shuffle(order)
        for vertex in order:
            current = partition[vertex]
            tallies: dict[int, int] = {}
            for neighbor in graph.neighbors(vertex):
                part = partition.get(neighbor)
                if part is not None:
                    tallies[part] = tallies.get(part, 0) + 1
            if not tallies:
                continue
            best = max(tallies, key=lambda p: (tallies[p], -p))
            if (best != current
                    and tallies[best] > tallies.get(current, 0)
                    and sizes[best] + 1 <= cap):
                partition[vertex] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return partition


def partition_graph(graph, k: int, seed: int = 0,
                    refine: bool = True) -> Partition:
    """The default pipeline: BFS growing plus optional refinement."""
    partition = bfs_grow_partition(graph, k, seed=seed)
    if refine and k > 1:
        partition = label_propagation_refine(graph, partition, k, seed=seed)
    return partition
