"""Centrality scores (Table 9 "Ranking & Centrality Scores").

Degree, closeness, betweenness (Brandes' algorithm, exact and sampled),
and harmonic centrality. Betweenness follows out-edges on directed graphs
and treats undirected graphs symmetrically.
"""

from __future__ import annotations

import random
from collections import deque

from repro.graphs.adjacency import Vertex


def degree_centrality(graph) -> dict[Vertex, float]:
    """Degree / (n - 1); the standard normalization."""
    n = graph.num_vertices()
    if n <= 1:
        return {v: 0.0 for v in graph.vertices()}
    return {v: graph.degree(v) / (n - 1) for v in graph.vertices()}


def closeness_centrality(graph) -> dict[Vertex, float]:
    """Wasserman-Faust closeness: reachable-set-scaled inverse mean
    distance, 0 for isolated vertices."""
    from repro.algorithms.paths import bfs_distances

    n = graph.num_vertices()
    scores: dict[Vertex, float] = {}
    for vertex in graph.vertices():
        distances = bfs_distances(graph, vertex)
        reachable = len(distances) - 1
        if reachable <= 0:
            scores[vertex] = 0.0
            continue
        total = sum(distances.values())
        scores[vertex] = (reachable / total) * (reachable / (n - 1))
    return scores


def harmonic_centrality(graph) -> dict[Vertex, float]:
    """Sum of reciprocal distances to every other vertex."""
    from repro.algorithms.paths import bfs_distances

    scores: dict[Vertex, float] = {}
    for vertex in graph.vertices():
        distances = bfs_distances(graph, vertex)
        scores[vertex] = sum(
            1.0 / d for target, d in distances.items() if target != vertex)
    return scores


def betweenness_centrality(
    graph,
    normalized: bool = True,
    sources: list[Vertex] | None = None,
) -> dict[Vertex, float]:
    """Brandes' betweenness centrality (unweighted).

    ``sources`` restricts the accumulation to a subset of source vertices
    (the standard sampling approximation); scores are then scaled by
    ``n / len(sources)`` to stay comparable to the exact values.
    """
    vertices = list(graph.vertices())
    scores = {v: 0.0 for v in vertices}
    if sources is None:
        pivots = vertices
        scale_up = 1.0
    else:
        pivots = list(sources)
        if not pivots:
            raise ValueError("sources must be non-empty")
        scale_up = len(vertices) / len(pivots)

    for source in pivots:
        _brandes_accumulate(graph, source, scores)

    n = len(vertices)
    for vertex in scores:
        scores[vertex] *= scale_up
    if not graph.directed:
        for vertex in scores:
            scores[vertex] /= 2.0
    if normalized and n > 2:
        denominator = (n - 1) * (n - 2)
        if not graph.directed:
            denominator /= 2.0
        for vertex in scores:
            scores[vertex] /= denominator
    return scores


def _brandes_accumulate(graph, source: Vertex,
                        scores: dict[Vertex, float]) -> None:
    stack: list[Vertex] = []
    predecessors: dict[Vertex, list[Vertex]] = {}
    sigma: dict[Vertex, float] = {source: 1.0}
    distance: dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        stack.append(vertex)
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in distance:
                distance[neighbor] = distance[vertex] + 1
                queue.append(neighbor)
            if distance[neighbor] == distance[vertex] + 1:
                sigma[neighbor] = sigma.get(neighbor, 0.0) + sigma[vertex]
                predecessors.setdefault(neighbor, []).append(vertex)
    delta = {vertex: 0.0 for vertex in stack}
    while stack:
        vertex = stack.pop()
        for predecessor in predecessors.get(vertex, ()):
            delta[predecessor] += (
                sigma[predecessor] / sigma[vertex]) * (1 + delta[vertex])
        if vertex != source:
            scores[vertex] += delta[vertex]


def approximate_betweenness(
    graph,
    num_samples: int,
    seed: int = 0,
    normalized: bool = True,
) -> dict[Vertex, float]:
    """Sampled Brandes: accumulate from ``num_samples`` random sources."""
    vertices = list(graph.vertices())
    if num_samples >= len(vertices):
        return betweenness_centrality(graph, normalized=normalized)
    rng = random.Random(seed)
    sources = rng.sample(vertices, num_samples)
    return betweenness_centrality(graph, normalized=normalized,
                                  sources=sources)


def top_central(scores: dict[Vertex, float], k: int) -> list[Vertex]:
    """The k most central vertices, ties broken by repr."""
    return sorted(scores, key=lambda v: (-scores[v], repr(v)))[:k]
