"""Diameter estimation (Table 9, row 13).

Exact diameter by all-pairs BFS (small graphs), the classic double-sweep
lower bound, and an iFUB-style exact-with-early-exit computation that is
usually far cheaper than all-pairs on real graphs. All operate on hop
distances over the largest connected component unless stated otherwise.
"""

from __future__ import annotations

import random

from repro.algorithms.paths import bfs_distances
from repro.graphs.adjacency import Vertex


def eccentricity(graph, vertex: Vertex) -> int:
    """Largest hop distance from ``vertex`` to any reachable vertex."""
    distances = bfs_distances(graph, vertex)
    return max(distances.values(), default=0)


def exact_diameter(graph) -> int:
    """Exact diameter of the reachable structure: max eccentricity over
    all vertices. O(V*(V+E)); use on small graphs."""
    best = 0
    for vertex in graph.vertices():
        best = max(best, eccentricity(graph, vertex))
    return best


def double_sweep_lower_bound(graph, seed: int = 0) -> int:
    """The double-sweep heuristic: BFS from a random vertex, then BFS from
    the farthest vertex found; the second eccentricity is a lower bound
    (exact on trees)."""
    vertices = list(graph.vertices())
    if not vertices:
        return 0
    rng = random.Random(seed)
    start = rng.choice(vertices)
    first = bfs_distances(graph, start)
    far = max(first, key=lambda v: first[v])
    second = bfs_distances(graph, far)
    return max(second.values(), default=0)


def ifub_diameter(graph, seed: int = 0) -> int:
    """iFUB-style exact diameter for undirected connected graphs.

    Root a BFS at a high-eccentricity vertex (found by double sweep),
    then process vertices level by level from the deepest: the diameter is
    found once the current best exceeds twice the next level's depth.
    Falls back to :func:`exact_diameter` for directed graphs.
    """
    if graph.directed:
        return exact_diameter(graph)
    vertices = list(graph.vertices())
    if not vertices:
        return 0
    rng = random.Random(seed)
    start = rng.choice(vertices)
    first = bfs_distances(graph, start)
    far = max(first, key=lambda v: first[v])
    root_distances = bfs_distances(graph, far)
    levels: dict[int, list[Vertex]] = {}
    for vertex, depth in root_distances.items():
        levels.setdefault(depth, []).append(vertex)
    best = 0
    for depth in sorted(levels, reverse=True):
        if best >= 2 * depth:
            return best
        for vertex in levels[depth]:
            best = max(best, eccentricity(graph, vertex))
    return best


def effective_diameter(graph, percentile: float = 0.9,
                       sample_size: int | None = None,
                       seed: int = 0) -> float:
    """The 90th-percentile pairwise distance, the robust "diameter" used
    for heavy-tailed real graphs. Optionally sampled sources."""
    if not 0 < percentile <= 1:
        raise ValueError("percentile must be in (0, 1]")
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    rng = random.Random(seed)
    if sample_size is not None and sample_size < len(vertices):
        sources = rng.sample(vertices, sample_size)
    else:
        sources = vertices
    distances: list[int] = []
    for source in sources:
        for target, distance in bfs_distances(graph, source).items():
            if target != source:
                distances.append(distance)
    if not distances:
        return 0.0
    distances.sort()
    index = max(0, int(percentile * len(distances)) - 1)
    return float(distances[index])


def radius(graph) -> int:
    """Minimum eccentricity over vertices (small graphs)."""
    eccentricities = [eccentricity(graph, v) for v in graph.vertices()]
    return min(eccentricities, default=0)
