"""PageRank and personalized PageRank (Table 9 "Ranking & Centrality").

Power iteration over a CSR snapshot with dangling-mass redistribution.
Weighted variants split a vertex's rank across out-edges proportionally
to edge weight.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ConvergenceError, VertexNotFound
from repro.graphs.adjacency import Graph, Vertex
from repro.graphs.csr import CSRGraph


def pagerank(
    graph: Graph | CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    weighted: bool = False,
    personalization: Mapping[Vertex, float] | None = None,
) -> dict[Vertex, float]:
    """PageRank scores summing to 1.

    Args:
        graph: a :class:`Graph` (snapshotted internally) or a prebuilt
            :class:`CSRGraph`.
        damping: probability of following an edge vs teleporting.
        tol: L1 convergence threshold.
        max_iter: iteration budget; exceeded budget raises
            :class:`~repro.errors.ConvergenceError`.
        weighted: split rank proportionally to edge weights.
        personalization: teleport distribution over vertices (normalized
            internally); uniform when omitted.
    """
    if not 0 <= damping < 1:
        raise ValueError("damping must be in [0, 1)")
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    n = csr.num_vertices()
    if n == 0:
        return {}

    teleport = _teleport_vector(csr, personalization)
    rank = np.full(n, 1.0 / n)
    out_weight = _out_strength(csr, weighted)
    dangling = out_weight == 0

    for _ in range(max_iter):
        new_rank = np.zeros(n)
        scale = np.divide(rank, out_weight, out=np.zeros(n), where=~dangling)
        for i in range(n):
            if dangling[i]:
                continue
            row = slice(csr.indptr[i], csr.indptr[i + 1])
            if weighted:
                np.add.at(new_rank, csr.indices[row],
                          scale[i] * csr.weights[row])
            else:
                np.add.at(new_rank, csr.indices[row], scale[i])
        dangling_mass = rank[dangling].sum()
        new_rank = (damping * (new_rank + dangling_mass * teleport)
                    + (1 - damping) * teleport)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tol:
            return csr.labels_to_vertices(rank)
    raise ConvergenceError(
        f"pagerank did not converge in {max_iter} iterations (delta={delta})")


def _teleport_vector(csr: CSRGraph, personalization) -> np.ndarray:
    n = csr.num_vertices()
    if personalization is None:
        return np.full(n, 1.0 / n)
    vector = np.zeros(n)
    for vertex, mass in personalization.items():
        if mass < 0:
            raise ValueError("personalization masses must be >= 0")
        vector[csr.index(vertex)] = mass
    total = vector.sum()
    if total <= 0:
        raise ValueError("personalization must have positive total mass")
    return vector / total


def _out_strength(csr: CSRGraph, weighted: bool) -> np.ndarray:
    n = csr.num_vertices()
    if not weighted:
        return np.diff(csr.indptr).astype(np.float64)
    strength = np.zeros(n)
    for i in range(n):
        strength[i] = csr.weights[csr.indptr[i]:csr.indptr[i + 1]].sum()
    return strength


def top_ranked(scores: Mapping[Vertex, float], k: int) -> list[Vertex]:
    """The k highest-scoring vertices, ties broken by repr for stability."""
    return sorted(scores, key=lambda v: (-scores[v], repr(v)))[:k]


def personalized_pagerank(
    graph: Graph | CSRGraph,
    seeds: Mapping[Vertex, float] | list[Vertex],
    damping: float = 0.85,
    **kwargs,
) -> dict[Vertex, float]:
    """PageRank with teleportation restricted to seed vertices."""
    if isinstance(seeds, Mapping):
        personalization = dict(seeds)
    else:
        if not seeds:
            raise ValueError("seeds must be non-empty")
        personalization = {vertex: 1.0 for vertex in seeds}
    if not personalization:
        raise ValueError("seeds must be non-empty")
    for vertex in personalization:
        if isinstance(graph, Graph) and vertex not in graph:
            raise VertexNotFound(vertex)
    return pagerank(graph, damping=damping,
                    personalization=personalization, **kwargs)
