"""Minimum spanning trees (Table 9, row 11).

Kruskal (union-find) and Prim (binary heap) over undirected weighted
graphs. On disconnected graphs both return a minimum spanning *forest*.
"""

from __future__ import annotations

import heapq

from repro.algorithms.components import UnionFind
from repro.graphs.adjacency import Edge, Graph


def _require_undirected(graph) -> None:
    if graph.directed:
        raise ValueError(
            "minimum spanning tree requires an undirected graph; "
            "call to_undirected() first")


def kruskal_mst(graph) -> list[Edge]:
    """MST/forest edges by Kruskal's algorithm (stable for equal weights:
    insertion order breaks ties)."""
    _require_undirected(graph)
    uf = UnionFind(graph.vertices())
    chosen: list[Edge] = []
    for edge in sorted(graph.edges(), key=lambda e: (e.weight, e.edge_id)):
        if edge.u == edge.v:
            continue
        if uf.union(edge.u, edge.v):
            chosen.append(edge)
    return chosen


def prim_mst(graph) -> list[Edge]:
    """MST/forest edges by Prim's algorithm with a lazy heap."""
    _require_undirected(graph)
    chosen: list[Edge] = []
    visited: set = set()
    for start in graph.vertices():
        if start in visited:
            continue
        visited.add(start)
        heap: list[tuple[float, int, Edge, object]] = []
        _push_incident(graph, start, visited, heap)
        while heap:
            _, _, edge, frontier_vertex = heapq.heappop(heap)
            if frontier_vertex in visited:
                continue
            visited.add(frontier_vertex)
            chosen.append(edge)
            _push_incident(graph, frontier_vertex, visited, heap)
    return chosen


def _push_incident(graph, vertex, visited, heap) -> None:
    for edge in graph.incident_edges(vertex):
        other = edge.other(vertex)
        if other not in visited:
            heapq.heappush(heap, (edge.weight, edge.edge_id, edge, other))


def mst_weight(edges: list[Edge]) -> float:
    return sum(edge.weight for edge in edges)


def maximum_spanning_tree(graph) -> list[Edge]:
    """Maximum-weight spanning tree via negated Kruskal."""
    _require_undirected(graph)
    uf = UnionFind(graph.vertices())
    chosen: list[Edge] = []
    for edge in sorted(graph.edges(), key=lambda e: (-e.weight, e.edge_id)):
        if edge.u == edge.v:
            continue
        if uf.union(edge.u, edge.v):
            chosen.append(edge)
    return chosen


def is_spanning_forest(graph, edges: list[Edge]) -> bool:
    """Check a candidate solution: acyclic and spanning each component."""
    from repro.algorithms.components import connected_components

    uf = UnionFind(graph.vertices())
    for edge in edges:
        if not uf.union(edge.u, edge.v):
            return False  # cycle
    expected_trees = len(connected_components(graph))
    return uf.component_count() == expected_trees


def tree_from_edges(graph, edges: list[Edge]) -> Graph:
    """Materialize MST edges as a graph over the same vertex set."""
    tree = Graph(directed=False, multigraph=False)
    tree.add_vertices(graph.vertices())
    for edge in edges:
        tree.add_edge(edge.u, edge.v, weight=edge.weight)
    return tree
