"""Graph aggregations (Table 9: "e.g., counting the number of triangles").

Triangle counting (exact, via degree-ordered wedge checks), clustering
coefficients, degree distributions, and assortativity -- the statistics
participants compute over whole graphs.
"""

from __future__ import annotations

from collections import Counter

from repro.graphs.adjacency import Graph, Vertex


def _undirected_neighbor_sets(graph) -> dict[Vertex, set[Vertex]]:
    """Neighbor sets ignoring direction, parallel edges and self-loops."""
    sets: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    for edge in graph.edges():
        if edge.u == edge.v:
            continue
        sets[edge.u].add(edge.v)
        sets[edge.v].add(edge.u)
    return sets


def triangle_count(graph) -> int:
    """Total number of triangles (each counted once).

    Uses the degree-ordering technique: orient each edge from the
    lower-ranked to the higher-ranked endpoint and count common forward
    neighbors, giving O(m^(3/2)) worst case.
    """
    neighbors = _undirected_neighbor_sets(graph)
    rank = {
        v: (len(neighbors[v]), i)
        for i, v in enumerate(neighbors)
    }
    forward: dict[Vertex, set[Vertex]] = {v: set() for v in neighbors}
    for v, adjacent in neighbors.items():
        for w in adjacent:
            if rank[v] < rank[w]:
                forward[v].add(w)
    triangles = 0
    for v, out in forward.items():
        for w in out:
            triangles += len(out & forward[w])
    return triangles


def triangles_per_vertex(graph) -> dict[Vertex, int]:
    """Number of triangles through each vertex."""
    neighbors = _undirected_neighbor_sets(graph)
    counts = {v: 0 for v in neighbors}
    for v, adjacent in neighbors.items():
        adjacent_list = list(adjacent)
        for i, a in enumerate(adjacent_list):
            for b in adjacent_list[i + 1:]:
                if b in neighbors[a]:
                    counts[v] += 1
    return counts


def local_clustering_coefficient(graph, vertex: Vertex) -> float:
    """Fraction of a vertex's neighbor pairs that are themselves linked."""
    neighbors = _undirected_neighbor_sets(graph)
    adjacent = neighbors[vertex]
    k = len(adjacent)
    if k < 2:
        return 0.0
    links = 0
    adjacent_list = list(adjacent)
    for i, a in enumerate(adjacent_list):
        for b in adjacent_list[i + 1:]:
            if b in neighbors[a]:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph) -> float:
    """Mean local clustering coefficient (0.0 for an empty graph)."""
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    return sum(
        local_clustering_coefficient(graph, v) for v in vertices
    ) / len(vertices)


def global_clustering(graph) -> float:
    """Transitivity: 3 * triangles / wedges."""
    neighbors = _undirected_neighbor_sets(graph)
    wedges = sum(
        len(adjacent) * (len(adjacent) - 1) // 2
        for adjacent in neighbors.values())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def degree_histogram(graph) -> dict[int, int]:
    """degree -> number of vertices with that degree."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def degree_statistics(graph) -> dict[str, float]:
    """Min/max/mean degree plus vertex and edge counts."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    if not degrees:
        return {"vertices": 0, "edges": 0, "min_degree": 0.0,
                "max_degree": 0.0, "mean_degree": 0.0}
    return {
        "vertices": float(graph.num_vertices()),
        "edges": float(graph.num_edges()),
        "min_degree": float(min(degrees)),
        "max_degree": float(max(degrees)),
        "mean_degree": sum(degrees) / len(degrees),
    }


def degree_assortativity(graph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    Returns 0.0 when undefined (no edges or zero variance).
    """
    xs: list[float] = []
    ys: list[float] = []
    for edge in graph.edges():
        du, dv = graph.degree(edge.u), graph.degree(edge.v)
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def density(graph) -> float:
    """Edges over possible edges (simple-graph semantics)."""
    n = graph.num_vertices()
    if n < 2:
        return 0.0
    possible = n * (n - 1)
    if not graph.directed:
        possible //= 2
    return graph.num_edges() / possible


def reciprocity(graph: Graph) -> float:
    """Fraction of directed edges whose reverse also exists."""
    if not graph.directed:
        return 1.0
    total = 0
    mutual = 0
    for edge in graph.edges():
        if edge.u == edge.v:
            continue
        total += 1
        if graph.has_edge(edge.v, edge.u):
            mutual += 1
    return mutual / total if total else 0.0
