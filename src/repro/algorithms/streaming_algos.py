"""Streaming and incremental computations (Section 4.3).

Participants described incremental/streaming runs of connected
components, k-core, and hill climbing, plus graph-level statistics and
aggregations over streams. This module provides:

* :class:`StreamingTriangleCounter` -- reservoir-sampled triangle count
  estimation over an edge stream (TRIEST-BASE).
* :class:`StreamingDegreeStats` -- exact running degree statistics.
* :class:`IncrementalKCore` -- k-core membership maintained under edge
  insertions.
* :func:`hill_climb` -- generic local-search maximization used by the
  streaming hill-climbing answer and by influence maximization.

(Insert-only incremental connected components live in
:mod:`repro.algorithms.components`.)
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Hashable, Iterable, TypeVar

from repro.graphs.adjacency import Vertex

State = TypeVar("State")


class StreamingTriangleCounter:
    """TRIEST-BASE: estimate the global triangle count of an edge stream
    with a fixed-size edge reservoir.

    The estimate is unbiased; accuracy improves with reservoir size. With
    a reservoir at least as large as the stream, the count is exact.
    """

    def __init__(self, reservoir_size: int, seed: int = 0):
        if reservoir_size < 1:
            raise ValueError("reservoir size must be >= 1")
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._edges: list[tuple[Vertex, Vertex]] = []
        self._adjacency: dict[Vertex, set[Vertex]] = defaultdict(set)
        self._stream_length = 0
        self._sample_triangles = 0

    def push(self, u: Vertex, v: Vertex) -> None:
        """Observe one undirected edge arrival."""
        if u == v:
            return
        self._stream_length += 1
        if len(self._edges) < self.reservoir_size:
            self._insert(u, v)
            return
        # Reservoir sampling: keep with probability M/t.
        keep_index = self._rng.randrange(self._stream_length)
        if keep_index < self.reservoir_size:
            self._remove(*self._edges[keep_index])
            self._edges[keep_index] = (u, v)
            self._insert(u, v, replace_index=keep_index)

    def _insert(self, u: Vertex, v: Vertex,
                replace_index: int | None = None) -> None:
        self._sample_triangles += len(
            self._adjacency[u] & self._adjacency[v])
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        if replace_index is None:
            self._edges.append((u, v))

    def _remove(self, u: Vertex, v: Vertex) -> None:
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._sample_triangles -= len(
            self._adjacency[u] & self._adjacency[v])

    def estimate(self) -> float:
        """Current estimate of the stream's total triangle count."""
        t = self._stream_length
        m = self.reservoir_size
        if t <= m:
            return float(self._sample_triangles)
        scale = (t / m) * ((t - 1) / (m - 1)) * ((t - 2) / (m - 2))
        return self._sample_triangles * scale

    @property
    def stream_length(self) -> int:
        return self._stream_length


class StreamingDegreeStats:
    """Exact running vertex/edge counts and degree moments of a stream."""

    def __init__(self):
        self._degree: dict[Vertex, int] = defaultdict(int)
        self._edges = 0

    def push(self, u: Vertex, v: Vertex) -> None:
        self._degree[u] += 1
        self._degree[v] += 1
        self._edges += 1

    def snapshot(self) -> dict[str, float]:
        degrees = list(self._degree.values())
        n = len(degrees)
        return {
            "vertices": float(n),
            "edges": float(self._edges),
            "mean_degree": sum(degrees) / n if n else 0.0,
            "max_degree": float(max(degrees, default=0)),
        }


class IncrementalKCore:
    """Maintain the k-core under edge insertions.

    On every insertion the affected region is locally re-peeled: only
    vertices whose core membership can change (a bounded neighborhood of
    the new edge) are revisited, which is the standard incremental k-core
    maintenance strategy.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._adjacency: dict[Vertex, set[Vertex]] = defaultdict(set)
        self._core: set[Vertex] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._recompute_from({u, v})

    def _recompute_from(self, changed: set[Vertex]) -> None:
        # Candidate region: vertices not in the core that might now join.
        frontier = set(changed)
        candidate = set()
        while frontier:
            vertex = frontier.pop()
            if vertex in candidate:
                continue
            if len(self._adjacency[vertex]) >= self.k:
                candidate.add(vertex)
                for neighbor in self._adjacency[vertex]:
                    if neighbor not in candidate:
                        frontier.add(neighbor)
        region = candidate | self._core
        # Peel the region to the k-core fixed point.
        degree = {
            v: len(self._adjacency[v] & region) for v in region}
        removal = [v for v in region if degree[v] < self.k]
        alive = set(region)
        while removal:
            vertex = removal.pop()
            if vertex not in alive:
                continue
            alive.discard(vertex)
            for neighbor in self._adjacency[vertex]:
                if neighbor in alive:
                    degree[neighbor] -= 1
                    if degree[neighbor] < self.k:
                        removal.append(neighbor)
        self._core = alive

    def core(self) -> set[Vertex]:
        return set(self._core)

    def in_core(self, vertex: Vertex) -> bool:
        return vertex in self._core


def hill_climb(
    initial: State,
    neighbors: Callable[[State], Iterable[State]],
    score: Callable[[State], float],
    max_steps: int = 1000,
) -> tuple[State, float]:
    """Generic greedy hill climbing: move to the best-scoring neighbor
    until no neighbor improves. Returns ``(state, score)``."""
    current = initial
    current_score = score(current)
    for _ in range(max_steps):
        best_neighbor = None
        best_score = current_score
        for candidate in neighbors(current):
            candidate_score = score(candidate)
            if candidate_score > best_score:
                best_neighbor = candidate
                best_score = candidate_score
        if best_neighbor is None:
            break
        current, current_score = best_neighbor, best_score
    return current, current_score


def streaming_connected_components(
    edges: Iterable[tuple[Hashable, Hashable]],
):
    """Convenience wrapper: feed a stream into
    :class:`~repro.algorithms.components.IncrementalComponents` and return
    the final structure."""
    from repro.algorithms.components import IncrementalComponents

    tracker = IncrementalComponents()
    for u, v in edges:
        tracker.add_edge(u, v)
    return tracker
