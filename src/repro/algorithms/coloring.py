"""Graph coloring (Table 9, row 12).

Greedy coloring under several vertex orderings (insertion, largest-first /
Welsh-Powell, smallest-last) and DSatur. All operate on the undirected
adjacency (direction ignored) and ignore self-loops, which are uncolorable
in the proper-coloring sense.
"""

from __future__ import annotations

from repro.graphs.adjacency import Vertex

Coloring = dict[Vertex, int]


def _neighbor_sets(graph) -> dict[Vertex, set[Vertex]]:
    sets: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    for edge in graph.edges():
        if edge.u == edge.v:
            continue
        sets[edge.u].add(edge.v)
        sets[edge.v].add(edge.u)
    return sets


def _greedy(neighbors: dict[Vertex, set[Vertex]],
            order: list[Vertex]) -> Coloring:
    coloring: Coloring = {}
    for vertex in order:
        used = {coloring[w] for w in neighbors[vertex] if w in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[vertex] = color
    return coloring


def greedy_coloring(graph, strategy: str = "largest_first") -> Coloring:
    """Greedy proper coloring.

    Strategies: ``insertion`` (graph order), ``largest_first``
    (Welsh-Powell), ``smallest_last`` (degeneracy order, optimal for
    chordal graphs and never worse than degeneracy+1 colors).
    """
    neighbors = _neighbor_sets(graph)
    vertices = list(neighbors)
    if strategy == "insertion":
        order = vertices
    elif strategy == "largest_first":
        order = sorted(vertices, key=lambda v: (-len(neighbors[v]), repr(v)))
    elif strategy == "smallest_last":
        order = _smallest_last_order(neighbors)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose insertion, "
            f"largest_first, or smallest_last")
    return _greedy(neighbors, order)


def _smallest_last_order(neighbors: dict[Vertex, set[Vertex]]) -> list[Vertex]:
    working = {v: set(adjacent) for v, adjacent in neighbors.items()}
    order: list[Vertex] = []
    remaining = set(working)
    while remaining:
        vertex = min(remaining,
                     key=lambda v: (len(working[v] & remaining), repr(v)))
        order.append(vertex)
        remaining.discard(vertex)
    order.reverse()
    return order


def dsatur_coloring(graph) -> Coloring:
    """DSatur: color the vertex with the most distinctly colored neighbors
    first. Exact on bipartite graphs."""
    neighbors = _neighbor_sets(graph)
    coloring: Coloring = {}
    saturation: dict[Vertex, set[int]] = {v: set() for v in neighbors}
    uncolored = set(neighbors)
    while uncolored:
        vertex = max(
            uncolored,
            key=lambda v: (len(saturation[v]), len(neighbors[v]), repr(v)))
        used = saturation[vertex]
        color = 0
        while color in used:
            color += 1
        coloring[vertex] = color
        uncolored.discard(vertex)
        for neighbor in neighbors[vertex]:
            saturation[neighbor].add(color)
    return coloring


def num_colors(coloring: Coloring) -> int:
    return len(set(coloring.values())) if coloring else 0


def is_proper_coloring(graph, coloring: Coloring) -> bool:
    """Every edge bichromatic and every vertex colored."""
    for vertex in graph.vertices():
        if vertex not in coloring:
            return False
    for edge in graph.edges():
        if edge.u != edge.v and coloring[edge.u] == coloring[edge.v]:
            return False
    return True


def chromatic_number_exact(graph, limit: int = 8) -> int:
    """Exact chromatic number by branch and bound (tiny graphs only).

    Tries k = 1, 2, ... up to ``limit``; raises ``ValueError`` beyond.
    """
    neighbors = _neighbor_sets(graph)
    vertices = sorted(neighbors, key=lambda v: -len(neighbors[v]))
    if not vertices:
        return 0
    if all(not adjacent for adjacent in neighbors.values()):
        return 1

    def colorable(k: int) -> bool:
        assignment: Coloring = {}

        def backtrack(index: int) -> bool:
            if index == len(vertices):
                return True
            vertex = vertices[index]
            used = {assignment[w] for w in neighbors[vertex]
                    if w in assignment}
            for color in range(k):
                if color in used:
                    continue
                assignment[vertex] = color
                if backtrack(index + 1):
                    return True
                del assignment[vertex]
                if color not in assignment.values():
                    break  # first unused color; symmetric siblings pruned
            return False

        return backtrack(0)

    for k in range(2, limit + 1):
        if colorable(k):
            return k
    raise ValueError(f"chromatic number exceeds limit {limit}")
