"""The HTTP/JSON transport over :class:`~repro.serve.service.GraphService`.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` whose handler
parses JSON bodies, routes by method + path, and maps the named
service errors to their HTTP statuses. All policy (admission, caching,
validation) lives in the service; this module is deliberately a thin
adapter so the same behaviour is testable without a socket.

Endpoints::

    GET    /healthz                           liveness + queue depths
    GET    /metrics                           obs counters/gauges/histograms
    GET    /metrics?format=prom               Prometheus text exposition
    GET    /graphs                            hosted graphs
    POST   /graphs                            create (scenario or payload)
    GET    /graphs/{id}                       stats for one graph
    DELETE /graphs/{id}                       drop one graph
    POST   /graphs/{id}/query                 {"query": "MATCH ..."}
    POST   /graphs/{id}/mutate                {"operations": [...]}
    POST   /graphs/{id}/algorithms/{name}     {"seed": 0,
                                               "distributed": false}
    GET    /debug/traces                      retained trace digests
    GET    /debug/traces/{trace_id}           one trace's span tree
    GET    /debug/slowlog                     fingerprinted slow queries
    GET    /debug/slo                         burn-rate SLO evaluation
    GET    /debug/breakers                    circuit-breaker states

Every request runs under a trace id — minted at the edge, or adopted
from the ``X-Repro-Trace`` request header — and every response echoes
it back in the same header, so a caller can immediately fetch its own
trace from ``/debug/traces/{id}``. An ``X-Repro-Deadline-Ms`` request
header binds an execution budget the same way (see
:mod:`repro.obs.deadline`): overrunning it maps to a 504, and sheds
(breaker open, draining) carry a ``Retry-After`` response header.

Run one with :func:`start_server` (ephemeral port by default) or from
the CLI: ``python -m repro.serve --port 8080 --scenario product``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from repro.obs import render_prometheus
from repro.obs.deadline import (
    DEADLINE_HEADER,
    deadline_scope,
    parse_deadline_ms,
)
from repro.obs.retention import TraceStore
from repro.obs.trace_context import (
    TRACE_HEADER,
    accept_trace_id,
    trace_scope,
)
from repro.serve.errors import BadRequest, error_status
from repro.serve.service import GraphService

#: Above this many staged root spans in the global tracer, the server
#: resets it — a resident process must not grow without bound just
#: because observability is on. The retention TraceStore holds its own
#: references, so retained traces and all metrics survive the reset.
SPAN_RETENTION = 10_000

_GRAPH = re.compile(r"^/graphs/(?P<gid>[^/]+)$")
_QUERY = re.compile(r"^/graphs/(?P<gid>[^/]+)/query$")
_MUTATE = re.compile(r"^/graphs/(?P<gid>[^/]+)/mutate$")
_ALGO = re.compile(
    r"^/graphs/(?P<gid>[^/]+)/algorithms/(?P<name>[^/]+)$")
_TRACE = re.compile(r"^/debug/traces/(?P<tid>[^/]+)$")


class ServeHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the service, JSON in / JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro.serve/1"

    @property
    def service(self) -> GraphService:
        return self.server.service  # type: ignore[attr-defined]

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a traffic run would drown the terminal.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    # -- plumbing --------------------------------------------------------

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _send(self, status: int, payload: dict[str, Any] | str,
              trace_id: str | None = None, *,
              extra_headers: dict[str, str] | None = None,
              drip: tuple[int, float] | None = None) -> None:
        """JSON for dict payloads, text/plain for str (Prometheus).

        ``drip`` (chaos only) writes the body in N chunks with a gap
        between them, simulating a slow/tarpitted response the client
        must survive.
        """
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if drip is not None and len(body) > 1:
            chunks, gap_ms = drip
            size = max(1, len(body) // max(1, chunks))
            for start in range(0, len(body), size):
                self.wfile.write(body[start:start + size])
                self.wfile.flush()
                # Chaos drip-feed: stalling this thread is the point.
                time.sleep(gap_ms / 1000.0)  # repro: ignore[RACE004]
            return
        self.wfile.write(body)

    def _chaos_directive(self):
        """The parsed ``X-Repro-Chaos`` directive, or ``None``.

        Honored only when the service was armed with a chaos injector
        — an unarmed production service ignores the header entirely.
        """
        if self.service.chaos is None:
            return None
        from repro.serve.chaos import CHAOS_HEADER, ChaosDirective

        raw = self.headers.get(CHAOS_HEADER)
        if raw is None or raw == "":
            return None
        try:
            return ChaosDirective.parse(raw)
        except ValueError as exc:
            raise BadRequest(str(exc)) from None

    def _dispatch(self, method: str) -> None:
        path, _, query_string = self.path.partition("?")
        params = parse_qs(query_string)
        trace_id = None
        extra_headers: dict[str, str] = {}
        directive = None
        try:
            trace_id = accept_trace_id(self.headers.get(TRACE_HEADER))
            try:
                budget_ms = parse_deadline_ms(
                    self.headers.get(DEADLINE_HEADER))
            except ValueError as exc:
                raise BadRequest(str(exc)) from None
            directive = self._chaos_directive()
            budget_ctx = (deadline_scope(budget_ms)
                          if budget_ms is not None else nullcontext())
            if directive is not None:
                from repro.serve.chaos import chaos_scope

                chaos_ctx: Any = chaos_scope(directive)
            else:
                chaos_ctx = nullcontext()
            with trace_scope(trace_id), budget_ctx, chaos_ctx:
                status, payload = self._route(method, path, params)
        except Exception as exc:  # noqa: BLE001 - the status mapping
            status = error_status(exc)
            payload = _error_payload(exc, status)
            retry_after = getattr(exc, "retry_after_s", None)
            if retry_after is not None:
                extra_headers["Retry-After"] = (
                    f"{max(0.0, float(retry_after)):.3f}")
        drip = directive.drip if directive is not None else None
        try:
            self._send(status, payload, trace_id,
                       extra_headers=extra_headers, drip=drip)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; nothing to salvage
        TraceStore.maintain(SPAN_RETENTION)

    # -- routing ---------------------------------------------------------

    def _route(
        self, method: str, path: str,
        params: dict[str, list[str]],
    ) -> tuple[int, dict[str, Any] | str]:
        service = self.service
        if method == "GET" and path == "/healthz":
            return 200, service.health()
        if method == "GET" and path == "/metrics":
            fmt = (params.get("format") or ["json"])[0]
            if fmt == "prom":
                return 200, render_prometheus()
            if fmt != "json":
                raise BadRequest(
                    f"unknown metrics format {fmt!r}; known: "
                    f"['json', 'prom']")
            return 200, service.metrics()
        if method == "GET" and path == "/debug/traces":
            limit = int((params.get("limit") or ["50"])[0])
            return 200, service.debug_traces(limit)
        match = _TRACE.match(path)
        if match and method == "GET":
            return 200, service.debug_trace(match["tid"])
        if method == "GET" and path == "/debug/slowlog":
            limit = int((params.get("limit") or ["20"])[0])
            return 200, service.debug_slowlog(limit)
        if method == "GET" and path == "/debug/slo":
            return 200, service.debug_slo()
        if method == "GET" and path == "/debug/breakers":
            return 200, service.debug_breakers()
        if method == "GET" and path == "/graphs":
            return 200, service.list_graphs()
        if method == "POST" and path == "/graphs":
            body = self._read_body()
            created = service.create_graph(
                graph_id=body.get("graph_id"),
                scenario=body.get("scenario"),
                seed=int(body.get("seed", 0)),
                vertices=body.get("vertices"),
                edges=body.get("edges"),
                directed=bool(body.get("directed", True)))
            return 201, created
        match = _GRAPH.match(path)
        if match:
            if method == "GET":
                return 200, service.graph_stats(match["gid"])
            if method == "DELETE":
                return 200, service.delete_graph(match["gid"])
        match = _QUERY.match(path)
        if match and method == "POST":
            body = self._read_body()
            if "query" not in body:
                raise BadRequest("query payload needs a 'query' field")
            result = service.query(
                match["gid"], body["query"],
                use_cache=bool(body.get("use_cache", True)))
            return 200, result
        match = _MUTATE.match(path)
        if match and method == "POST":
            body = self._read_body()
            result = service.mutate(match["gid"],
                                    body.get("operations"))
            return 200, result
        match = _ALGO.match(path)
        if match and method == "POST":
            body = self._read_body()
            result = service.algorithm(
                match["gid"], match["name"],
                seed=int(body.get("seed", 0)),
                distributed=bool(body.get("distributed", False)),
                shards=int(body.get("shards", 2)))
            return 200, result
        return 404, {"error": "NotFound", "status": 404,
                     "message": f"no route for {method} {path}"}

    # -- verbs -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")


def _error_payload(exc: BaseException,
                   status: int | None = None) -> dict[str, Any]:
    if status is None:
        status = error_status(exc)
    return {"error": type(exc).__name__, "message": str(exc),
            "status": status}


class ServerHandle:
    """A running server: address, service, and an orderly shutdown."""

    def __init__(self, httpd: ThreadingHTTPServer,
                 thread: threading.Thread, service: GraphService):
        self.httpd = httpd
        self.thread = thread
        self.service = service
        self.host, self.port = httpd.server_address[:2]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self, drain_s: float = 5.0) -> None:
        """Graceful drain, then stop.

        The service first stops *accepting*: new requests are shed
        with 503 + ``Retry-After`` (no admission slot consumed) while
        queued and in-flight handlers run to completion, polled up to
        the ``drain_s`` budget. Only then does the listener stop and
        the serve thread join — in-flight work is never stranded the
        way the old hard-join could.
        """
        self.service.begin_drain(retry_after_s=max(0.1, drain_s))
        drain_until = time.monotonic() + max(0.0, drain_s)
        while not self.service.drained():
            if time.monotonic() >= drain_until:
                break
            time.sleep(0.01)
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=5.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def start_server(service: GraphService | None = None, *,
                 host: str = "127.0.0.1",
                 port: int = 0) -> ServerHandle:
    """Boot a threaded server on ``host:port`` (0 = ephemeral) and
    serve in a daemon thread; returns the handle immediately."""
    service = service or GraphService()
    httpd = ThreadingHTTPServer((host, port), ServeHandler)
    httpd.daemon_threads = True
    httpd.service = service  # type: ignore[attr-defined]
    thread = threading.Thread(target=httpd.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return ServerHandle(httpd, thread, service)


def main(argv: list[str] | None = None) -> int:
    """CLI: boot a server and block until interrupted."""
    import argparse

    from repro import obs

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Boot the resident graph service.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 picks an ephemeral port")
    parser.add_argument("--scenario", default=None,
                        help="pre-host one graph (e.g. 'product') "
                             "as graph id 'g1'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--queue-limit", type=int, default=32)
    parser.add_argument("--cache-capacity", type=int, default=256)
    parser.add_argument("--slo", action="append", default=None,
                        metavar="SPEC",
                        help="SLO spec (repeatable), e.g. "
                             "'latency:query<250ms@0.99'; replaces "
                             "the built-in defaults")
    parser.add_argument("--sample-every", type=int, default=1,
                        help="head-sample 1 in N ordinary traces "
                             "(errors and the slow tail always kept)")
    parser.add_argument("--no-obs", action="store_true",
                        help="serve without span/metric collection")
    parser.add_argument("--breaker", default=None, metavar="SPEC",
                        help="circuit-breaker config literal, e.g. "
                             "'window=20,threshold=0.5,min_requests=5,"
                             "probes=2,cooldown_s=5'")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="default execution budget minted per "
                             "request (overridable per request via "
                             "the X-Repro-Deadline-Ms header)")
    args = parser.parse_args(argv)

    if not args.no_obs:
        obs.enable()
    try:
        retention = obs.RetentionPolicy(sample_every=args.sample_every)
        service = GraphService(cache_capacity=args.cache_capacity,
                               max_in_flight=args.max_in_flight,
                               queue_limit=args.queue_limit,
                               slos=args.slo,
                               retention=retention,
                               breaker=args.breaker,
                               default_deadline_ms=args.deadline_ms)
    except ValueError as exc:
        parser.error(str(exc))
    if args.scenario:
        info = service.create_graph(scenario=args.scenario,
                                    seed=args.seed)
        print(f"hosted graph {info['id']}: {info['vertices']} "
              f"vertices, {info['edges']} edges "
              f"(scenario={args.scenario!r}, seed={args.seed})")
    handle = start_server(service, host=args.host, port=args.port)
    print(f"repro.serve listening on {handle.base_url}")
    try:
        handle.thread.join()
    except KeyboardInterrupt:
        print("shutting down")
        handle.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
