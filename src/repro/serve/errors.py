"""Named errors of the service layer, each with an HTTP status.

Every failure the server can shed or reject maps to one named class so
tests, the traffic harness, and operators see *which* policy fired —
"load-shed with named errors", per the ROADMAP — instead of a generic
500. The HTTP layer maps ``status`` verbatim; callers embedding
:class:`~repro.serve.service.GraphService` directly catch the classes.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.obs.deadline import DeadlineExceeded


class ServeError(ReproError):
    """Base class for service-layer errors."""

    #: HTTP status the transport maps this error to.
    status = 500


class ServeOverloaded(ServeError):
    """Admitted to the queue, but no handler slot freed up within the
    queue-wait budget — the client should back off and retry (429)."""

    status = 429

    def __init__(self, max_in_flight: int, waited_ms: float):
        super().__init__(
            f"server overloaded: no handler slot freed within "
            f"{waited_ms:.0f}ms (max_in_flight={max_in_flight}); "
            f"back off and retry")
        self.max_in_flight = max_in_flight
        self.waited_ms = waited_ms


class ServeQueueFull(ServeError):
    """The bounded request queue is at capacity — the request was shed
    immediately without waiting (503)."""

    status = 503

    def __init__(self, queue_limit: int):
        super().__init__(
            f"request queue full (queue_limit={queue_limit}); "
            f"request shed without queueing")
        self.queue_limit = queue_limit


class GraphNotFound(ServeError):
    """The request named a graph id the service is not hosting (404)."""

    status = 404

    def __init__(self, graph_id: str, known: list[str]):
        super().__init__(
            f"no graph {graph_id!r} is hosted; known: {sorted(known)}")
        self.graph_id = graph_id


class GraphExists(ServeError):
    """A create named a graph id that is already hosted (409)."""

    status = 409

    def __init__(self, graph_id: str):
        super().__init__(
            f"graph {graph_id!r} already exists; DELETE it first or "
            f"pick another id")
        self.graph_id = graph_id


class TraceNotFound(ServeError):
    """The request named a trace id the retention store is not holding
    (404) — it was never seen, sampled out, or already evicted."""

    status = 404

    def __init__(self, trace_id: str):
        super().__init__(
            f"no retained trace {trace_id!r}; it was never seen, "
            f"head-sampled out, or already evicted (see "
            f"/debug/traces for what is retained)")
        self.trace_id = trace_id


class BadRequest(ServeError):
    """The request payload is malformed or names unknown operations —
    rejected before any work runs (400)."""

    status = 400


class BreakerOpen(ServeError):
    """The operation's circuit breaker is open and no degraded answer
    (stale cache entry) was available — shed with ``Retry-After``
    (503) so clients back off until the half-open probe window."""

    status = 503

    def __init__(self, op: str, retry_after_s: float):
        super().__init__(
            f"circuit breaker for {op!r} is open; retry after "
            f"{retry_after_s:.1f}s")
        self.op = op
        #: Seconds until the breaker next admits a half-open probe —
        #: sent as the ``Retry-After`` header.
        self.retry_after_s = retry_after_s


class ServiceDraining(ServeError):
    """The service is draining for shutdown: in-flight requests finish,
    new ones are shed with ``Retry-After`` (503) before consuming an
    admission slot."""

    status = 503

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"service is draining for shutdown; retry after "
            f"{retry_after_s:.1f}s")
        self.retry_after_s = retry_after_s


def error_status(exc: BaseException) -> int:
    """The HTTP status one failure maps to — the single mapping the
    transport, the SLO accounting, and the traffic harness share, so a
    QueryError burns no error budget at the service layer yet shows up
    as the same 400 on the wire."""
    if isinstance(exc, ServeError):
        return exc.status
    if isinstance(exc, DeadlineExceeded):
        # An overrun execution budget is a gateway timeout, not a
        # client error — it burns error budget and trips breakers.
        return 504
    if isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        return 400
    return 500
