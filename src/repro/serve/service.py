"""The resident graph service: hosted databases behind one facade.

:class:`GraphService` is the transport-agnostic core of
:mod:`repro.serve` — the HTTP layer (:mod:`repro.serve.server`) is a
thin JSON adapter over it, and benchmarks / tests drive it directly.
It composes the pieces the rest of the stack already built:

* graph lifecycle — each hosted graph is a
  :class:`~repro.graphdb.GraphDatabase` (indexes, transactions,
  triggers) built from a scenario generator or an explicit
  vertex/edge payload;
* declarative queries through the existing executor, validated by the
  :mod:`repro.analysis` QRY rules as a 400-level pre-flight and served
  through the version-keyed :class:`~repro.serve.cache.QueryCache`
  (a mutation bumps :attr:`~repro.graphdb.GraphDatabase.data_version`,
  so stale reads are structurally impossible);
* algorithms — the registered survey workloads
  (:mod:`repro.workloads.runner`) exposed by short alias;
* admission control — every request passes the
  :class:`~repro.serve.admission.AdmissionController` and runs inside
  a ``serve.request`` span carrying queue-wait vs. handler-time
  attribution.

Per-graph operations serialize on the graph's lock (readers iterate
live dicts, so an unlocked concurrent mutation could corrupt them);
concurrency across graphs and across the admission queue is real.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.graphdb import GraphDatabase
from repro.obs import get_registry, is_enabled, span
from repro.obs.deadline import (
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.obs.export import _jsonable, span_record
from repro.obs.retention import RetentionPolicy, TraceStore
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.slowlog import SlowLog
from repro.obs.spans import Span
from repro.obs.trace_context import current_trace_id, trace_scope
from repro.serve.admission import AdmissionController
from repro.serve.cache import QueryCache
from repro.serve.errors import (
    BadRequest,
    BreakerOpen,
    GraphExists,
    GraphNotFound,
    ServiceDraining,
    TraceNotFound,
    error_status,
)
from repro.serve.resilience import BreakerBoard, BreakerConfig
from repro.workloads import ALL_RUNNERS, run_computation

#: Short endpoint aliases for the Table 9/10/11 runner names (exact
#: registered names are accepted too).
ALGORITHM_ALIASES: dict[str, str] = {
    "pagerank": "Ranking & Centrality Scores",
    "components": "Finding Connected Components",
    "bfs": "Breadth-first-search or variant",
    "triangles": "Aggregations",
    "shortest_paths": "Finding Short / Shortest Paths",
    "reachability": "Reachability Queries",
    "partitioning": "Graph Partitioning",
    "communities": "Community Detection",
}


#: SLOs a service monitors when none are configured: most queries
#: fast, nearly all requests succeed. Literal grammar is validated by
#: the CFG006 analysis rule.
DEFAULT_SLOS: tuple[str, ...] = (
    "latency:query<250ms@0.95",
    "errors:*@0.99",
)


def resolve_algorithm(name: str) -> str:
    """An endpoint algorithm name -> registered runner name (400 on
    unknown)."""
    if name in ALGORITHM_ALIASES:
        return ALGORITHM_ALIASES[name]
    if name in ALL_RUNNERS:
        return name
    raise BadRequest(
        f"unknown algorithm {name!r}; aliases: "
        f"{sorted(ALGORITHM_ALIASES)} (full runner names accepted)")


def _build_graph(scenario: str, seed: int):
    if scenario == "product":
        from repro.workloads import generate_product_graph

        return generate_product_graph(seed=seed)
    from repro.workloads import SCENARIOS, build_scenario

    if scenario not in SCENARIOS:
        raise BadRequest(
            f"unknown scenario {scenario!r}; known: "
            f"{sorted(SCENARIOS) + ['product']}")
    return build_scenario(scenario, seed=seed)


@dataclass
class GraphHandle:
    """One hosted graph: its database plus bookkeeping."""

    graph_id: str
    db: GraphDatabase
    origin: dict[str, Any]
    lock: threading.RLock = field(default_factory=threading.RLock)

    def info(self) -> dict[str, Any]:
        return {"id": self.graph_id, "origin": dict(self.origin),
                **self.db.stats()}


class GraphService:
    """Hosted graphs + query cache + admission control, one facade.

    ``handler_delay_ms`` injects a sleep into every admitted handler —
    a load hook for backpressure tests and shedding demos, never set
    in normal serving.
    """

    def __init__(self, *, cache_capacity: int = 256,
                 max_in_flight: int = 8, queue_limit: int = 32,
                 queue_timeout_s: float = 5.0,
                 handler_delay_ms: float = 0.0,
                 slos: list[SLOSpec | str] | None = None,
                 retention: RetentionPolicy | None = None,
                 breaker: BreakerBoard | BreakerConfig | str |
                 None = None,
                 default_deadline_ms: float | None = None,
                 chaos: Any = None):
        self._graphs: dict[str, GraphHandle] = {}
        self._lock = threading.RLock()
        self._next_id = 1
        self.cache = QueryCache(capacity=cache_capacity)
        self.admission = AdmissionController(
            max_in_flight=max_in_flight, queue_limit=queue_limit,
            queue_timeout_s=queue_timeout_s)
        self.handler_delay_ms = handler_delay_ms
        self.traces = TraceStore(retention)
        self.slowlog = SlowLog()
        self.slo = SLOMonitor(
            list(DEFAULT_SLOS) if slos is None else slos)
        self.breakers = (breaker if isinstance(breaker, BreakerBoard)
                         else BreakerBoard(breaker))
        #: Execution budget minted per request when the transport did
        #: not adopt one from ``X-Repro-Deadline-Ms``. ``None`` (the
        #: default) leaves execution unbounded, matching pre-deadline
        #: behavior. A ``deadline_ms`` in the breaker config literal
        #: applies when the explicit kwarg is absent.
        if default_deadline_ms is None:
            default_deadline_ms = self.breakers.config.deadline_ms
        self.default_deadline_ms = default_deadline_ms
        #: Fault-injection hook (see :mod:`repro.serve.chaos`): an
        #: object with ``apply(op, sp)`` / ``kill_plan()``, consulted
        #: inside the breaker guard so injected faults feed breaker
        #: windows exactly like organic ones. ``None`` in production.
        self.chaos = chaos
        self._draining = False
        self._drain_retry_after_s = 1.0
        self._started = time.monotonic()

    # -- request plumbing ------------------------------------------------

    @contextmanager
    def _request(self, op: str,
                 graph_id: str | None = None) -> Iterator[Any]:
        """Admission + the ``serve.request`` span around one request.

        The span attributes split total latency into ``queue_wait_ms``
        (admission) and ``handler_ms`` (the work), and the same split
        feeds the ``serve.queue_wait_ms`` / ``serve.handler_ms`` /
        ``serve.request_ms`` histograms.

        The whole request runs inside a :func:`trace_scope` — adopting
        the transport's id when the HTTP layer bound one, minting a
        fresh id otherwise — so every span the handler opens carries
        the request's ``trace_id``. On exit the finished root span is
        offered to the :class:`TraceStore` and the outcome recorded
        against the service's SLOs.
        """
        if self._draining:
            # Shed before consuming an admission slot; still recorded
            # against the SLOs so the drain window is visible.
            self.slo.record(op, 0.0, error=True)
            raise ServiceDraining(self._drain_retry_after_s)
        if is_enabled():
            registry = get_registry()
            registry.inc("serve.requests")
            registry.inc(f"serve.requests.{op}")
        start = time.perf_counter()
        status = 200
        # Mint the service's default execution budget unless the
        # transport already adopted one from the deadline header.
        if self.default_deadline_ms is not None \
                and current_deadline() is None:
            budget_ctx: Any = deadline_scope(self.default_deadline_ms)
        else:
            budget_ctx = nullcontext()
        with trace_scope(), budget_ctx:
            sp = span("serve.request", op=op, graph=graph_id)
            try:
                with sp:
                    with self.admission.admit() as wait_ms:
                        sp.set("queue_wait_ms", round(wait_ms, 3))
                        # A request that spent its whole budget in the
                        # queue 504s here, before any handler work.
                        check_deadline("serve.admission")
                        if self.handler_delay_ms:
                            time.sleep(self.handler_delay_ms / 1000.0)
                        handler_start = time.perf_counter()
                        try:
                            yield sp
                        finally:
                            handler_ms = (time.perf_counter()
                                          - handler_start) * 1000.0
                            sp.set("handler_ms", round(handler_ms, 3))
                            if is_enabled():
                                registry = get_registry()
                                registry.observe("serve.handler_ms",
                                                 handler_ms)
                                registry.observe("serve.request_ms",
                                                 wait_ms + handler_ms)
            except BaseException as exc:
                status = error_status(exc)
                raise
            finally:
                total_ms = (time.perf_counter() - start) * 1000.0
                self._finish_request(op, sp, total_ms, status=status)

    def _finish_request(self, op: str, sp: Any, total_ms: float, *,
                        status: int) -> None:
        """Post-request accounting: SLO outcome + trace retention.

        Client mistakes (4xx below 429) do not burn the error budget —
        only shed load (429/503) and server faults count — but *any*
        failed request marks its trace as an error for the retention
        tail, so the span tree behind a 400 stays debuggable.
        """
        self.slo.record(op, total_ms, error=status >= 429)
        if isinstance(sp, Span) and sp.closed and sp.parent is None:
            self.traces.ingest(sp, error=status != 200)

    def _handle(self, graph_id: str) -> GraphHandle:
        with self._lock:
            handle = self._graphs.get(graph_id)
        if handle is None:
            raise GraphNotFound(graph_id, list(self._graphs))
        return handle

    # -- resilience plumbing ---------------------------------------------

    @contextmanager
    def _breaker_guard(self, op: str, sp: Any) -> Iterator[None]:
        """Pass one request through ``op``'s circuit breaker.

        Acquire (which may shed with
        :class:`~repro.serve.errors.BreakerOpen`), run the body, then
        record the outcome — only server faults (mapped status >=
        500) feed the error window, so client 4xx and the breaker's
        own sheds never trip it. The chaos hook runs *inside* the
        guard: injected faults are indistinguishable from organic
        ones.
        """
        breaker = self.breakers.for_op(op)
        kind = breaker.acquire()
        if kind == "probe":
            sp.set("breaker", "probe")
        try:
            if self.chaos is not None:
                self.chaos.apply(op, sp)
            yield
        except BaseException as exc:
            breaker.record(kind, error=error_status(exc) >= 500)
            raise
        else:
            breaker.record(kind, error=False)

    def _stale_response(self, graph_id: str, text: str, sp: Any,
                        q_ms: Callable[[], float],
                        trace_id: str | None) -> dict[str, Any] | None:
        """A degraded answer from the newest superseded cache entry,
        explicitly marked, or ``None`` when history has nothing."""
        found = self.cache.get_stale(graph_id, text)
        if found is None:
            return None
        payload, _version, age_s = found
        sp.set("cache", "stale")
        sp.set("stale_age_s", round(age_s, 3))
        self.slowlog.record(text, q_ms(), cached=True,
                            trace_id=trace_id)
        if is_enabled():
            get_registry().inc("serve.degraded.stale_serves")
        return {**payload, "cache": "stale", "stale": True,
                "stale_age_s": round(age_s, 3)}

    def begin_drain(self, *, retry_after_s: float = 1.0) -> None:
        """Stop accepting new requests (503 + ``Retry-After``);
        in-flight handlers run to completion. Idempotent — the
        graceful half of :meth:`ServerHandle.shutdown`."""
        with self._lock:
            self._drain_retry_after_s = retry_after_s
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def drained(self) -> bool:
        """Whether no request is queued or executing."""
        return (self.admission.in_flight == 0
                and self.admission.waiting == 0)

    # -- graph lifecycle -------------------------------------------------

    def create_graph(self, *, graph_id: str | None = None,
                     scenario: str | None = None, seed: int = 0,
                     vertices: list | None = None,
                     edges: list | None = None,
                     directed: bool = True) -> dict[str, Any]:
        """Host a new graph, from a scenario generator or an explicit
        vertex/edge payload."""
        with self._request("create", graph_id):
            if scenario is not None and (vertices or edges):
                raise BadRequest(
                    "pass either scenario= or vertices=/edges=, "
                    "not both")
            if scenario is not None:
                db = GraphDatabase.from_graph(
                    _build_graph(scenario, seed))
                origin = {"scenario": scenario, "seed": seed}
            else:
                db = GraphDatabase(directed=directed)
                with db.transaction():
                    self._load_payload(db, vertices or [], edges or [])
                origin = {"scenario": None, "seed": seed}
            with self._lock:
                if graph_id is None:
                    graph_id = f"g{self._next_id}"
                    self._next_id += 1
                if graph_id in self._graphs:
                    raise GraphExists(graph_id)
                handle = GraphHandle(graph_id=graph_id, db=db,
                                     origin=origin)
                self._graphs[graph_id] = handle
            if is_enabled():
                get_registry().set_gauge("serve.graphs",
                                         len(self._graphs))
            return handle.info()

    @staticmethod
    def _load_payload(db: GraphDatabase, vertices: list,
                      edges: list) -> None:
        for raw in vertices:
            if not isinstance(raw, dict) or "id" not in raw:
                raise BadRequest(
                    f"vertex payload needs an 'id' field: {raw!r}")
            db.add_vertex(raw["id"], label=raw.get("label"),
                          **raw.get("properties", {}))
        for raw in edges:
            if not isinstance(raw, dict) or "u" not in raw \
                    or "v" not in raw:
                raise BadRequest(
                    f"edge payload needs 'u' and 'v' fields: {raw!r}")
            db.add_edge(raw["u"], raw["v"],
                        weight=raw.get("weight", 1.0),
                        label=raw.get("label"),
                        **raw.get("properties", {}))

    def delete_graph(self, graph_id: str) -> dict[str, Any]:
        with self._request("delete", graph_id):
            with self._lock:
                if graph_id not in self._graphs:
                    raise GraphNotFound(graph_id, list(self._graphs))
                del self._graphs[graph_id]
            dropped = self.cache.drop_graph(graph_id)
            if is_enabled():
                get_registry().set_gauge("serve.graphs",
                                         len(self._graphs))
            return {"deleted": graph_id, "cache_dropped": dropped}

    def list_graphs(self) -> dict[str, Any]:
        with self._lock:
            infos = [h.info() for h in self._graphs.values()]
        return {"graphs": infos}

    def graph_stats(self, graph_id: str) -> dict[str, Any]:
        return self._handle(graph_id).info()

    # -- queries ---------------------------------------------------------

    def query(self, graph_id: str, text: str, *,
              use_cache: bool = True) -> dict[str, Any]:
        """Run one GQL-lite query, cache-first.

        The response's ``cache`` field says which path served it; the
        rest of the payload is byte-identical either way (the cache
        stores the serialized payload). Degraded modes: with the query
        breaker open, the newest superseded cache entry is served
        (marked ``"stale": true`` with its age) instead of shedding;
        with any *other* breaker open, a cache miss also prefers a
        stale entry over recomputation, so a degraded service keeps
        answering from history.
        """
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("query text must be a non-empty string")
        handle = self._handle(graph_id)
        with self._request("query", graph_id) as sp:
            q_start = time.perf_counter()
            trace_id = current_trace_id()

            def q_ms() -> float:
                return (time.perf_counter() - q_start) * 1000.0

            breaker = self.breakers.for_op("query")
            try:
                kind = breaker.acquire()
            except BreakerOpen:
                stale = (self._stale_response(graph_id, text, sp,
                                              q_ms, trace_id)
                         if use_cache else None)
                if stale is not None:
                    return stale
                if is_enabled():
                    get_registry().inc("serve.degraded.shed")
                raise
            if kind == "probe":
                sp.set("breaker", "probe")
            try:
                if self.chaos is not None:
                    self.chaos.apply("query", sp)
                with handle.lock:
                    version = handle.db.data_version
                    if use_cache:
                        cached = self.cache.get(graph_id, version,
                                                text)
                        if cached is not None:
                            sp.set("cache", "hit")
                            self.slowlog.record(text, q_ms(),
                                                cached=True,
                                                trace_id=trace_id)
                            breaker.record(kind, error=False)
                            return {**cached, "cache": "hit"}
                        if kind == "closed" \
                                and self.breakers.degraded():
                            # Service-wide degradation: avoid fresh
                            # recomputation when history can answer.
                            # Probes never shortcut — they must prove
                            # the real path.
                            stale = self._stale_response(
                                graph_id, text, sp, q_ms, trace_id)
                            if stale is not None:
                                breaker.record(kind, error=False)
                                return stale
                    # QRY pre-flight (strict): parse errors, unbound
                    # variables — and schema findings when the database
                    # has one — surface as QueryError -> 400 before the
                    # matcher runs.
                    result = handle.db.query(text, strict=True)
                    payload = {
                        "columns": list(result.columns),
                        "rows": _jsonable(result.rows),
                        "row_count": len(result.rows),
                        "version": version,
                    }
                    if use_cache:
                        self.cache.put(graph_id, version, text,
                                       payload)
            except Exception as exc:
                breaker.record(kind,
                               error=error_status(exc) >= 500)
                self.slowlog.record(text, q_ms(),
                                    error=type(exc).__name__,
                                    trace_id=trace_id)
                raise
            breaker.record(kind, error=False)
            sp.set("cache", "miss")
            sp.set("rows", payload["row_count"])
            self.slowlog.record(text, q_ms(), trace_id=trace_id)
            if is_enabled():
                get_registry().inc("serve.queries")
            return {**payload, "cache": "miss"}

    # -- mutations -------------------------------------------------------

    #: op name -> required payload fields.
    MUTATION_OPS = {
        "add_vertex": ("vertex",),
        "add_edge": ("u", "v"),
        "set_property": ("vertex", "key", "value"),
        "remove_vertex": ("vertex",),
        "remove_edge": ("edge_id",),
    }

    def mutate(self, graph_id: str,
               operations: list[dict[str, Any]]) -> dict[str, Any]:
        """Apply a batch of mutations in one transaction.

        The whole batch is validated before any of it runs; it commits
        (and bumps the data version, invalidating cached queries) or
        rolls back as a unit.
        """
        if not isinstance(operations, list) or not operations:
            raise BadRequest(
                "mutate needs a non-empty 'operations' list")
        for raw in operations:
            if not isinstance(raw, dict):
                raise BadRequest(f"operation is not an object: {raw!r}")
            op = raw.get("op")
            required = self.MUTATION_OPS.get(op)
            if required is None:
                raise BadRequest(
                    f"unknown mutation op {op!r}; known: "
                    f"{sorted(self.MUTATION_OPS)}")
            missing = [f for f in required if f not in raw]
            if missing:
                raise BadRequest(
                    f"mutation {op!r} is missing field(s) {missing}")
        handle = self._handle(graph_id)
        with self._request("mutate", graph_id) as sp:
            with self._breaker_guard("mutate", sp):
                with handle.lock:
                    db = handle.db
                    with db.transaction():
                        for raw in operations:
                            self._apply_mutation(db, raw)
                    version = db.data_version
            sp.set("operations", len(operations))
            if is_enabled():
                get_registry().inc("serve.mutations",
                                   len(operations))
            return {"applied": len(operations), "version": version}

    @staticmethod
    def _apply_mutation(db: GraphDatabase, raw: dict[str, Any]) -> None:
        op = raw["op"]
        if op == "add_vertex":
            db.add_vertex(raw["vertex"], label=raw.get("label"),
                          **raw.get("properties", {}))
        elif op == "add_edge":
            db.add_edge(raw["u"], raw["v"],
                        weight=raw.get("weight", 1.0),
                        label=raw.get("label"),
                        **raw.get("properties", {}))
        elif op == "set_property":
            db.set_vertex_property(raw["vertex"], raw["key"],
                                   raw["value"])
        elif op == "remove_vertex":
            db.remove_vertex(raw["vertex"])
        elif op == "remove_edge":
            db.remove_edge(raw["edge_id"])

    # -- algorithms ------------------------------------------------------

    def algorithm(self, graph_id: str, name: str, seed: int = 0, *,
                  distributed: bool = False,
                  shards: int = 2) -> dict[str, Any]:
        """Run one registered survey workload on a hosted graph.

        ``distributed=True`` routes through the :mod:`repro.dist`
        runtime (sharded workers under a coordinator, same process);
        the ambient trace id stamps every ``dist.worker.superstep``
        span, so one served request is traceable down to per-shard
        supersteps.
        """
        runner_name = resolve_algorithm(name)
        handle = self._handle(graph_id)
        with self._request("algorithm", graph_id) as sp:
            sp.set("algorithm", runner_name)
            if distributed:
                sp.set("distributed", True)
                sp.set("shards", shards)
            with self._breaker_guard("algorithm", sp):
                # Chaos may order a mid-request worker kill (FaultPlan
                # DSL) — only meaningful on the distributed runtime,
                # where the recovery supervisor absorbs it.
                fault_plan = None
                if self.chaos is not None and distributed:
                    fault_plan = self.chaos.kill_plan()
                    if fault_plan is not None:
                        sp.set("chaos.kill", str(fault_plan))
                with handle.lock:
                    result = run_computation(
                        runner_name, handle.db.graph, seed=seed,
                        distributed=distributed, shards=shards,
                        fault_plan=fault_plan)
            if is_enabled():
                get_registry().inc("serve.algorithms")
            return {
                "name": name,
                "algorithm": runner_name,
                "seed": seed,
                "distributed": distributed,
                "summary": _jsonable(result.summary),
                "elapsed_ms": round(result.elapsed_ms, 3),
            }

    # -- debug surfaces --------------------------------------------------

    def debug_traces(self, limit: int = 50) -> dict[str, Any]:
        """Newest-first digests of the retained traces + store stats."""
        return {
            "traces": self.traces.summaries(limit),
            "stats": self.traces.stats(),
        }

    def debug_trace(self, trace_id: str) -> dict[str, Any]:
        """One retained trace as flat span records (parents before
        children — :func:`~repro.obs.export.link_span_records` shape).
        404 when retention never kept or already evicted the id."""
        root = self.traces.get(trace_id)
        if root is None:
            raise TraceNotFound(trace_id)
        return {
            "trace_id": trace_id,
            "spans": [span_record(s) for s in root.walk()],
        }

    def debug_slowlog(self, limit: int = 20) -> dict[str, Any]:
        """Slow-query aggregates by total time + slowlog stats."""
        return {
            "slowlog": self.slowlog.report(limit),
            "stats": self.slowlog.stats(),
        }

    def debug_slo(self) -> dict[str, Any]:
        """Current multi-window SLO burn-rate evaluation."""
        return self.slo.evaluate()

    def debug_breakers(self) -> dict[str, Any]:
        """Per-operation breaker states, transitions, and the
        completed-outage durations (MTTR input)."""
        return {
            "config": self.breakers.config.render(),
            "breakers": self.breakers.stats(),
            "transitions": self.breakers.transitions(),
            "recovery_ms": [round(ms, 3)
                            for ms in self.breakers.recovery_ms()],
        }

    # -- health / metrics ------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "graphs": len(self._graphs),
            "uptime_s": round(time.monotonic() - self._started, 3),
            **self.admission.stats(),
        }

    def metrics(self) -> dict[str, Any]:
        """The process metric summary plus the serve roll-ups the
        traffic harness reads (everything obs-backed)."""
        summary = get_registry().summary()
        return {
            "schema": "repro.serve/metrics/v1",
            "serve": {
                "cache": self.cache.stats(),
                "admission": self.admission.stats(),
                "graphs": len(self._graphs),
                "traces": self.traces.stats(),
                "slowlog": self.slowlog.stats(),
                "slo": self.slo.stats(),
                "breakers": self.breakers.stats(),
            },
            **summary,
        }
