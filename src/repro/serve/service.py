"""The resident graph service: hosted databases behind one facade.

:class:`GraphService` is the transport-agnostic core of
:mod:`repro.serve` — the HTTP layer (:mod:`repro.serve.server`) is a
thin JSON adapter over it, and benchmarks / tests drive it directly.
It composes the pieces the rest of the stack already built:

* graph lifecycle — each hosted graph is a
  :class:`~repro.graphdb.GraphDatabase` (indexes, transactions,
  triggers) built from a scenario generator or an explicit
  vertex/edge payload;
* declarative queries through the existing executor, validated by the
  :mod:`repro.analysis` QRY rules as a 400-level pre-flight and served
  through the version-keyed :class:`~repro.serve.cache.QueryCache`
  (a mutation bumps :attr:`~repro.graphdb.GraphDatabase.data_version`,
  so stale reads are structurally impossible);
* algorithms — the registered survey workloads
  (:mod:`repro.workloads.runner`) exposed by short alias;
* admission control — every request passes the
  :class:`~repro.serve.admission.AdmissionController` and runs inside
  a ``serve.request`` span carrying queue-wait vs. handler-time
  attribution.

Per-graph operations serialize on the graph's lock (readers iterate
live dicts, so an unlocked concurrent mutation could corrupt them);
concurrency across graphs and across the admission queue is real.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.graphdb import GraphDatabase
from repro.obs import get_registry, is_enabled, span
from repro.obs.export import _jsonable
from repro.serve.admission import AdmissionController
from repro.serve.cache import QueryCache
from repro.serve.errors import BadRequest, GraphExists, GraphNotFound
from repro.workloads import ALL_RUNNERS, run_computation

#: Short endpoint aliases for the Table 9/10/11 runner names (exact
#: registered names are accepted too).
ALGORITHM_ALIASES: dict[str, str] = {
    "pagerank": "Ranking & Centrality Scores",
    "components": "Finding Connected Components",
    "bfs": "Breadth-first-search or variant",
    "triangles": "Aggregations",
    "shortest_paths": "Finding Short / Shortest Paths",
    "reachability": "Reachability Queries",
    "partitioning": "Graph Partitioning",
    "communities": "Community Detection",
}


def resolve_algorithm(name: str) -> str:
    """An endpoint algorithm name -> registered runner name (400 on
    unknown)."""
    if name in ALGORITHM_ALIASES:
        return ALGORITHM_ALIASES[name]
    if name in ALL_RUNNERS:
        return name
    raise BadRequest(
        f"unknown algorithm {name!r}; aliases: "
        f"{sorted(ALGORITHM_ALIASES)} (full runner names accepted)")


def _build_graph(scenario: str, seed: int):
    if scenario == "product":
        from repro.workloads import generate_product_graph

        return generate_product_graph(seed=seed)
    from repro.workloads import SCENARIOS, build_scenario

    if scenario not in SCENARIOS:
        raise BadRequest(
            f"unknown scenario {scenario!r}; known: "
            f"{sorted(SCENARIOS) + ['product']}")
    return build_scenario(scenario, seed=seed)


@dataclass
class GraphHandle:
    """One hosted graph: its database plus bookkeeping."""

    graph_id: str
    db: GraphDatabase
    origin: dict[str, Any]
    lock: threading.RLock = field(default_factory=threading.RLock)

    def info(self) -> dict[str, Any]:
        return {"id": self.graph_id, "origin": dict(self.origin),
                **self.db.stats()}


class GraphService:
    """Hosted graphs + query cache + admission control, one facade.

    ``handler_delay_ms`` injects a sleep into every admitted handler —
    a load hook for backpressure tests and shedding demos, never set
    in normal serving.
    """

    def __init__(self, *, cache_capacity: int = 256,
                 max_in_flight: int = 8, queue_limit: int = 32,
                 queue_timeout_s: float = 5.0,
                 handler_delay_ms: float = 0.0):
        self._graphs: dict[str, GraphHandle] = {}
        self._lock = threading.RLock()
        self._next_id = 1
        self.cache = QueryCache(capacity=cache_capacity)
        self.admission = AdmissionController(
            max_in_flight=max_in_flight, queue_limit=queue_limit,
            queue_timeout_s=queue_timeout_s)
        self.handler_delay_ms = handler_delay_ms
        self._started = time.monotonic()

    # -- request plumbing ------------------------------------------------

    @contextmanager
    def _request(self, op: str,
                 graph_id: str | None = None) -> Iterator[Any]:
        """Admission + the ``serve.request`` span around one request.

        The span attributes split total latency into ``queue_wait_ms``
        (admission) and ``handler_ms`` (the work), and the same split
        feeds the ``serve.queue_wait_ms`` / ``serve.handler_ms`` /
        ``serve.request_ms`` histograms.
        """
        if is_enabled():
            registry = get_registry()
            registry.inc("serve.requests")
            registry.inc(f"serve.requests.{op}")
        with span("serve.request", op=op, graph=graph_id) as sp:
            with self.admission.admit() as wait_ms:
                sp.set("queue_wait_ms", round(wait_ms, 3))
                if self.handler_delay_ms:
                    time.sleep(self.handler_delay_ms / 1000.0)
                handler_start = time.perf_counter()
                try:
                    yield sp
                finally:
                    handler_ms = (time.perf_counter()
                                  - handler_start) * 1000.0
                    sp.set("handler_ms", round(handler_ms, 3))
                    if is_enabled():
                        registry = get_registry()
                        registry.observe("serve.handler_ms",
                                         handler_ms)
                        registry.observe("serve.request_ms",
                                         wait_ms + handler_ms)

    def _handle(self, graph_id: str) -> GraphHandle:
        with self._lock:
            handle = self._graphs.get(graph_id)
        if handle is None:
            raise GraphNotFound(graph_id, list(self._graphs))
        return handle

    # -- graph lifecycle -------------------------------------------------

    def create_graph(self, *, graph_id: str | None = None,
                     scenario: str | None = None, seed: int = 0,
                     vertices: list | None = None,
                     edges: list | None = None,
                     directed: bool = True) -> dict[str, Any]:
        """Host a new graph, from a scenario generator or an explicit
        vertex/edge payload."""
        with self._request("create", graph_id):
            if scenario is not None and (vertices or edges):
                raise BadRequest(
                    "pass either scenario= or vertices=/edges=, "
                    "not both")
            if scenario is not None:
                db = GraphDatabase.from_graph(
                    _build_graph(scenario, seed))
                origin = {"scenario": scenario, "seed": seed}
            else:
                db = GraphDatabase(directed=directed)
                with db.transaction():
                    self._load_payload(db, vertices or [], edges or [])
                origin = {"scenario": None, "seed": seed}
            with self._lock:
                if graph_id is None:
                    graph_id = f"g{self._next_id}"
                    self._next_id += 1
                if graph_id in self._graphs:
                    raise GraphExists(graph_id)
                handle = GraphHandle(graph_id=graph_id, db=db,
                                     origin=origin)
                self._graphs[graph_id] = handle
            if is_enabled():
                get_registry().set_gauge("serve.graphs",
                                         len(self._graphs))
            return handle.info()

    @staticmethod
    def _load_payload(db: GraphDatabase, vertices: list,
                      edges: list) -> None:
        for raw in vertices:
            if not isinstance(raw, dict) or "id" not in raw:
                raise BadRequest(
                    f"vertex payload needs an 'id' field: {raw!r}")
            db.add_vertex(raw["id"], label=raw.get("label"),
                          **raw.get("properties", {}))
        for raw in edges:
            if not isinstance(raw, dict) or "u" not in raw \
                    or "v" not in raw:
                raise BadRequest(
                    f"edge payload needs 'u' and 'v' fields: {raw!r}")
            db.add_edge(raw["u"], raw["v"],
                        weight=raw.get("weight", 1.0),
                        label=raw.get("label"),
                        **raw.get("properties", {}))

    def delete_graph(self, graph_id: str) -> dict[str, Any]:
        with self._request("delete", graph_id):
            with self._lock:
                if graph_id not in self._graphs:
                    raise GraphNotFound(graph_id, list(self._graphs))
                del self._graphs[graph_id]
            dropped = self.cache.drop_graph(graph_id)
            if is_enabled():
                get_registry().set_gauge("serve.graphs",
                                         len(self._graphs))
            return {"deleted": graph_id, "cache_dropped": dropped}

    def list_graphs(self) -> dict[str, Any]:
        with self._lock:
            infos = [h.info() for h in self._graphs.values()]
        return {"graphs": infos}

    def graph_stats(self, graph_id: str) -> dict[str, Any]:
        return self._handle(graph_id).info()

    # -- queries ---------------------------------------------------------

    def query(self, graph_id: str, text: str, *,
              use_cache: bool = True) -> dict[str, Any]:
        """Run one GQL-lite query, cache-first.

        The response's ``cache`` field says which path served it; the
        rest of the payload is byte-identical either way (the cache
        stores the serialized payload).
        """
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("query text must be a non-empty string")
        handle = self._handle(graph_id)
        with self._request("query", graph_id) as sp:
            with handle.lock:
                version = handle.db.data_version
                if use_cache:
                    cached = self.cache.get(graph_id, version, text)
                    if cached is not None:
                        sp.set("cache", "hit")
                        return {**cached, "cache": "hit"}
                # QRY pre-flight (strict): parse errors, unbound
                # variables — and schema findings when the database
                # has one — surface as QueryError -> 400 before the
                # matcher runs.
                result = handle.db.query(text, strict=True)
                payload = {
                    "columns": list(result.columns),
                    "rows": _jsonable(result.rows),
                    "row_count": len(result.rows),
                    "version": version,
                }
                if use_cache:
                    self.cache.put(graph_id, version, text, payload)
            sp.set("cache", "miss")
            sp.set("rows", payload["row_count"])
            if is_enabled():
                get_registry().inc("serve.queries")
            return {**payload, "cache": "miss"}

    # -- mutations -------------------------------------------------------

    #: op name -> required payload fields.
    MUTATION_OPS = {
        "add_vertex": ("vertex",),
        "add_edge": ("u", "v"),
        "set_property": ("vertex", "key", "value"),
        "remove_vertex": ("vertex",),
        "remove_edge": ("edge_id",),
    }

    def mutate(self, graph_id: str,
               operations: list[dict[str, Any]]) -> dict[str, Any]:
        """Apply a batch of mutations in one transaction.

        The whole batch is validated before any of it runs; it commits
        (and bumps the data version, invalidating cached queries) or
        rolls back as a unit.
        """
        if not isinstance(operations, list) or not operations:
            raise BadRequest(
                "mutate needs a non-empty 'operations' list")
        for raw in operations:
            if not isinstance(raw, dict):
                raise BadRequest(f"operation is not an object: {raw!r}")
            op = raw.get("op")
            required = self.MUTATION_OPS.get(op)
            if required is None:
                raise BadRequest(
                    f"unknown mutation op {op!r}; known: "
                    f"{sorted(self.MUTATION_OPS)}")
            missing = [f for f in required if f not in raw]
            if missing:
                raise BadRequest(
                    f"mutation {op!r} is missing field(s) {missing}")
        handle = self._handle(graph_id)
        with self._request("mutate", graph_id) as sp:
            with handle.lock:
                db = handle.db
                with db.transaction():
                    for raw in operations:
                        self._apply_mutation(db, raw)
                version = db.data_version
            sp.set("operations", len(operations))
            if is_enabled():
                get_registry().inc("serve.mutations",
                                   len(operations))
            return {"applied": len(operations), "version": version}

    @staticmethod
    def _apply_mutation(db: GraphDatabase, raw: dict[str, Any]) -> None:
        op = raw["op"]
        if op == "add_vertex":
            db.add_vertex(raw["vertex"], label=raw.get("label"),
                          **raw.get("properties", {}))
        elif op == "add_edge":
            db.add_edge(raw["u"], raw["v"],
                        weight=raw.get("weight", 1.0),
                        label=raw.get("label"),
                        **raw.get("properties", {}))
        elif op == "set_property":
            db.set_vertex_property(raw["vertex"], raw["key"],
                                   raw["value"])
        elif op == "remove_vertex":
            db.remove_vertex(raw["vertex"])
        elif op == "remove_edge":
            db.remove_edge(raw["edge_id"])

    # -- algorithms ------------------------------------------------------

    def algorithm(self, graph_id: str, name: str,
                  seed: int = 0) -> dict[str, Any]:
        """Run one registered survey workload on a hosted graph."""
        runner_name = resolve_algorithm(name)
        handle = self._handle(graph_id)
        with self._request("algorithm", graph_id) as sp:
            sp.set("algorithm", runner_name)
            with handle.lock:
                result = run_computation(runner_name, handle.db.graph,
                                         seed=seed)
            if is_enabled():
                get_registry().inc("serve.algorithms")
            return {
                "name": name,
                "algorithm": runner_name,
                "seed": seed,
                "summary": _jsonable(result.summary),
                "elapsed_ms": round(result.elapsed_ms, 3),
            }

    # -- health / metrics ------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "graphs": len(self._graphs),
            "uptime_s": round(time.monotonic() - self._started, 3),
            **self.admission.stats(),
        }

    def metrics(self) -> dict[str, Any]:
        """The process metric summary plus the serve roll-ups the
        traffic harness reads (everything obs-backed)."""
        summary = get_registry().summary()
        return {
            "schema": "repro.serve/metrics/v1",
            "serve": {
                "cache": self.cache.stats(),
                "admission": self.admission.stats(),
                "graphs": len(self._graphs),
            },
            **summary,
        }
