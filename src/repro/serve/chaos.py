"""Seeded serve-layer chaos harness: fault injection over live HTTP.

``python -m repro.serve.chaos --seed 7 --runs 3`` boots an *armed*
server (breakers + a default deadline + a :class:`ChaosInjector`),
replays the traffic harness's seeded schedule decorated with fault
directives, and reports what the resilience layer did about them:
MTTR (breaker open -> closed, ms), shed rate, stale-serve rate,
deadline 504s, breaker transitions, and SLO burn.

Fault taxonomy (one :class:`ChaosDirective` per request, carried in
the ``X-Repro-Chaos`` header):

========  ==================  =======================================
token     example             server behaviour when armed
========  ==================  =======================================
error     ``error``           raise :class:`InjectedServeFault` (500)
                              *inside* the breaker guard, before the
                              real work runs
delay     ``delay=25``        sleep that many ms inside the guard
drip      ``drip=4x10``       transport writes the response body in
                              4 chunks with 10ms gaps (slow consumer)
kill      ``kill=w0@1``       distributed algorithms run under that
                              :class:`~repro.dist.faults.FaultPlan`
                              spec (mid-request worker kill)
========  ==================  =======================================

Determinism is inherited from the traffic harness: the decorated
schedule is pure data derived from ``(seed, run, client)`` rng
streams, planned client-side *before* any request is sent, so the
same seed always injects the same faults at the same schedule slots
(``schedule_digest`` in the report is the witness). The header is
honored only when the service was constructed with ``chaos=`` — an
unarmed production server ignores it entirely.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any

from repro.serve.errors import ServeError

#: Request header carrying a rendered :class:`ChaosDirective`.
CHAOS_HEADER = "X-Repro-Chaos"

#: Breaker literal the chaos CLI arms its server with: sensitive
#: enough that a sustained 30% injected error rate trips it within
#: one window, with a sub-second cooldown so recovery (and therefore
#: MTTR) is observable inside a single run. CFG007 lints this.
CHAOS_BREAKER = ("window=10,threshold=0.3,min_requests=4,probes=2,"
                 "cooldown_s=0.5")

#: Ops an ``error`` directive targets by default, in *traffic* op
#: terms (read/write/algo -> query/mutate/algorithm serve ops).
DEFAULT_ERROR_OPS = ("algo",)


class InjectedServeFault(ServeError):
    """The fault a chaos ``error`` directive makes the service raise.

    Status 500, so :func:`~repro.serve.errors.error_status` classifies
    it as a server-side error and it feeds the op's breaker window —
    indistinguishable from an organic failure, which is the point.
    """

    status = 500

    def __init__(self, op: str):
        super().__init__(f"chaos: injected fault in {op!r}")
        self.op = op


@dataclass(frozen=True)
class ChaosDirective:
    """One request's worth of planned misbehaviour (pure data)."""

    error: bool = False
    delay_ms: float = 0.0
    #: ``(chunks, gap_ms)`` — transport-level slow-drip response.
    drip: tuple[int, float] | None = None
    #: :class:`~repro.dist.faults.FaultPlan` spec for distributed
    #: algorithm requests (e.g. ``"w0@1"``).
    kill: str | None = None

    def __post_init__(self):
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")
        if self.drip is not None:
            chunks, gap_ms = self.drip
            if chunks < 2 or gap_ms < 0:
                raise ValueError(
                    "drip needs >= 2 chunks and gap_ms >= 0")

    @classmethod
    def parse(cls, text: str) -> "ChaosDirective":
        """Parse ``"error;delay=25;drip=4x10;kill=w0@1"``.

        ``;``-separated tokens so ``kill`` values may contain the
        FaultPlan DSL's commas. Unknown or duplicate tokens are
        errors — a malformed header must fail loudly, not inject
        nothing.
        """
        fields: dict[str, Any] = {}

        def put(key: str, value: Any) -> None:
            if key in fields:
                raise ValueError(
                    f"duplicate chaos token {key!r} in {text!r}")
            fields[key] = value

        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            name, sep, value = token.partition("=")
            name = name.strip()
            if name == "error" and not sep:
                put("error", True)
            elif name == "delay" and sep:
                put("delay_ms", float(value))
            elif name == "drip" and sep:
                chunks_text, sep2, gap_text = value.partition("x")
                if not sep2:
                    raise ValueError(
                        f"drip token {token!r} is not of the form "
                        f"drip=CHUNKSxGAP_MS")
                put("drip", (int(chunks_text), float(gap_text)))
            elif name == "kill" and sep:
                put("kill", value.strip())
            else:
                raise ValueError(
                    f"unknown chaos token {token!r} in {text!r}")
        return cls(**fields)

    def render(self) -> str:
        tokens = []
        if self.error:
            tokens.append("error")
        if self.delay_ms:
            tokens.append(f"delay={self.delay_ms:g}")
        if self.drip is not None:
            tokens.append(f"drip={self.drip[0]}x{self.drip[1]:g}")
        if self.kill is not None:
            tokens.append(f"kill={self.kill}")
        return ";".join(tokens)


#: Ambient per-request directive, bound by the transport beside the
#: trace id and deadline so the service's chaos hooks see it without
#: plumbing an argument through every call.
_DIRECTIVE: ContextVar[Any] = ContextVar("repro_chaos", default=None)


def current_directive() -> ChaosDirective | None:
    """The directive bound to this request, or None."""
    return _DIRECTIVE.get()


@contextmanager
def chaos_scope(directive: ChaosDirective):
    """Bind ``directive`` as the ambient chaos directive."""
    token = _DIRECTIVE.set(directive)
    try:
        yield directive
    finally:
        _DIRECTIVE.reset(token)


class ChaosInjector:
    """The service-side arm: honors the ambient directive, keeps tally.

    Constructed by the harness (or a test) and passed as
    ``GraphService(chaos=...)``; a service without one never looks at
    the header. ``sleeper`` is injectable so tests can run delay
    directives without wall-clock cost.
    """

    def __init__(self, *, sleeper=time.sleep):
        self.sleeper = sleeper
        self.injected_errors = 0
        self.injected_delays = 0
        self.injected_kills = 0
        self._lock = threading.Lock()

    def apply(self, op: str, sp: Any = None) -> None:
        """Run inside the breaker guard: delay, then maybe raise."""
        directive = current_directive()
        if directive is None:
            return
        if directive.delay_ms > 0:
            with self._lock:
                self.injected_delays += 1
            if sp is not None:
                sp.set("chaos.delay_ms", directive.delay_ms)
            self.sleeper(directive.delay_ms / 1000.0)
        if directive.error:
            with self._lock:
                self.injected_errors += 1
            if sp is not None:
                sp.set("chaos.error", True)
            raise InjectedServeFault(op)

    def kill_plan(self) -> Any:
        """FaultPlan for a distributed run, when the directive has one."""
        directive = current_directive()
        if directive is None or directive.kill is None:
            return None
        from repro.dist.faults import FaultPlan

        with self._lock:
            self.injected_kills += 1
        return FaultPlan.parse(directive.kill)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "injected_errors": self.injected_errors,
                "injected_delays": self.injected_delays,
                "injected_kills": self.injected_kills,
            }


def plan_chaos(plan: list[list[dict[str, Any]]], *, seed: int,
               run: int, error_rate: float = 0.3,
               error_ops: tuple[str, ...] = DEFAULT_ERROR_OPS,
               delay_rate: float = 0.1, delay_ms: float = 25.0,
               drip_rate: float = 0.05, kill_rate: float = 0.15,
               ) -> list[list[dict[str, Any]]]:
    """Decorate a traffic schedule with chaos directives — pure data.

    Per-client rng streams salted by ``(seed, run)`` follow the
    traffic harness's determinism contract: client ``i``'s faults do
    not depend on other clients, and the same seed reproduces the
    same decorated plan. ``kill`` only attaches to distributed
    algorithm entries (pagerank), where a FaultPlan has meaning.
    """
    decorated: list[list[dict[str, Any]]] = []
    for client, schedule in enumerate(plan):
        rng = random.Random(seed * 100003 + run * 1009 + client)
        entries: list[dict[str, Any]] = []
        for entry in schedule:
            fields: dict[str, Any] = {}
            if entry["op"] in error_ops \
                    and rng.random() < error_rate:
                fields["error"] = True
            if rng.random() < delay_rate:
                fields["delay_ms"] = delay_ms
            if entry["op"] == "read" and rng.random() < drip_rate:
                fields["drip"] = (4, 2.0)
            if (entry["op"] == "algo"
                    and entry.get("name") == "pagerank"
                    and not fields.get("error")
                    and rng.random() < kill_rate):
                fields["kill"] = (f"w{rng.randrange(2)}"
                                  f"@{rng.randrange(1, 3)}")
            if fields:
                directive = ChaosDirective(**fields)
                entry = {**entry, "chaos": directive.render()}
            entries.append(entry)
        decorated.append(entries)
    return decorated


def schedule_digest(plans: list[list[list[dict[str, Any]]]]) -> str:
    """Stable digest of every run's decorated schedule — the witness
    that a seed reproduced the exact same fault plan."""
    blob = json.dumps(plans, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _planned_faults(plans: list[list[list[dict[str, Any]]]]
                    ) -> dict[str, int]:
    counts = {"error": 0, "delay": 0, "drip": 0, "kill": 0}
    for plan in plans:
        for schedule in plan:
            for entry in schedule:
                if "chaos" not in entry:
                    continue
                directive = ChaosDirective.parse(entry["chaos"])
                counts["error"] += int(directive.error)
                counts["delay"] += int(directive.delay_ms > 0)
                counts["drip"] += int(directive.drip is not None)
                counts["kill"] += int(directive.kill is not None)
    return counts


def run_serve_chaos(*, seed: int = 7, runs: int = 3,
                    clients: int = 6, requests: int = 20,
                    mix: Any = None, error_rate: float = 0.3,
                    delay_rate: float = 0.1, delay_ms: float = 25.0,
                    drip_rate: float = 0.05, kill_rate: float = 0.15,
                    deadline_ms: float = 2000.0,
                    breaker: str = CHAOS_BREAKER,
                    graph_id: str = "chaos") -> dict[str, Any]:
    """Boot an armed server per run, inject the planned faults over
    HTTP, and report how the resilience layer held up."""
    # Lazy: keep this module importable by the server (for header
    # parsing) without dragging in the HTTP stack or a cycle.
    from repro import obs
    from repro.serve.server import start_server
    from repro.serve.service import GraphService
    from repro.serve.traffic import (
        ServeClient,
        TrafficMix,
        _entry_request,
        _percentile,
        build_schedule,
    )

    mix = mix or TrafficMix(read=0.5, write=0.2, algo=0.3)
    base_plan = build_schedule(seed, clients, requests, mix)
    plans = [plan_chaos(base_plan, seed=seed, run=run,
                        error_rate=error_rate,
                        delay_rate=delay_rate, delay_ms=delay_ms,
                        drip_rate=drip_rate, kill_rate=kill_rate)
             for run in range(runs)]
    digest = schedule_digest(plans)

    obs.enable()
    run_reports: list[dict[str, Any]] = []
    for run, plan in enumerate(plans):
        injector = ChaosInjector()
        service = GraphService(breaker=breaker,
                               default_deadline_ms=deadline_ms,
                               chaos=injector)
        handle = start_server(service)
        try:
            run_reports.append(
                _drive_run(handle.base_url, plan, injector,
                           run=run, seed=seed, graph_id=graph_id,
                           entry_request=_entry_request,
                           percentile=_percentile,
                           client_cls=ServeClient))
        finally:
            handle.shutdown()

    totals = sum(r["total"] for r in run_reports)
    shed = sum(r["shed"] for r in run_reports)
    stale = sum(r["stale_serves"] for r in run_reports)
    mttrs = [m for r in run_reports for m in r["recovery_ms"]]
    report = {
        "schema": "repro.serve.chaos/v1",
        "seed": seed,
        "runs": runs,
        "clients": clients,
        "requests_per_client": requests,
        "schedule_digest": digest,
        "fault_profile": {
            "error_rate": error_rate,
            "delay_rate": delay_rate,
            "delay_ms": delay_ms,
            "drip_rate": drip_rate,
            "kill_rate": kill_rate,
            "deadline_ms": deadline_ms,
            "breaker": breaker,
        },
        "planned_faults": _planned_faults(plans),
        "total_requests": totals,
        "shed": shed,
        "shed_rate": round(shed / totals, 4) if totals else 0.0,
        "stale_serves": stale,
        "stale_serve_rate": (round(stale / totals, 4)
                             if totals else 0.0),
        "deadline_504": sum(r["deadline_504"] for r in run_reports),
        "breaker_transitions": sum(
            len(r["breaker_transitions"]) for r in run_reports),
        "mttr_ms": (round(sum(mttrs) / len(mttrs), 1)
                    if mttrs else None),
        "runs_detail": run_reports,
    }
    p95s = [r["latency_ms"]["p95"] for r in run_reports
            if r["latency_ms"]["p95"] > 0]
    report["checks"] = {
        # The acceptance contract: faults trip the breaker, queries
        # keep answering (fresh or stale-marked), tail latency stays
        # under the request deadline, and the plan is reproducible.
        "breaker_opened": (error_rate <= 0.0
                           or any(r["breaker_opened"]
                                  for r in run_reports)),
        "queries_answered": all(
            r["ok"] + r["stale_serves"] > 0 for r in run_reports),
        "p95_under_deadline_ms": (max(p95s) < deadline_ms
                                  if p95s else True),
        "deterministic": schedule_digest(
            [plan_chaos(base_plan, seed=seed, run=run,
                        error_rate=error_rate,
                        delay_rate=delay_rate, delay_ms=delay_ms,
                        drip_rate=drip_rate, kill_rate=kill_rate)
             for run in range(runs)]) == digest,
    }
    return report


def _drive_run(url: str, plan: list[list[dict[str, Any]]],
               injector: ChaosInjector, *, run: int, seed: int,
               graph_id: str, entry_request, percentile,
               client_cls) -> dict[str, Any]:
    admin = client_cls(url)
    status, _ = admin.request(
        "POST", "/graphs",
        {"graph_id": graph_id, "scenario": "product", "seed": seed})
    if status not in (201, 409):
        raise RuntimeError(
            f"could not host chaos graph: HTTP {status}")

    results: list[dict[str, Any]] = []
    results_lock = threading.Lock()

    def worker(index: int, schedule: list[dict[str, Any]]) -> None:
        client = client_cls(
            url, rng=random.Random(seed * 2000003 + index))
        local: list[dict[str, Any]] = []
        for entry in schedule:
            method, path, payload = entry_request(graph_id, entry)
            headers = ({CHAOS_HEADER: entry["chaos"]}
                       if "chaos" in entry else None)
            start = time.perf_counter()
            code, body = client.request(method, path, payload,
                                        headers=headers)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            local.append({"op": entry["op"], "status": code,
                          "latency_ms": elapsed_ms,
                          "stale": bool(body.get("stale"))})
        client.close()
        with results_lock:
            results.extend(local)

    threads = [threading.Thread(target=worker, args=(i, schedule),
                                name=f"chaos-{run}-{i}")
               for i, schedule in enumerate(plan)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    _, breakers = admin.request("GET", "/debug/breakers")
    _, slo = admin.request("GET", "/debug/slo")
    admin.close()

    latencies = [r["latency_ms"] for r in results
                 if r["status"] == 200]
    transitions = breakers.get("transitions", [])
    return {
        "run": run,
        "total": len(results),
        "ok": sum(1 for r in results if r["status"] == 200
                  and not r["stale"]),
        "stale_serves": sum(1 for r in results if r["stale"]),
        "shed": sum(1 for r in results
                    if r["status"] in (429, 503)),
        "deadline_504": sum(1 for r in results
                            if r["status"] == 504),
        "errors_5xx": sum(1 for r in results
                          if r["status"] == 500),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p95": round(percentile(latencies, 95), 3),
            "p99": round(percentile(latencies, 99), 3),
        },
        "injected": injector.stats(),
        "breaker_opened": any(t["to"] == "open"
                              for t in transitions),
        "breaker_transitions": transitions,
        "recovery_ms": breakers.get("recovery_ms", []),
        "slo_burning": [row["spec"] for row in slo.get("slos", [])
                        if row.get("burning")],
    }


def render_report(report: dict[str, Any]) -> str:
    planned = report["planned_faults"]
    lines = [
        f"chaos seed={report['seed']} runs={report['runs']} "
        f"clients={report['clients']} "
        f"x {report['requests_per_client']} requests  "
        f"digest {report['schedule_digest']}",
        f"  planned faults: {planned['error']} errors, "
        f"{planned['delay']} delays, {planned['drip']} drips, "
        f"{planned['kill']} kills",
        f"  {report['total_requests']} requests: "
        f"shed {report['shed']} "
        f"({100 * report['shed_rate']:.1f}%), "
        f"stale-served {report['stale_serves']} "
        f"({100 * report['stale_serve_rate']:.1f}%), "
        f"504s {report['deadline_504']}",
        f"  breaker transitions {report['breaker_transitions']}, "
        f"MTTR "
        + (f"{report['mttr_ms']:.0f}ms"
           if report["mttr_ms"] is not None else "n/a (no reopen)"),
    ]
    for detail in report["runs_detail"]:
        lat = detail["latency_ms"]
        burning = (" slo-burning: "
                   + ",".join(detail["slo_burning"])
                   if detail["slo_burning"] else "")
        lines.append(
            f"  run {detail['run']}: ok {detail['ok']} stale "
            f"{detail['stale_serves']} shed {detail['shed']} "
            f"5xx {detail['errors_5xx']} 504 "
            f"{detail['deadline_504']}  p95 {lat['p95']:.1f}ms"
            f"{burning}")
    for name, passed in report["checks"].items():
        lines.append(f"  check {name}: {'ok' if passed else 'FAIL'}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="Inject seeded faults into the resident service "
                    "and report MTTR, shed/stale-serve rates, and "
                    "breaker transitions.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=20,
                        help="requests per client")
    parser.add_argument("--mix", default="read=0.5,write=0.2,algo=0.3")
    parser.add_argument("--error-rate", type=float, default=0.3)
    parser.add_argument("--delay-rate", type=float, default=0.1)
    parser.add_argument("--delay-ms", type=float, default=25.0)
    parser.add_argument("--drip-rate", type=float, default=0.05)
    parser.add_argument("--kill-rate", type=float, default=0.15)
    parser.add_argument("--deadline-ms", type=float, default=2000.0)
    parser.add_argument("--breaker", default=CHAOS_BREAKER,
                        metavar="SPEC")
    parser.add_argument("--json", action="store_true",
                        dest="as_json")
    args = parser.parse_args(argv)

    from repro.serve.resilience import BreakerConfig
    from repro.serve.traffic import TrafficMix

    try:
        mix = TrafficMix.parse(args.mix)
        BreakerConfig.parse(args.breaker)  # fail fast on bad literals
    except ValueError as exc:
        parser.error(str(exc))
    report = run_serve_chaos(
        seed=args.seed, runs=args.runs, clients=args.clients,
        requests=args.requests, mix=mix,
        error_rate=args.error_rate, delay_rate=args.delay_rate,
        delay_ms=args.delay_ms, drip_rate=args.drip_rate,
        kill_rate=args.kill_rate, deadline_ms=args.deadline_ms,
        breaker=args.breaker)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    return 0 if all(report["checks"].values()) else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    # ``python -m`` runs this file as ``__main__`` — a *second* copy
    # of the module whose ``_DIRECTIVE`` contextvar the server (which
    # imports the canonical ``repro.serve.chaos``) would never bind.
    # Delegate to the canonical module so there is one contextvar.
    from repro.serve.chaos import main as _main

    raise SystemExit(_main())
