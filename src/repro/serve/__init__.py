"""The resident graph service: hosted graphs behind an HTTP/JSON API
with admission control, a version-keyed query cache, and a seeded
traffic harness.

The survey's headline finding is that graph processing is an
*operational* problem — real deployments serve queries continuously,
not as one-shot batch runs. :mod:`repro.serve` closes that gap for
this codebase: :class:`GraphService` keeps
:class:`~repro.graphdb.GraphDatabase` instances resident,
:func:`start_server` exposes them over stdlib HTTP, and
:mod:`repro.serve.traffic` generates reproducible load against the
whole stack. See DESIGN.md's "Service layer" section for the endpoint
table and the backpressure/caching contracts.
"""

from repro.serve.admission import AdmissionController
from repro.serve.cache import QueryCache
from repro.serve.errors import (
    BadRequest,
    BreakerOpen,
    GraphExists,
    GraphNotFound,
    ServeError,
    ServeOverloaded,
    ServeQueueFull,
    ServiceDraining,
    TraceNotFound,
    error_status,
)
from repro.serve.resilience import (
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
)
from repro.serve.server import ServerHandle, start_server
from repro.serve.service import (
    ALGORITHM_ALIASES,
    GraphService,
    resolve_algorithm,
)

#: Lazily re-exported from :mod:`repro.serve.traffic` (PEP 562) so
#: ``python -m repro.serve.traffic`` does not import the module twice
#: under two names.
_TRAFFIC_EXPORTS = ("TrafficMix", "build_schedule", "run_traffic")

#: Same deal for :mod:`repro.serve.chaos` — the harness imports the
#: HTTP stack lazily, and the package must not force that.
_CHAOS_EXPORTS = ("ChaosDirective", "ChaosInjector", "run_serve_chaos")


def __getattr__(name):
    if name in _TRAFFIC_EXPORTS:
        from repro.serve import traffic

        return getattr(traffic, name)
    if name in _CHAOS_EXPORTS:
        from repro.serve import chaos

        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALGORITHM_ALIASES",
    "AdmissionController",
    "BadRequest",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerOpen",
    "ChaosDirective",
    "ChaosInjector",
    "CircuitBreaker",
    "GraphExists",
    "GraphNotFound",
    "GraphService",
    "QueryCache",
    "ServeError",
    "ServeOverloaded",
    "ServeQueueFull",
    "ServerHandle",
    "ServiceDraining",
    "TraceNotFound",
    "TrafficMix",
    "build_schedule",
    "error_status",
    "resolve_algorithm",
    "run_serve_chaos",
    "run_traffic",
    "start_server",
]
