"""Version-keyed query cache with LRU eviction.

Caching query results in a live database is only safe if invalidation
is structural, not best-effort. Entries are keyed on
``(graph_id, data_version, query_text)`` where ``data_version`` is the
:attr:`repro.graphdb.GraphDatabase.data_version` mutation counter:
every mutation bumps the version, so a cached result simply *cannot*
be served after the data it was computed from changed — stale reads
are impossible by construction, with no invalidation message to lose.
Entries for dead versions age out of the bounded LRU naturally.

Hit/miss/eviction counts land in :mod:`repro.obs`
(``serve.cache_hits`` / ``serve.cache_misses`` /
``serve.cache_evictions``) whenever observability is enabled, which is
where the traffic harness's "cache hit rate" figure comes from.

Degraded serving (:mod:`repro.serve.resilience`) adds one deliberate
exception to the never-stale rule: :meth:`QueryCache.get_stale` finds
the newest *superseded-version* entry for a ``(graph_id, query)``
pair, with its age, so an open circuit breaker can answer from history
— but only callers that explicitly opt in (and mark the response
``"stale": true``) ever see those entries; :meth:`QueryCache.get`
stays version-exact.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any

from repro.obs import get_registry, is_enabled

#: Cache keys: (graph_id, data_version, query_text).
CacheKey = tuple[str, int, str]


class QueryCache:
    """A bounded, thread-safe, version-keyed result cache."""

    def __init__(self, capacity: int = 256, *, clock=time.monotonic):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        #: Insert instant per key, for stale-serve age reporting.
        self._stamps: dict[CacheKey, float] = {}
        self._clock = clock
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_hits = 0

    def _key(self, graph_id: str, version: int,
             query: str) -> CacheKey:
        return (graph_id, version, query)

    def get(self, graph_id: str, version: int, query: str) -> Any:
        """The cached payload, or None on a miss (payloads are dicts,
        never None, so None is unambiguous)."""
        key = self._key(graph_id, version, query)
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if is_enabled():
            get_registry().inc("serve.cache_hits"
                               if payload is not None
                               else "serve.cache_misses")
        return payload

    def put(self, graph_id: str, version: int, query: str,
            payload: Any) -> None:
        key = self._key(graph_id, version, query)
        evicted = 0
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self._stamps[key] = self._clock()
            while len(self._entries) > self.capacity:
                doomed_key, _ = self._entries.popitem(last=False)
                self._stamps.pop(doomed_key, None)
                evicted += 1
            self.evictions += evicted
        if evicted and is_enabled():
            get_registry().inc("serve.cache_evictions", evicted)

    def get_stale(self, graph_id: str, query: str) -> Any:
        """The newest superseded-or-current entry for one query, or
        ``None``.

        Degraded-mode lookup for an open circuit breaker: scans every
        retained version of ``(graph_id, query)`` and returns
        ``(payload, version, age_s)`` for the highest version present
        (a bounded O(capacity) scan — this path only runs while
        degraded). The caller owns marking the response
        ``"stale": true``; this method never masquerades as
        :meth:`get`.
        """
        best_key: CacheKey | None = None
        with self._lock:
            for key in self._entries:
                if key[0] == graph_id and key[2] == query:
                    if best_key is None or key[1] > best_key[1]:
                        best_key = key
            if best_key is None:
                return None
            self.stale_hits += 1
            payload = self._entries[best_key]
            age_s = self._clock() - self._stamps.get(
                best_key, self._clock())
        if is_enabled():
            get_registry().inc("serve.cache_stale_hits")
        return payload, best_key[1], age_s

    def drop_graph(self, graph_id: str) -> int:
        """Drop every entry of one graph (graph deletion); returns the
        number removed."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == graph_id]
            for key in doomed:
                del self._entries[key]
                self._stamps.pop(key, None)
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stamps.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            hits, misses = self.hits, self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "stale_hits": self.stale_hits,
                "hit_rate": (hits / (hits + misses)
                             if hits + misses else 0.0),
            }
