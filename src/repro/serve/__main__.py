"""``python -m repro.serve`` boots the resident graph service."""

from repro.serve.server import main

raise SystemExit(main())
