"""Per-operation circuit breakers for the service layer.

The survey's operational chapter is blunt: failures cascade. One bad
dependency (a runner that started erroring, a graph whose queries
time out) keeps consuming handler slots, queue capacity, and client
retries long after it stopped returning anything useful. A circuit
breaker turns that into a measured, bounded degradation:

* **closed** — requests flow; the last :attr:`BreakerConfig.window`
  outcomes form a sliding window, and once at least
  :attr:`BreakerConfig.min_requests` of them are present with an
  error rate at or above :attr:`BreakerConfig.threshold`, the breaker
  trips **open**;
* **open** — requests are refused up front
  (:class:`~repro.serve.errors.BreakerOpen`, HTTP 503 with
  ``Retry-After``) for :attr:`BreakerConfig.cooldown_s` seconds.
  The service degrades instead of failing where it can: queries may
  be answered from superseded cache entries, marked ``"stale": true``
  (see :meth:`~repro.serve.cache.QueryCache.get_stale`);
* **half-open** — after the cooldown, up to
  :attr:`BreakerConfig.probes` live probe requests are admitted. Any
  probe failure re-opens the breaker; that many successes close it
  and clear the window.

Only *server* faults (mapped status >= 500 — injected faults, deadline
overruns, crashes) count toward the error rate. Client mistakes (4xx)
and the breaker's own sheds never feed the window, so a breaker cannot
keep itself open.

The clock is injectable (``clock=``, monotonic by default) exactly
like :class:`~repro.obs.slo.SLOMonitor`, so tests drive the full
closed -> open -> half-open -> closed cycle deterministically. Config
literals (``"window=20,threshold=0.5,..."``) are validated by the
CFG007 analysis rule the way CFG005/CFG006 validate traffic mixes and
SLO specs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, fields, replace
from typing import Any, Callable

from repro.obs import get_registry, is_enabled
from repro.serve.errors import BreakerOpen

#: Breaker states (plain strings: they appear verbatim in stats
#: payloads, chaos reports, and test assertions).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: The service default: trip on a majority of errors over the last 20
#: outcomes, probe twice after five seconds.
DEFAULT_BREAKER = ("window=20,threshold=0.5,min_requests=5,"
                   "probes=2,cooldown_s=5")

#: Config fields parsed as integers; the rest are floats.
_INT_FIELDS = frozenset({"window", "min_requests", "probes"})


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker` (validated).

    ``deadline_ms`` is an optional companion knob: services that mint
    a default execution budget per request carry it in the same
    literal so one CFG007-linted string describes the whole
    resilience policy.
    """

    window: int = 20
    threshold: float = 0.5
    min_requests: int = 5
    probes: int = 2
    cooldown_s: float = 5.0
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(
                f"window must be >= 1, got {self.window}")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold}")
        if not 1 <= self.min_requests <= self.window:
            raise ValueError(
                f"min_requests must be in [1, window={self.window}], "
                f"got {self.min_requests}")
        if self.probes < 1:
            raise ValueError(
                f"probes must be >= 1, got {self.probes}")
        if self.cooldown_s <= 0:
            raise ValueError(
                f"cooldown_s must be > 0, got {self.cooldown_s}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}")

    @classmethod
    def parse(cls, spec: str) -> "BreakerConfig":
        """Parse a ``key=value,key=value`` literal.

        Unknown keys and non-numeric values raise :class:`ValueError`
        with the offending token, so the CFG007 rule (and a 400 at the
        serve edge) can point at the exact mistake.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError("breaker config must be a non-empty "
                             "string of key=value pairs")
        known = {f.name for f in fields(cls)}
        values: dict[str, Any] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(
                    f"bad breaker config token {token!r}: expected "
                    f"key=value")
            key, _, raw = token.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in known:
                raise ValueError(
                    f"unknown breaker config key {key!r}; known: "
                    f"{sorted(known)}")
            if key in values:
                raise ValueError(
                    f"duplicate breaker config key {key!r}")
            try:
                values[key] = (int(raw) if key in _INT_FIELDS
                               else float(raw))
            except ValueError:
                raise ValueError(
                    f"bad breaker config value {raw!r} for "
                    f"{key!r}: expected a number") from None
        return cls(**values)

    def render(self) -> str:
        """The canonical literal this config round-trips through."""
        parts = [f"window={self.window}",
                 f"threshold={self.threshold:g}",
                 f"min_requests={self.min_requests}",
                 f"probes={self.probes}",
                 f"cooldown_s={self.cooldown_s:g}"]
        if self.deadline_ms is not None:
            parts.append(f"deadline_ms={self.deadline_ms:g}")
        return ",".join(parts)


class CircuitBreaker:
    """One operation's breaker: sliding-window trip, timed half-open
    probes, recorded transitions."""

    def __init__(self, op: str, config: BreakerConfig, *,
                 clock: Callable[[], float] = time.monotonic):
        self.op = op
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=config.window)
        self._opened_at: float | None = None
        self._probes_issued = 0
        self._probes_ok = 0
        self.short_circuits = 0
        #: Every state change: {"op", "from", "to", "reason", "at"}.
        self.transitions: list[dict[str, Any]] = []

    # -- internals (call with the lock held) ---------------------------

    def _error_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def _transition(self, to: str, reason: str) -> None:
        entry = {"op": self.op, "from": self.state, "to": to,
                 "reason": reason, "at": self._clock()}
        self.transitions.append(entry)
        self.state = to
        if is_enabled():
            get_registry().inc(f"serve.breaker.{to}")

    def _trip(self, reason: str) -> None:
        self._transition(OPEN, reason)
        self._opened_at = self._clock()
        self._probes_issued = 0
        self._probes_ok = 0

    def _close(self, reason: str) -> None:
        self._transition(CLOSED, reason)
        self._outcomes.clear()
        self._opened_at = None
        self._probes_issued = 0
        self._probes_ok = 0

    def _retry_after_locked(self) -> float:
        if self.state == OPEN and self._opened_at is not None:
            remaining = self.config.cooldown_s - (
                self._clock() - self._opened_at)
            return max(0.0, remaining)
        # Half-open with its probe budget in flight: suggest a short
        # wait — the probes decide within about one request.
        return self.config.cooldown_s / 2.0

    # -- the request-path API ------------------------------------------

    def acquire(self) -> str:
        """Admit one request, or shed it.

        Returns the outcome kind the caller must later pass to
        :meth:`record` — ``"closed"`` for normal flow, ``"probe"``
        for a half-open trial — and raises
        :class:`~repro.serve.errors.BreakerOpen` (with the seconds
        until the next probe window) when the request is refused.
        """
        with self._lock:
            if self.state == OPEN:
                assert self._opened_at is not None
                if (self._clock() - self._opened_at
                        >= self.config.cooldown_s):
                    self._transition(HALF_OPEN, "cooldown_elapsed")
                else:
                    self.short_circuits += 1
                    raise BreakerOpen(self.op,
                                      self._retry_after_locked())
            if self.state == HALF_OPEN:
                if self._probes_issued >= self.config.probes:
                    self.short_circuits += 1
                    raise BreakerOpen(self.op,
                                      self._retry_after_locked())
                self._probes_issued += 1
                return "probe"
            return "closed"

    def record(self, kind: str, *, error: bool) -> None:
        """Feed one finished request's outcome back.

        ``kind`` is what :meth:`acquire` returned. Probe outcomes
        drive the half-open verdict; closed outcomes feed the sliding
        window and may trip the breaker.
        """
        with self._lock:
            if kind == "probe":
                if error:
                    self._trip("probe_failed")
                else:
                    self._probes_ok += 1
                    if self._probes_ok >= self.config.probes:
                        self._close("probes_succeeded")
                return
            self._outcomes.append(bool(error))
            if (self.state == CLOSED
                    and len(self._outcomes)
                    >= self.config.min_requests
                    and self._error_rate() >= self.config.threshold):
                self._trip(f"error_rate={self._error_rate():.2f}")

    # -- introspection -------------------------------------------------

    def is_open(self) -> bool:
        with self._lock:
            return self.state == OPEN

    def retry_after_s(self) -> float:
        with self._lock:
            return self._retry_after_locked()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "op": self.op,
                "state": self.state,
                "error_rate": round(self._error_rate(), 4),
                "window_size": len(self._outcomes),
                "short_circuits": self.short_circuits,
                "transitions": len(self.transitions),
                "config": self.config.render(),
            }


class BreakerBoard:
    """The service's per-operation breakers, created lazily from one
    shared :class:`BreakerConfig`."""

    def __init__(self, config: BreakerConfig | str | None = None, *,
                 clock: Callable[[], float] = time.monotonic):
        if config is None:
            config = BreakerConfig.parse(DEFAULT_BREAKER)
        elif isinstance(config, str):
            config = BreakerConfig.parse(config)
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_op(self, op: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(op)
            if breaker is None:
                breaker = CircuitBreaker(op, self.config,
                                         clock=self._clock)
                self._breakers[op] = breaker
            return breaker

    def degraded(self) -> bool:
        """Whether any breaker has left the closed state — the
        service-wide signal that queries should prefer cached history
        over fresh recomputation."""
        with self._lock:
            breakers = list(self._breakers.values())
        return any(b.state != CLOSED for b in breakers)

    def transitions(self) -> list[dict[str, Any]]:
        """Every breaker's transitions, merged in time order."""
        with self._lock:
            breakers = list(self._breakers.values())
        merged: list[dict[str, Any]] = []
        for breaker in breakers:
            with breaker._lock:
                merged.extend(dict(t) for t in breaker.transitions)
        merged.sort(key=lambda t: t["at"])
        return merged

    def recovery_ms(self) -> list[float]:
        """Open -> closed durations (the chaos harness's MTTR input),
        one entry per completed outage, in ms."""
        durations: list[float] = []
        opened_at: dict[str, float] = {}
        for t in self.transitions():
            if t["to"] == OPEN:
                opened_at.setdefault(t["op"], t["at"])
            elif t["to"] == CLOSED and t["op"] in opened_at:
                durations.append(
                    (t["at"] - opened_at.pop(t["op"])) * 1000.0)
        return durations

    def stats(self) -> dict[str, Any]:
        with self._lock:
            breakers = dict(self._breakers)
        return {op: b.stats() for op, b in sorted(breakers.items())}


def with_deadline(config: BreakerConfig,
                  deadline_ms: float | None) -> BreakerConfig:
    """A copy of ``config`` carrying ``deadline_ms`` (the serve edge
    folds its default budget into the rendered policy literal)."""
    return replace(config, deadline_ms=deadline_ms)
