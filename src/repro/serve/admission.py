"""Admission control: bounded queue + max-in-flight, shed by policy.

A resident service under concurrent traffic needs a story for the
moment demand exceeds capacity; "every thread piles onto the GIL" is
not one. The :class:`AdmissionController` enforces two bounds:

* **max_in_flight** — handler slots; at most this many requests
  execute concurrently (a semaphore);
* **queue_limit** — how many admitted requests may *wait* for a slot.
  A request arriving with the queue at capacity is shed immediately
  with :class:`~repro.serve.errors.ServeQueueFull` (503). A queued
  request that no slot reaches within ``queue_timeout_s`` is shed with
  :class:`~repro.serve.errors.ServeOverloaded` (429).

Admission measures its own queue wait, so every ``serve.request`` span
can attribute latency to queue-wait vs. handler-time — the difference
between "the server is slow" and "the server is full".
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import get_registry, is_enabled
from repro.serve.errors import ServeOverloaded, ServeQueueFull


class AdmissionController:
    """Two-stage admission: bounded wait queue, then a handler slot."""

    def __init__(self, max_in_flight: int = 8, queue_limit: int = 32,
                 queue_timeout_s: float = 5.0):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.queue_timeout_s = queue_timeout_s
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._lock = threading.Lock()
        self._waiting = 0
        self._in_flight = 0

    # -- introspection ---------------------------------------------------

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def _record_depths(self) -> None:
        if is_enabled():
            registry = get_registry()
            registry.set_gauge("serve.queue_depth", self._waiting)
            registry.set_gauge("serve.in_flight", self._in_flight)

    # -- admission -------------------------------------------------------

    @contextmanager
    def admit(self) -> Iterator[float]:
        """Admit one request; yields the queue wait in milliseconds.

        Raises :class:`ServeQueueFull` when the wait queue is at its
        bound, :class:`ServeOverloaded` when no handler slot frees up
        within ``queue_timeout_s``. The slot is released when the
        ``with`` block exits, success or not.
        """
        with self._lock:
            if self._waiting >= self.queue_limit + 1:
                # queue_limit counts requests *waiting behind* the one
                # currently eligible for the next slot.
                if is_enabled():
                    registry = get_registry()
                    registry.inc("serve.shed")
                    registry.inc("serve.shed.queue_full")
                raise ServeQueueFull(self.queue_limit)
            self._waiting += 1
            self._record_depths()
        start = time.perf_counter()
        try:
            acquired = self._slots.acquire(timeout=self.queue_timeout_s)
        finally:
            with self._lock:
                self._waiting -= 1
        wait_ms = (time.perf_counter() - start) * 1000.0
        if not acquired:
            if is_enabled():
                registry = get_registry()
                registry.inc("serve.shed")
                registry.inc("serve.shed.overloaded")
                registry.observe("serve.queue_wait_ms", wait_ms)
            raise ServeOverloaded(self.max_in_flight, wait_ms)
        with self._lock:
            self._in_flight += 1
            self._record_depths()
        if is_enabled():
            get_registry().observe("serve.queue_wait_ms", wait_ms)
        try:
            yield wait_ms
        finally:
            self._slots.release()
            with self._lock:
                self._in_flight -= 1
                self._record_depths()

    def stats(self) -> dict[str, float | int]:
        return {
            "max_in_flight": self.max_in_flight,
            "queue_limit": self.queue_limit,
            "queue_timeout_s": self.queue_timeout_s,
            "waiting": self._waiting,
            "in_flight": self._in_flight,
        }
