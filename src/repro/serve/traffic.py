"""Seeded multi-client traffic harness for the resident service.

``python -m repro.serve.traffic --seed 7 --clients 8 --mix
read=0.7,write=0.2,algo=0.1`` boots a server (or targets ``--url``),
replays a *deterministic* request schedule from N concurrent clients,
and reports p50/p95/p99 latency, throughput, shed rate, and cache hit
rate. Cache figures are **deltas** between a ``/metrics`` snapshot
taken before and after the run — against a long-lived ``--url`` server
the absolute counters include every earlier run's traffic, which PR-7
mistakenly reported as this run's hit rate.

Each response's ``X-Repro-Trace`` id is recorded per request, and the
report closes with per-run SLO compliance (``--slo`` literals, or the
service defaults) over the run's own samples.

Determinism is the point: the schedule is pure data derived from
``(seed, clients, requests, mix)`` via per-client
``random.Random(seed * 1000003 + client_index)`` streams, so the same
seed always produces the same request sequence — a load test you can
bisect with. (Wall-clock interleaving across threads still varies;
the *work* does not.)

:class:`TrafficMix` doubles as the config format the
:mod:`repro.analysis` CFG rules validate: weights must be
non-negative, sum to 1, and name only known operation kinds.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from typing import Any
from urllib.parse import urlsplit

from repro.dist.resilience import RetryPolicy
from repro.obs.slo import evaluate_samples
from repro.obs.trace_context import TRACE_HEADER

#: Client-side connection retries share the recovery layer's
#: RetryPolicy (exponential backoff + cap); the jitter fraction
#: desynchronizes concurrent clients, drawn from each client's seeded
#: rng so runs stay reproducible per seed.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_ms=10.0, backoff_factor=2.0,
    backoff_cap_ms=200.0, jitter=0.2)

#: Operation kinds a mix may name, with their request shapes below.
MIX_OPS = ("read", "write", "algo")

#: Traffic op -> the serve request op SLO specs target.
SLO_OP_BY_TRAFFIC_OP = {
    "read": "query",
    "write": "mutate",
    "algo": "algorithm",
}

#: Read queries cycled over the product graph (all strict-valid).
READ_QUERIES = (
    "MATCH (c:Customer)-[:PLACED]->(o:Order) RETURN c, o",
    "MATCH (p:Product) RETURN p",
    "MATCH (o:Order)-[:CONTAINS]->(p:Product) RETURN o, p",
    "MATCH (o:Order)-[:PAID_BY]->(p:Payment) RETURN o, p",
)

#: Algorithms cycled by the algo op (aliases the server resolves).
ALGO_NAMES = ("pagerank", "components", "bfs")


@dataclass(frozen=True)
class TrafficMix:
    """Operation weights; must be non-negative and sum to 1."""

    read: float = 0.7
    write: float = 0.2
    algo: float = 0.1

    def __post_init__(self):
        for op in MIX_OPS:
            if getattr(self, op) < 0:
                raise ValueError(
                    f"mix weight {op}={getattr(self, op)} is negative")
        total = self.read + self.write + self.algo
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"mix weights must sum to 1, got {total:.6f} "
                f"(read={self.read}, write={self.write}, "
                f"algo={self.algo})")

    @classmethod
    def parse(cls, text: str) -> "TrafficMix":
        """Parse ``"read=0.7,write=0.2,algo=0.1"``; unknown op names,
        negative weights, and weights not summing to 1 are errors."""
        weights = dict.fromkeys(MIX_OPS, 0.0)
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep:
                raise ValueError(
                    f"mix entry {part!r} is not of the form op=weight")
            if name not in MIX_OPS:
                raise ValueError(
                    f"unknown traffic op {name!r}; known: "
                    f"{list(MIX_OPS)}")
            try:
                weights[name] = float(value)
            except ValueError:
                raise ValueError(
                    f"mix weight for {name!r} is not a number: "
                    f"{value!r}") from None
        return cls(**weights)

    def as_weights(self) -> list[float]:
        return [getattr(self, op) for op in MIX_OPS]


def build_schedule(seed: int, clients: int, requests: int,
                   mix: TrafficMix) -> list[list[dict[str, Any]]]:
    """The full request plan, one list per client, as plain data.

    Deterministic in its arguments: per-client RNG streams mean client
    ``i``'s schedule does not depend on how many other clients exist
    before it runs.
    """
    plan: list[list[dict[str, Any]]] = []
    weights = mix.as_weights()
    for client in range(clients):
        rng = random.Random(seed * 1000003 + client)
        entries: list[dict[str, Any]] = []
        for step in range(requests):
            op = rng.choices(MIX_OPS, weights=weights, k=1)[0]
            if op == "read":
                entries.append({
                    "op": "read",
                    "query": READ_QUERIES[
                        rng.randrange(len(READ_QUERIES))],
                })
            elif op == "write":
                entries.append({
                    "op": "write",
                    "vertex": f"customer:{rng.randrange(100)}",
                    "key": "last_seen",
                    "value": f"c{client}s{step}",
                })
            else:
                entries.append({
                    "op": "algo",
                    "name": ALGO_NAMES[rng.randrange(len(ALGO_NAMES))],
                })
        plan.append(entries)
    return plan


class ServeClient:
    """A minimal JSON client over one reusable HTTP connection.

    ``last_trace_id`` holds the ``X-Repro-Trace`` id the server echoed
    on the most recent response — the handle a caller needs to fetch
    its own trace from ``/debug/traces/{id}``.
    """

    def __init__(self, url: str, timeout: float = 30.0, *,
                 retry_policy: RetryPolicy | None = None,
                 rng: random.Random | None = None):
        parts = urlsplit(url)
        if parts.hostname is None:
            raise ValueError(f"bad server url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self.retry_policy = retry_policy or DEFAULT_CLIENT_RETRY
        #: Seeded stream for backoff jitter; None disables jitter.
        self.rng = rng
        self.last_trace_id: str | None = None
        self._conn: HTTPConnection | None = None

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
        return self._conn

    def request(self, method: str, path: str,
                payload: dict | None = None, *,
                headers: dict[str, str] | None = None,
                ) -> tuple[int, dict[str, Any]]:
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        policy = self.retry_policy
        response = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=body,
                             headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (OSError, HTTPException):
                # Connection-level failure (an HTTP error status is
                # never retried here): drop the possibly half-closed
                # connection and try a fresh one per the shared
                # RetryPolicy, jittered from this client's seeded rng.
                self.close()
                if attempt >= policy.max_attempts:
                    raise
                time.sleep(
                    policy.backoff_ms(attempt, self.rng) / 1000.0)
        assert response is not None
        self.last_trace_id = response.getheader(TRACE_HEADER)
        data = json.loads(raw) if raw else {}
        return response.status, data

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _entry_request(graph_id: str,
                   entry: dict[str, Any]) -> tuple[str, str, dict]:
    if entry["op"] == "read":
        return ("POST", f"/graphs/{graph_id}/query",
                {"query": entry["query"]})
    if entry["op"] == "write":
        return ("POST", f"/graphs/{graph_id}/mutate",
                {"operations": [{"op": "set_property",
                                 "vertex": entry["vertex"],
                                 "key": entry["key"],
                                 "value": entry["value"]}]})
    payload: dict[str, Any] = {"seed": 0}
    if entry["name"] == "pagerank":
        # PageRank rides the distributed runtime, so a traffic run
        # exercises trace propagation down to per-shard supersteps.
        payload["distributed"] = True
        payload["shards"] = 2
    return ("POST",
            f"/graphs/{graph_id}/algorithms/{entry['name']}",
            payload)


def _percentile(latencies: list[float], q: float) -> float:
    """Exact nearest-rank percentile over raw samples (the client has
    every observation, so no bucket interpolation is needed)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def run_traffic(url: str | None = None, *, seed: int = 7,
                clients: int = 8, requests: int = 25,
                mix: TrafficMix | None = None,
                graph_id: str = "traffic",
                slos: list[str] | None = None) -> dict[str, Any]:
    """Replay the seeded schedule against ``url`` (self-boot a server
    on an ephemeral port when None) and return the report dict."""
    mix = mix or TrafficMix()
    plan = build_schedule(seed, clients, requests, mix)
    if slos is None:
        from repro.serve.service import DEFAULT_SLOS

        slos = list(DEFAULT_SLOS)

    handle = None
    if url is None:
        from repro import obs
        from repro.serve.server import start_server

        obs.enable()
        handle = start_server()
        url = handle.base_url
    try:
        admin = ServeClient(url)
        status, _ = admin.request(
            "POST", "/graphs",
            {"graph_id": graph_id, "scenario": "product",
             "seed": seed})
        if status not in (201, 409):  # 409: already hosted — reuse
            raise RuntimeError(
                f"could not host traffic graph: HTTP {status}")
        # Snapshot counters *before* the run: against a long-lived
        # server the absolute values include pre-run traffic, so the
        # report works in deltas.
        _, metrics_before = admin.request("GET", "/metrics")

        results: list[dict[str, Any]] = []
        results_lock = threading.Lock()

        def worker(index: int,
                   schedule: list[dict[str, Any]]) -> None:
            client = ServeClient(
                url, rng=random.Random(seed * 2000003 + index))
            local: list[dict[str, Any]] = []
            for entry in schedule:
                method, path, payload = _entry_request(graph_id,
                                                       entry)
                start = time.perf_counter()
                status, body = client.request(method, path, payload)
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                local.append({"op": entry["op"], "status": status,
                              "latency_ms": elapsed_ms,
                              "cache": body.get("cache"),
                              "trace_id": client.last_trace_id})
            client.close()
            with results_lock:
                results.extend(local)

        threads = [threading.Thread(target=worker, args=(i, schedule),
                                    name=f"traffic-{i}")
                   for i, schedule in enumerate(plan)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - wall_start

        _, metrics_after = admin.request("GET", "/metrics")
        admin.close()
        return _report(results, wall_s, metrics_before, metrics_after,
                       seed=seed, clients=clients, requests=requests,
                       mix=mix, slos=slos)
    finally:
        if handle is not None:
            handle.shutdown()


def _counter_delta(before: dict[str, Any], after: dict[str, Any],
                   name: str) -> int:
    """This run's contribution to one monotonic counter (clamped at 0
    in case the server restarted mid-run)."""
    b = before.get("counters", {}).get(name, 0)
    a = after.get("counters", {}).get(name, 0)
    return max(0, a - b)


def _report(results: list[dict[str, Any]], wall_s: float,
            metrics_before: dict[str, Any],
            metrics_after: dict[str, Any], *, seed: int, clients: int,
            requests: int, mix: TrafficMix,
            slos: list[str]) -> dict[str, Any]:
    latencies = [r["latency_ms"] for r in results
                 if r["status"] == 200]
    shed = sum(1 for r in results if r["status"] in (429, 503))
    errors = sum(1 for r in results
                 if r["status"] not in (200, 429, 503))
    hits = _counter_delta(metrics_before, metrics_after,
                          "serve.cache_hits")
    misses = _counter_delta(metrics_before, metrics_after,
                            "serve.cache_misses")
    by_op: dict[str, int] = {}
    for r in results:
        by_op[r["op"]] = by_op.get(r["op"], 0) + 1
    samples = [(SLO_OP_BY_TRAFFIC_OP[r["op"]], r["latency_ms"],
                r["status"] != 200) for r in results]
    total = len(results)
    return {
        "schema": "repro.serve.traffic/v2",
        "seed": seed,
        "clients": clients,
        "requests_per_client": requests,
        "mix": {op: getattr(mix, op) for op in MIX_OPS},
        "total_requests": total,
        "by_op": by_op,
        "ok": len(latencies),
        "shed": shed,
        "errors": errors,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 50), 3),
            "p95": round(_percentile(latencies, 95), 3),
            "p99": round(_percentile(latencies, 99), 3),
        },
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (round(hits / (hits + misses), 4)
                         if hits + misses else 0.0),
        },
        "slo": evaluate_samples(slos, samples),
    }


def render_report(report: dict[str, Any]) -> str:
    lat = report["latency_ms"]
    mix = ",".join(f"{op}={w}" for op, w in report["mix"].items())
    lines = [
        f"traffic seed={report['seed']} clients={report['clients']} "
        f"x {report['requests_per_client']} requests  mix {mix}",
        f"  {report['total_requests']} requests in "
        f"{report['wall_s']:.2f}s  "
        f"({report['throughput_rps']:.1f} req/s)",
        f"  latency p50={lat['p50']:.1f}ms p95={lat['p95']:.1f}ms "
        f"p99={lat['p99']:.1f}ms",
        f"  shed {report['shed']}/{report['total_requests']} "
        f"({100 * report['shed_rate']:.1f}%), "
        f"errors {report['errors']}",
        f"  cache hit rate {100 * report['cache']['hit_rate']:.1f}% "
        f"({report['cache']['hits']} hits / "
        f"{report['cache']['misses']} misses, this run)",
    ]
    for row in report.get("slo", ()):
        verdict = "met" if row["met"] else "MISSED"
        lines.append(
            f"  slo {row['spec']}: {verdict}  compliance "
            f"{100 * row['compliance']:.2f}% over {row['events']} "
            f"requests ({row['bad']} bad)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.traffic",
        description="Replay a seeded request mix against the graph "
                    "service and report latency/shed/cache figures.")
    parser.add_argument("--url", default=None,
                        help="target server (default: boot one "
                             "in-process on an ephemeral port)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client")
    parser.add_argument("--mix", default="read=0.7,write=0.2,algo=0.1")
    parser.add_argument("--graph-id", default="traffic")
    parser.add_argument("--slo", action="append", default=None,
                        metavar="SPEC",
                        help="SLO spec to grade the run against "
                             "(repeatable); default: the service "
                             "defaults")
    parser.add_argument("--json", action="store_true",
                        dest="as_json")
    args = parser.parse_args(argv)

    try:
        mix = TrafficMix.parse(args.mix)
        if args.slo is not None:
            from repro.obs.slo import parse_specs

            parse_specs(args.slo)  # fail fast on bad literals
    except ValueError as exc:
        parser.error(str(exc))
    report = run_traffic(args.url, seed=args.seed,
                         clients=args.clients,
                         requests=args.requests, mix=mix,
                         graph_id=args.graph_id, slos=args.slo)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
