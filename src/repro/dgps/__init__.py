"""A single-machine Pregel-style DGPS: the programming model of Giraph /
GraphX / Gelly (the paper's Table 12 "Distributed Graph Processing
Systems" class), with classic vertex programs and a Graft-style debugger
(Table 13 "Specialized Debugger")."""

from repro.dgps.algorithms import (
    pregel_bfs_depth,
    pregel_connected_components,
    pregel_degree,
    pregel_max_value,
    pregel_pagerank,
    pregel_sssp,
)
from repro.dgps.debugger import CapturedRun, captured_run
from repro.dgps.pregel import (
    PregelEngine,
    PregelError,
    PregelResult,
    SuperstepStats,
    VertexContext,
    max_aggregator,
    min_aggregator,
    run_pregel,
    sum_aggregator,
)
