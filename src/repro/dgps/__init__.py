"""A single-machine Pregel-style DGPS: the programming model of Giraph /
GraphX / Gelly (the paper's Table 12 "Distributed Graph Processing
Systems" class), with classic vertex programs and a Graft-style debugger
(Table 13 "Specialized Debugger")."""

from repro.dgps.algorithms import (
    connected_components_spec,
    pagerank_spec,
    pregel_bfs_depth,
    pregel_connected_components,
    pregel_degree,
    pregel_max_value,
    pregel_pagerank,
    pregel_sssp,
    sssp_spec,
)
from repro.dgps.debugger import CapturedRun, captured_run
from repro.dgps.pregel import (
    PregelEngine,
    PregelError,
    PregelResult,
    PregelSpec,
    SuperstepStats,
    VertexContext,
    max_aggregator,
    min_aggregator,
    require_known_vertex,
    run_local_superstep,
    run_pregel,
    sum_aggregator,
)
