"""A Graft-style debugger for vertex-centric computations.

Table 13 lists "Specialized Debugger" among the non-query software
participants use; the paper cites Graft, the debugging tool for Apache
Giraph, as the reference point. This module provides the same core
workflow for :mod:`repro.dgps.pregel` runs:

* **capture** -- record every vertex's value at every superstep;
* **replay** -- inspect a vertex's value timeline;
* **diff** -- which vertices changed between two supersteps;
* **anomaly scan** -- vertices whose values violate a user predicate, or
  that keep oscillating after the rest of the graph has stabilized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dgps.pregel import PregelEngine, PregelResult
from repro.graphs.adjacency import Vertex


@dataclass
class CapturedRun:
    """Everything the debugger recorded about one Pregel run."""

    result: PregelResult
    snapshots: list[dict[Vertex, Any]] = field(default_factory=list)

    def supersteps(self) -> int:
        return len(self.snapshots)

    def value_at(self, vertex: Vertex, superstep: int) -> Any:
        return self.snapshots[superstep][vertex]

    def timeline(self, vertex: Vertex) -> list[Any]:
        """The vertex's value after every superstep."""
        return [snapshot[vertex] for snapshot in self.snapshots]

    def changed_between(self, old: int, new: int) -> set[Vertex]:
        """Vertices whose value differs between two supersteps."""
        before, after = self.snapshots[old], self.snapshots[new]
        return {v for v in after if before[v] != after[v]}

    def converged_at(self, vertex: Vertex) -> int | None:
        """First superstep after which the vertex's value never changes
        again (None if it changed in the final step)."""
        values = self.timeline(vertex)
        last = values[-1]
        for step in range(len(values)):
            if all(v == last for v in values[step:]):
                return step
        return None

    def find_violations(
        self,
        predicate: Callable[[Vertex, Any], bool],
        superstep: int = -1,
    ) -> list[Vertex]:
        """Vertices whose value fails ``predicate`` at a superstep."""
        snapshot = self.snapshots[superstep]
        return [v for v, value in snapshot.items()
                if not predicate(v, value)]

    def stragglers(self, tail: int = 3) -> set[Vertex]:
        """Vertices still changing during the last ``tail`` supersteps --
        the usual suspects when a computation fails to converge."""
        if len(self.snapshots) <= tail:
            return set()
        suspects: set[Vertex] = set()
        for step in range(len(self.snapshots) - tail,
                          len(self.snapshots)):
            suspects |= self.changed_between(step - 1, step)
        return suspects

    def summary(self) -> str:
        lines = [
            f"captured {self.supersteps()} supersteps over "
            f"{len(self.snapshots[0]) if self.snapshots else 0} vertices",
        ]
        for stat in self.result.stats:
            lines.append(
                f"  superstep {stat.superstep}: "
                f"{stat.active_vertices} active, "
                f"{stat.messages_sent} messages")
        return "\n".join(lines)


def captured_run(engine: PregelEngine) -> CapturedRun:
    """Run an engine with capture enabled and return the recording.

    Capture consumes the engine's :mod:`repro.obs` superstep span
    events: each finished ``pregel.superstep`` span carries a ``values``
    snapshot (enabled via :meth:`PregelEngine.capture_values`), which
    becomes one debugger snapshot. Spans are ordered by superstep, so
    the recording indexes line up with :class:`SuperstepStats`.
    """
    snapshots: list[dict[Vertex, Any]] = []
    engine.capture_values()
    engine.on_superstep_span(
        lambda step_span: snapshots.append(
            dict(step_span.attributes["values"])))
    result = engine.run()
    return CapturedRun(result=result, snapshots=snapshots)
