"""Classic algorithms expressed as Pregel vertex programs.

These are the canonical DGPS kernels -- the ones Pregel's own paper and
every Giraph/GraphX tutorial use -- implemented on
:mod:`repro.dgps.pregel` and tested for equivalence against the direct
implementations in :mod:`repro.algorithms`.
"""

from __future__ import annotations

from typing import Hashable

from repro.dgps.pregel import (
    PregelResult,
    PregelSpec,
    VertexContext,
    run_pregel,
    sum_aggregator,
)
from repro.graphs.adjacency import Graph, Vertex

INFINITY = float("inf")


def _built(spec: PregelSpec, strict: bool) -> PregelSpec:
    """Builder tail: ``strict=True`` statically analyzes the spec at
    build time (raising :class:`repro.analysis.AnalysisError` on error
    findings, recording findings as obs span events)."""
    if strict:
        spec.analyze(strict=True)
    return spec


def pagerank_spec(
    graph: Graph,
    damping: float = 0.85,
    supersteps: int = 30,
    strict: bool = False,
) -> PregelSpec:
    """The PageRank vertex program as an executor-independent spec.

    Dangling mass is redistributed uniformly via a sum aggregator, so
    the scores agree with :func:`repro.algorithms.pagerank` run for the
    same number of power iterations. ``graph`` is only consulted for
    emptiness checks — the spec itself runs unchanged on
    :class:`~repro.dgps.pregel.PregelEngine` or :mod:`repro.dist`.
    """

    def program(ctx: VertexContext):
        if ctx.superstep == 0:
            value = 1.0 / ctx.num_vertices
        else:
            received = sum(ctx.messages)
            dangling = ctx.aggregated("dangling") or 0.0
            value = ((1 - damping) / ctx.num_vertices
                     + damping * (received + dangling / ctx.num_vertices))
        if ctx.superstep < supersteps:
            out = ctx.num_out_edges()
            if out:
                ctx.send_to_neighbors(value / out)
            else:
                ctx.aggregate("dangling", value)
        else:
            ctx.vote_to_halt()
        return value

    return _built(PregelSpec(
        program=program,
        initial_value=0.0,
        combiner=lambda a, b: a + b,
        aggregators={"dangling": sum_aggregator()},
        max_supersteps=supersteps + 2), strict)


def pregel_pagerank(
    graph: Graph,
    damping: float = 0.85,
    supersteps: int = 30,
) -> dict[Vertex, float]:
    """Fixed-iteration PageRank (the Pregel paper's flagship example)."""
    if graph.num_vertices() == 0:
        return {}
    return pagerank_spec(graph, damping, supersteps).run(graph).values


def _smaller_label(a, b):
    return a if (repr(a), repr(a)) <= (repr(b), repr(b)) else b


def connected_components_spec(graph: Graph,
                              strict: bool = False) -> PregelSpec:
    """HashMin label propagation as an executor-independent spec.

    The reverse-edge lists are captured from ``graph`` at spec-build
    time (directed graphs propagate labels both ways to find *weakly*
    connected components), so run the spec on the same graph.
    """
    reverse_edges: dict[Vertex, list[Vertex]] = {
        v: [] for v in graph.vertices()}
    if graph.directed:
        for edge in graph.edges():
            reverse_edges[edge.v].append(edge.u)

    def program(ctx: VertexContext):
        if ctx.superstep == 0:
            label = ctx.vertex
        else:
            label = ctx.value
            for message in ctx.messages:
                label = _smaller_label(label, message)
            if label == ctx.value:
                ctx.vote_to_halt()
                return label
        ctx.send_to_neighbors(label)
        for backward in reverse_edges[ctx.vertex]:
            ctx.send(backward, label)
        return label

    return _built(PregelSpec(
        program=program,
        combiner=_smaller_label,
        max_supersteps=graph.num_vertices() + 2), strict)


def pregel_connected_components(graph: Graph) -> dict[Vertex, Hashable]:
    """HashMin label propagation: every vertex converges to the smallest
    (by repr) vertex id in its weakly connected component."""
    return connected_components_spec(graph).run(graph).values


def sssp_spec(graph: Graph, source: Vertex,
              strict: bool = False) -> PregelSpec:
    """Shortest-path relaxation as an executor-independent spec."""

    def program(ctx: VertexContext):
        if ctx.superstep == 0:
            distance = 0.0 if ctx.vertex == source else INFINITY
            improved = distance < INFINITY
        else:
            best = min(ctx.messages, default=INFINITY)
            distance = min(ctx.value, best)
            improved = distance < ctx.value
        if improved:
            for neighbor, weight in ctx.out_edges():
                ctx.send(neighbor, distance + weight)
        ctx.vote_to_halt()
        return distance

    return _built(PregelSpec(
        program=program,
        initial_value=INFINITY,
        combiner=min,
        max_supersteps=graph.num_vertices() + 2), strict)


def pregel_sssp(
    graph: Graph,
    source: Vertex,
) -> dict[Vertex, float]:
    """Single-source shortest paths by distance relaxation (weighted,
    non-negative). Unreached vertices end at ``inf``."""
    return sssp_spec(graph, source).run(graph).values


def pregel_degree(graph: Graph) -> dict[Vertex, int]:
    """Trivial one-superstep kernel: each vertex records its out-degree
    (total degree for undirected graphs)."""

    def program(ctx: VertexContext):
        ctx.vote_to_halt()
        return ctx.num_out_edges()

    return run_pregel(graph, program, initial_value=0,
                      max_supersteps=2).values


def pregel_max_value(graph: Graph,
                     values: dict[Vertex, float]) -> dict[Vertex, float]:
    """The Pregel paper's introductory example: propagate the maximum
    value until every vertex knows the global maximum (per weakly
    connected component)."""
    reverse_edges: dict[Vertex, list[Vertex]] = {
        v: [] for v in graph.vertices()}
    if graph.directed:
        for edge in graph.edges():
            reverse_edges[edge.v].append(edge.u)

    def program(ctx: VertexContext):
        current = ctx.value
        changed = ctx.superstep == 0
        for message in ctx.messages:
            if message > current:
                current = message
                changed = True
        if changed:
            ctx.send_to_neighbors(current)
            for backward in reverse_edges[ctx.vertex]:
                ctx.send(backward, current)
        ctx.vote_to_halt()
        return current

    result = run_pregel(
        graph, program,
        initial_value=lambda v: values[v],
        combiner=max,
        max_supersteps=graph.num_vertices() + 2)
    return result.values


def pregel_bfs_depth(graph: Graph, source: Vertex) -> dict[Vertex, float]:
    """BFS depths as a unit-weight SSSP specialization."""
    unit = Graph(directed=graph.directed, multigraph=True)
    unit.add_vertices(graph.vertices())
    for edge in graph.edges():
        unit.add_edge(edge.u, edge.v, weight=1.0)
    return pregel_sssp(unit, source)


def superstep_count(result: PregelResult) -> int:
    return result.supersteps
