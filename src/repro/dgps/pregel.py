"""A Pregel-style vertex-centric computation engine.

Distributed graph processing systems (Giraph, GraphX, Gelly) are the
academic workhorses of the paper's Table 12 (17 of 90 papers) and the
survey's least-adopted system class (14 users). Their shared programming
model is Pregel's bulk-synchronous "think like a vertex": per superstep,
every active vertex receives its messages, updates its value, sends
messages along edges, and may vote to halt.

This module implements that model faithfully on one machine:

* superstep barriers with message delivery at the next superstep;
* vote-to-halt semantics with reactivation on message receipt;
* combiners (associative message pre-aggregation);
* aggregators (global per-superstep reductions, Pregel-style);
* observability via :mod:`repro.obs`: one span per superstep carrying
  active-vertex / message counts (plus value snapshots on demand),
  consumed by :mod:`repro.dgps.debugger`; the legacy trace hook is a
  thin adapter over those span events.

The classic algorithms expressed on top of it live in
:mod:`repro.dgps.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.graphs.adjacency import Graph, Vertex
from repro.obs import (
    Span,
    current_deadline,
    forced_span,
    get_registry,
    is_enabled,
    span,
)


class PregelError(ReproError):
    """A vertex program misbehaved or the run exceeded its budget."""


@dataclass
class VertexContext:
    """Everything a vertex program sees during one superstep."""

    vertex: Vertex
    value: Any
    superstep: int
    messages: list[Any]
    _engine: "PregelEngine"
    _halted: bool = False
    _out_edges: list[tuple[Vertex, float]] = field(default_factory=list)

    def out_edges(self) -> list[tuple[Vertex, float]]:
        """(neighbor, weight) pairs for this vertex's out-edges."""
        return list(self._out_edges)

    def num_out_edges(self) -> int:
        return len(self._out_edges)

    def send(self, target: Vertex, message: Any) -> None:
        """Deliver a message to ``target`` at the next superstep."""
        self._engine._enqueue(target, message)

    def send_to_neighbors(self, message: Any) -> None:
        for neighbor, _ in self._out_edges:
            self._engine._enqueue(neighbor, message)

    def vote_to_halt(self) -> None:
        """Deactivate; the vertex reactivates if a message arrives."""
        self._halted = True

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a global aggregator for this superstep."""
        self._engine._aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """The aggregator's value from the *previous* superstep."""
        return self._engine._previous_aggregates.get(name)

    @property
    def num_vertices(self) -> int:
        return self._engine.num_vertices


#: A vertex program: mutates/returns the vertex value given its context.
VertexProgram = Callable[[VertexContext], Any]
#: A combiner folds two messages for the same target into one.
Combiner = Callable[[Any, Any], Any]
#: An aggregator reduce function plus an identity element.
Aggregator = tuple[Callable[[Any, Any], Any], Any]


def require_known_vertex(known, target: Vertex) -> None:
    """Reject a message aimed at a vertex that is not in the graph.

    ``known`` is any container supporting ``in`` over the graph's
    vertices (the engine's value map, a shard assignment, ...). Shared
    by :meth:`PregelEngine._enqueue` and :mod:`repro.dist` message
    routing so both fail at the *send* site with the same clear error
    instead of corrupting a later superstep.
    """
    if target not in known:
        raise PregelError(
            f"message sent to unknown vertex {target!r}: "
            f"message targets must be vertices of the graph")


def run_local_superstep(
    host,
    program: VertexProgram,
    superstep: int,
    active: Iterable[Vertex],
    values: dict[Vertex, Any],
    inbox: dict[Vertex, list[Any]],
    out_edges: dict[Vertex, list[tuple[Vertex, float]]],
    halted: set[Vertex],
) -> None:
    """Superstep-local compute, shared by every BSP executor.

    Runs ``program`` over ``active`` vertices, mutating ``values`` and
    ``halted`` in place. ``host`` receives the sends/aggregations: it
    must provide ``_enqueue``, ``_aggregate``, ``_previous_aggregates``
    and ``num_vertices`` — the surface :class:`VertexContext` uses.
    :class:`PregelEngine` passes itself (whole graph); a
    :class:`repro.dist.worker.Worker` passes itself (one shard), which
    is what keeps distributed supersteps bit-for-bit the same compute
    as the single-machine engine.
    """
    for vertex in active:
        halted.discard(vertex)
        context = VertexContext(
            vertex=vertex,
            value=values[vertex],
            superstep=superstep,
            messages=inbox.get(vertex, []),
            _engine=host,
            _out_edges=out_edges[vertex],
        )
        new_value = program(context)
        if new_value is not None:
            values[vertex] = new_value
        else:
            values[vertex] = context.value
        if context._halted:
            halted.add(vertex)


@dataclass(frozen=True)
class SuperstepStats:
    """Observability record for one superstep."""

    superstep: int
    active_vertices: int
    messages_sent: int
    aggregates: dict[str, Any]


@dataclass
class PregelResult:
    """Final vertex values plus the execution trace."""

    values: dict[Vertex, Any]
    supersteps: int
    stats: list[SuperstepStats]

    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)


class PregelEngine:
    """Single-machine BSP executor for vertex programs."""

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        initial_value: Callable[[Vertex], Any] | Any = None,
        combiner: Combiner | None = None,
        aggregators: dict[str, Aggregator] | None = None,
        max_supersteps: int = 100,
    ):
        self._graph = graph
        self._program = program
        self._combiner = combiner
        self._aggregators = dict(aggregators or {})
        self._max_supersteps = max_supersteps
        self.num_vertices = graph.num_vertices()

        self._values: dict[Vertex, Any] = {}
        for vertex in graph.vertices():
            if callable(initial_value):
                self._values[vertex] = initial_value(vertex)
            else:
                self._values[vertex] = initial_value
        self._out_edges: dict[Vertex, list[tuple[Vertex, float]]] = {
            v: [] for v in graph.vertices()}
        for edge in graph.edges():
            self._out_edges[edge.u].append((edge.v, edge.weight))
            if not graph.directed and edge.u != edge.v:
                self._out_edges[edge.v].append((edge.u, edge.weight))

        self._inbox: dict[Vertex, list[Any]] = {}
        self._next_inbox: dict[Vertex, list[Any]] = {}
        self._halted: set[Vertex] = set()
        self._messages_this_step = 0
        self._current_aggregates: dict[str, Any] = {}
        self._previous_aggregates: dict[str, Any] = {}
        self._span_listeners: list[Callable[[Span], None]] = []
        self._capture_values = False

    # -- engine internals (called by VertexContext) ---------------------

    def _enqueue(self, target: Vertex, message: Any) -> None:
        require_known_vertex(self._values, target)
        self._messages_this_step += 1
        box = self._next_inbox
        if self._combiner is not None and target in box:
            box[target] = [self._combiner(box[target][0], message)]
        else:
            box.setdefault(target, []).append(message)

    def _aggregate(self, name: str, value: Any) -> None:
        try:
            reduce_fn, identity = self._aggregators[name]
        except KeyError:
            raise PregelError(f"unknown aggregator {name!r}") from None
        current = self._current_aggregates.get(name, identity)
        self._current_aggregates[name] = reduce_fn(current, value)

    # -- public API ------------------------------------------------------

    def on_superstep_span(
        self, listener: Callable[[Span], None],
    ) -> None:
        """Register a listener for finished ``pregel.superstep`` spans.

        Each superstep closes one :class:`repro.obs.Span` carrying
        ``superstep``, ``active_vertices``, ``messages_sent`` and
        ``aggregates`` attributes (plus ``values``, a snapshot of every
        vertex value, when :meth:`capture_values` is on). Listeners
        receive the span immediately after it closes, even while global
        tracing is disabled.
        """
        self._span_listeners.append(listener)

    def capture_values(self, on: bool = True) -> None:
        """Attach a full vertex-value snapshot to each superstep span
        (the debugger's food; off by default because snapshots are
        O(vertices) per superstep)."""
        self._capture_values = on

    def set_trace_hook(
        self, hook: Callable[[int, dict[Vertex, Any]], None],
    ) -> None:
        """Legacy hook API, kept as a thin adapter over the
        :mod:`repro.obs` span events: ``hook(superstep, values)`` is
        called from each finished superstep span."""
        self.capture_values()
        self.on_superstep_span(
            lambda sp: hook(sp.attributes["superstep"],
                            sp.attributes["values"]))

    def _observing(self) -> bool:
        return bool(self._span_listeners) or self._capture_values

    def run(self) -> PregelResult:
        """Execute supersteps until every vertex halts with no messages
        in flight, or the budget is exhausted (then raises
        :class:`PregelError`)."""
        with span("pregel.run", vertices=self.num_vertices) as run_span:
            result = self._run_supersteps()
            run_span.set("supersteps", result.supersteps)
            run_span.set("messages", result.total_messages())
        if is_enabled():
            from repro.obs.memory import record_memory_gauges

            record_memory_gauges(prefix="pregel.mem")
        return result

    def _run_supersteps(self) -> PregelResult:
        stats: list[SuperstepStats] = []
        metrics = get_registry() if is_enabled() else None
        deadline = current_deadline()
        superstep = 0
        while superstep < self._max_supersteps:
            # Superstep boundaries are the engine's cooperative yield
            # points: an expired request budget surfaces here rather
            # than interrupting a compute() mid-vertex.
            if deadline is not None:
                deadline.check(f"pregel.superstep:{superstep}")
            active = [
                v for v in self._values
                if v not in self._halted or v in self._inbox
            ]
            if not active:
                break
            # Listeners (debugger, legacy trace hooks) need real span
            # objects even when global tracing is off; the plain gated
            # constructor keeps the no-listener path allocation-free.
            if self._observing():
                step_span = forced_span("pregel.superstep",
                                        superstep=superstep)
            else:
                step_span = span("pregel.superstep", superstep=superstep)
            with step_span:
                self._messages_this_step = 0
                self._current_aggregates = {
                    name: identity
                    for name, (_, identity) in self._aggregators.items()}
                run_local_superstep(
                    self, self._program, superstep, active,
                    self._values, self._inbox, self._out_edges,
                    self._halted)
                stats.append(SuperstepStats(
                    superstep=superstep,
                    active_vertices=len(active),
                    messages_sent=self._messages_this_step,
                    aggregates=dict(self._current_aggregates)))
                step_span.set("active_vertices", len(active))
                step_span.set("messages_sent", self._messages_this_step)
                step_span.set("aggregates",
                              dict(self._current_aggregates))
                if self._capture_values:
                    step_span.set("values", dict(self._values))
            for listener in self._span_listeners:
                listener(step_span)  # closed span, timing complete
            if metrics is not None:
                metrics.inc("pregel.supersteps")
                metrics.inc("pregel.messages_sent",
                            self._messages_this_step)
                metrics.observe("pregel.superstep_ms",
                                step_span.duration_ms)
            self._previous_aggregates = dict(self._current_aggregates)
            self._inbox = self._next_inbox
            self._next_inbox = {}
            superstep += 1
        else:
            raise PregelError(
                f"computation did not finish within "
                f"{self._max_supersteps} supersteps")
        return PregelResult(values=dict(self._values),
                            supersteps=superstep, stats=stats)


@dataclass(frozen=True)
class PregelSpec:
    """A complete vertex-program configuration, independent of the
    executor.

    Bundles everything :func:`run_pregel` takes besides the graph, so
    the same computation can be handed unchanged to the single-machine
    :class:`PregelEngine` or to the sharded runtime in
    :mod:`repro.dist` (``run_distributed_pregel(graph, spec, k=8)``).
    """

    program: VertexProgram
    initial_value: Callable[[Vertex], Any] | Any = None
    combiner: Combiner | None = None
    aggregators: dict[str, Aggregator] | None = None
    max_supersteps: int = 100

    def analyze(self, strict: bool = False):
        """Run :mod:`repro.analysis` over the program and spec values.

        Returns the :class:`~repro.analysis.AnalysisReport`; with
        ``strict=True``, error findings raise
        :class:`~repro.analysis.AnalysisError` instead of merely being
        reported (and findings are recorded as obs span events either
        way)."""
        from repro.analysis import analyze_spec

        return analyze_spec(self, strict=strict)

    def run(self, graph: Graph, strict: bool = False) -> PregelResult:
        """Execute on the single-machine engine (``strict=True``
        analyzes the spec first)."""
        if strict:
            self.analyze(strict=True)
        return run_pregel(
            graph, self.program, initial_value=self.initial_value,
            combiner=self.combiner, aggregators=self.aggregators,
            max_supersteps=self.max_supersteps)


def run_pregel(
    graph: Graph,
    program: VertexProgram,
    initial_value: Callable[[Vertex], Any] | Any = None,
    combiner: Combiner | None = None,
    aggregators: dict[str, Aggregator] | None = None,
    max_supersteps: int = 100,
    trace_hook: Callable[[int, dict[Vertex, Any]], None] | None = None,
    strict: bool = False,
) -> PregelResult:
    """One-shot convenience wrapper around :class:`PregelEngine`
    (``strict=True`` runs :mod:`repro.analysis` over the program
    first, raising on error findings)."""
    if strict:
        PregelSpec(program=program, initial_value=initial_value,
                   combiner=combiner, aggregators=aggregators,
                   max_supersteps=max_supersteps).analyze(strict=True)
    engine = PregelEngine(
        graph, program, initial_value=initial_value, combiner=combiner,
        aggregators=aggregators, max_supersteps=max_supersteps)
    if trace_hook is not None:
        engine.set_trace_hook(trace_hook)
    return engine.run()


def sum_aggregator() -> Aggregator:
    return (lambda a, b: a + b, 0)


def max_aggregator() -> Aggregator:
    return (lambda a, b: b if a is None or b > a else a, None)


def min_aggregator() -> Aggregator:
    return (lambda a, b: b if a is None or b < a else a, None)
