"""Compressed-sparse-row snapshot of a graph for numpy analytics.

Iterative whole-graph computations (PageRank, spectral clustering, label
propagation at scale) are much faster on flat arrays than on dict
adjacency. :class:`CSRGraph` freezes a :class:`~repro.graphs.adjacency.
Graph` into indptr/indices/weights arrays plus a vertex <-> index mapping.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import VertexNotFound
from repro.graphs.adjacency import Graph, Vertex


class CSRGraph:
    """Immutable CSR adjacency over integer vertex indices."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        vertex_order: Sequence[Vertex],
        directed: bool,
    ):
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(indices) != len(weights):
            raise ValueError("indices and weights must align")
        if len(indptr) != len(vertex_order) + 1:
            raise ValueError("indptr must have num_vertices + 1 entries")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.vertex_order = list(vertex_order)
        self.directed = directed
        self._index_of = {v: i for i, v in enumerate(self.vertex_order)}

    # -- construction --------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot a graph. Undirected edges appear in both rows."""
        order = list(graph.vertices())
        index_of = {v: i for i, v in enumerate(order)}
        n = len(order)
        degrees = np.zeros(n + 1, dtype=np.int64)
        rows: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for edge in graph.edges():
            ui, vi = index_of[edge.u], index_of[edge.v]
            rows[ui].append((vi, edge.weight))
            if not graph.directed and ui != vi:
                rows[vi].append((ui, edge.weight))
        for i, row in enumerate(rows):
            degrees[i + 1] = len(row)
        indptr = np.cumsum(degrees)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        weights = np.empty(nnz, dtype=np.float64)
        for i, row in enumerate(rows):
            row.sort()
            start = indptr[i]
            for offset, (j, w) in enumerate(row):
                indices[start + offset] = j
                weights[start + offset] = w
        return cls(indptr=indptr, indices=indices, weights=weights,
                   vertex_order=order, directed=graph.directed)

    @classmethod
    def from_edge_array(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        num_vertices: int,
        weights: np.ndarray | None = None,
        directed: bool = True,
    ) -> "CSRGraph":
        """Build directly from parallel source/target index arrays."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same shape")
        if weights is None:
            weights = np.ones(len(sources), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        if not directed:
            loop = sources == targets
            sources, targets = (
                np.concatenate([sources, targets[~loop]]),
                np.concatenate([targets, sources[~loop]]),
            )
            weights = np.concatenate([weights, weights[~loop]])
        order = np.argsort(sources, kind="stable")
        sources, targets = sources[order], targets[order]
        weights = weights[order]
        counts = np.bincount(sources, minlength=num_vertices)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(indptr=indptr.astype(np.int64), indices=targets,
                   weights=weights, vertex_order=list(range(num_vertices)),
                   directed=directed)

    # -- access ----------------------------------------------------------

    def num_vertices(self) -> int:
        return len(self.vertex_order)

    def num_edges(self) -> int:
        """Stored rows; undirected edges count once."""
        nnz = len(self.indices)
        return nnz if self.directed else (nnz + self._num_loops()) // 2

    def _num_loops(self) -> int:
        loops = 0
        for i in range(self.num_vertices()):
            row = self.indices[self.indptr[i]:self.indptr[i + 1]]
            loops += int(np.count_nonzero(row == i))
        return loops

    def index(self, vertex: Vertex) -> int:
        try:
            return self._index_of[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    def vertex(self, index: int) -> Vertex:
        return self.vertex_order[index]

    def neighbors_of_index(self, index: int) -> np.ndarray:
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def weights_of_index(self, index: int) -> np.ndarray:
        return self.weights[self.indptr[index]:self.indptr[index + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.indices, minlength=self.num_vertices())

    def transpose(self) -> "CSRGraph":
        """The reverse graph (same object semantics for undirected)."""
        n = self.num_vertices()
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        new_sources = self.indices[order]
        new_targets = sources[order]
        new_weights = self.weights[order]
        counts = np.bincount(new_sources, minlength=n)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return CSRGraph(indptr=indptr, indices=new_targets,
                        weights=new_weights, vertex_order=self.vertex_order,
                        directed=self.directed)

    def labels_to_vertices(self, values: Iterable) -> dict[Vertex, object]:
        """Zip an index-aligned result array back onto vertex ids."""
        return {self.vertex_order[i]: value
                for i, value in enumerate(values)}
