"""The core in-memory graph: directed or undirected, simple or multigraph.

The survey's Table 7 shows all four topology combinations in real use, so
:class:`Graph` supports every combination behind one API. Edges are stored
centrally by integer id with adjacency indexes on both endpoints, giving
O(1) edge counting, cheap removal, and first-class parallel edges.

Vertices are arbitrary hashable values. Edge weights default to 1.0; the
algorithms treat them as costs (paths, MST) or capacities as documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import EdgeNotFound, ParallelEdgeError, VertexNotFound

Vertex = Hashable


@dataclass(frozen=True)
class Edge:
    """An edge record: endpoints, id, and weight.

    For undirected graphs ``u``/``v`` preserve insertion order but the edge
    is traversable both ways.
    """

    edge_id: int
    u: Vertex
    v: Vertex
    weight: float = 1.0

    def other(self, vertex: Vertex) -> Vertex:
        """The endpoint opposite to ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"{vertex!r} is not an endpoint of {self!r}")


class Graph:
    """Adjacency-indexed graph.

    Args:
        directed: if False, every edge is traversable both ways.
        multigraph: if False, adding a second edge between the same pair
            (same direction for directed graphs) raises
            :class:`~repro.errors.ParallelEdgeError`.
    """

    def __init__(self, directed: bool = True, multigraph: bool = False):
        self._directed = directed
        self._multigraph = multigraph
        self._edges: dict[int, Edge] = {}
        self._next_edge_id = 0
        # vertex -> neighbor -> set of edge ids
        self._out: dict[Vertex, dict[Vertex, set[int]]] = {}
        self._in: dict[Vertex, dict[Vertex, set[int]]] = {}

    # -- basic properties -------------------------------------------------

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def multigraph(self) -> bool:
        return self._multigraph

    def num_vertices(self) -> int:
        return len(self._out)

    def num_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._out

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        multi = "multigraph" if self._multigraph else "simple"
        return (f"<{type(self).__name__} {kind} {multi} "
                f"V={self.num_vertices()} E={self.num_edges()}>")

    # -- mutation ----------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add a vertex (idempotent). Returns the vertex."""
        if vertex not in self._out:
            self._out[vertex] = {}
            self._in[vertex] = {}
        return vertex

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> int:
        """Add an edge and return its id; endpoints are added as needed."""
        self.add_vertex(u)
        self.add_vertex(v)
        if not self._multigraph and v in self._out[u]:
            raise ParallelEdgeError(
                f"simple graph already has an edge {u!r} -> {v!r}")
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        self._edges[edge_id] = Edge(edge_id=edge_id, u=u, v=v, weight=weight)
        self._out[u].setdefault(v, set()).add(edge_id)
        self._in[v].setdefault(u, set()).add(edge_id)
        if not self._directed and u != v:
            self._out[v].setdefault(u, set()).add(edge_id)
            self._in[u].setdefault(v, set()).add(edge_id)
        return edge_id

    def add_edges(self, pairs: Iterable[tuple[Vertex, Vertex]]) -> list[int]:
        return [self.add_edge(u, v) for u, v in pairs]

    def remove_edge(self, edge_id: int) -> Edge:
        """Remove an edge by id and return its record."""
        try:
            edge = self._edges.pop(edge_id)
        except KeyError:
            raise EdgeNotFound(f"id {edge_id}") from None
        self._unlink(edge.u, edge.v, edge_id)
        if not self._directed and edge.u != edge.v:
            self._unlink(edge.v, edge.u, edge_id)
        return edge

    def _unlink(self, u: Vertex, v: Vertex, edge_id: int) -> None:
        bucket = self._out[u][v]
        bucket.discard(edge_id)
        if not bucket:
            del self._out[u][v]
        bucket = self._in[v][u]
        bucket.discard(edge_id)
        if not bucket:
            del self._in[v][u]

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove a vertex and every incident edge."""
        if vertex not in self._out:
            raise VertexNotFound(vertex)
        incident = {eid for bucket in self._out[vertex].values()
                    for eid in bucket}
        incident |= {eid for bucket in self._in[vertex].values()
                     for eid in bucket}
        for edge_id in incident:
            self.remove_edge(edge_id)
        del self._out[vertex]
        del self._in[vertex]

    # -- access ------------------------------------------------------------

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._out)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def edge(self, edge_id: int) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise EdgeNotFound(f"id {edge_id}") from None

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff an edge u->v exists (either direction if undirected)."""
        return u in self._out and v in self._out[u]

    def edge_ids(self, u: Vertex, v: Vertex) -> frozenset[int]:
        """Ids of all parallel edges u->v (empty frozenset when none)."""
        if u not in self._out:
            raise VertexNotFound(u)
        return frozenset(self._out[u].get(v, frozenset()))

    def edge_weight(self, u: Vertex, v: Vertex) -> float:
        """Minimum weight among parallel edges u->v.

        Taking the minimum makes weighted algorithms (Dijkstra, MST) treat
        a multigraph like its cheapest simple projection.
        """
        ids = self.edge_ids(u, v)
        if not ids:
            raise EdgeNotFound(f"{u!r} -> {v!r}")
        return min(self._edges[eid].weight for eid in ids)

    def out_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Successors (all neighbors for undirected graphs)."""
        try:
            return iter(self._out[vertex])
        except KeyError:
            raise VertexNotFound(vertex) from None

    def in_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Predecessors (all neighbors for undirected graphs)."""
        try:
            return iter(self._in[vertex])
        except KeyError:
            raise VertexNotFound(vertex) from None

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Out- and in-neighbors combined, each reported once."""
        if vertex not in self._out:
            raise VertexNotFound(vertex)
        seen = set(self._out[vertex])
        yield from self._out[vertex]
        for u in self._in[vertex]:
            if u not in seen:
                yield u

    def out_degree(self, vertex: Vertex) -> int:
        """Number of outgoing edges (counting parallel edges)."""
        if vertex not in self._out:
            raise VertexNotFound(vertex)
        return sum(len(bucket) for bucket in self._out[vertex].values())

    def in_degree(self, vertex: Vertex) -> int:
        if vertex not in self._in:
            raise VertexNotFound(vertex)
        return sum(len(bucket) for bucket in self._in[vertex].values())

    def degree(self, vertex: Vertex) -> int:
        """Total degree. Undirected self-loops count twice, as usual."""
        if self._directed:
            return self.out_degree(vertex) + self.in_degree(vertex)
        loops = len(self._out[vertex].get(vertex, ()))
        return self.out_degree(vertex) + loops

    def incident_edges(self, vertex: Vertex) -> Iterator[Edge]:
        """All edges touching a vertex (out then in, deduplicated)."""
        if vertex not in self._out:
            raise VertexNotFound(vertex)
        seen: set[int] = set()
        for bucket in self._out[vertex].values():
            for edge_id in bucket:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self._edges[edge_id]
        for bucket in self._in[vertex].values():
            for edge_id in bucket:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self._edges[edge_id]

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "Graph":
        clone = type(self)(directed=self._directed,
                           multigraph=self._multigraph)
        clone.add_vertices(self.vertices())
        for edge in self.edges():
            clone.add_edge(edge.u, edge.v, weight=edge.weight)
        return clone

    def reverse(self) -> "Graph":
        """Edge-reversed copy (identity for undirected graphs)."""
        clone = Graph(directed=self._directed, multigraph=self._multigraph)
        clone.add_vertices(self.vertices())
        for edge in self.edges():
            if self._directed:
                clone.add_edge(edge.v, edge.u, weight=edge.weight)
            else:
                clone.add_edge(edge.u, edge.v, weight=edge.weight)
        return clone

    def to_undirected(self) -> "Graph":
        """Undirected projection; parallel directed edges are preserved
        only when this graph is a multigraph, otherwise merged."""
        clone = Graph(directed=False, multigraph=self._multigraph)
        clone.add_vertices(self.vertices())
        seen_pairs: set[frozenset] = set()
        for edge in self.edges():
            if not self._multigraph:
                pair = frozenset((edge.u, edge.v))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
            clone.add_edge(edge.u, edge.v, weight=edge.weight)
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Induced subgraph on the given vertices."""
        keep = set(vertices)
        missing = [v for v in keep if v not in self._out]
        if missing:
            raise VertexNotFound(missing[0])
        clone = Graph(directed=self._directed, multigraph=self._multigraph)
        clone.add_vertices(keep)
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                clone.add_edge(edge.u, edge.v, weight=edge.weight)
        return clone


def graph_from_edges(
    pairs: Iterable[tuple[Vertex, Vertex]],
    directed: bool = True,
    multigraph: bool = False,
) -> Graph:
    """Convenience constructor from an edge list."""
    graph = Graph(directed=directed, multigraph=multigraph)
    for u, v in pairs:
        graph.add_edge(u, v)
    return graph
