"""Property graph: labelled vertices/edges with typed properties.

Table 7c of the survey shows the four property types users actually store
-- strings, numerics, dates/timestamps, and binary -- so those are the
supported value types. Property values are type-checked on write; the
schema layer (:mod:`repro.graphs.schema`) adds per-label requirements on
top.
"""

from __future__ import annotations

import datetime as dt
import enum
from typing import Any, Hashable, Iterable, Iterator

from repro.errors import GraphError, VertexNotFound
from repro.graphs.adjacency import Graph, Vertex


class PropertyType(enum.Enum):
    """The Table 7c value types."""

    STRING = "String"
    NUMERIC = "Numeric"
    DATE = "Date/Timestamp"
    BINARY = "Binary"


_PY_TYPES: dict[PropertyType, tuple[type, ...]] = {
    PropertyType.STRING: (str,),
    PropertyType.NUMERIC: (int, float),
    PropertyType.DATE: (dt.date, dt.datetime),
    PropertyType.BINARY: (bytes, bytearray),
}


def property_type_of(value: Any) -> PropertyType:
    """Classify a Python value into a :class:`PropertyType`.

    ``bool`` classifies as NUMERIC (it is an ``int``); unsupported types
    raise :class:`~repro.errors.GraphError`.
    """
    for ptype, py_types in _PY_TYPES.items():
        if isinstance(value, py_types):
            return ptype
    raise GraphError(
        f"unsupported property value type {type(value).__name__}; "
        f"supported: str, int, float, date, datetime, bytes")


class PropertyGraph(Graph):
    """A graph whose vertices and edges carry labels and typed properties."""

    def __init__(self, directed: bool = True, multigraph: bool = False):
        super().__init__(directed=directed, multigraph=multigraph)
        self._vertex_labels: dict[Vertex, str | None] = {}
        self._vertex_props: dict[Vertex, dict[str, Any]] = {}
        self._edge_labels: dict[int, str | None] = {}
        self._edge_props: dict[int, dict[str, Any]] = {}

    # -- mutation ----------------------------------------------------------

    def add_vertex(
        self,
        vertex: Vertex,
        label: str | None = None,
        **properties: Any,
    ) -> Vertex:
        """Add a vertex with an optional label and properties.

        Re-adding an existing vertex merges the new properties in and
        updates the label when one is given.
        """
        super().add_vertex(vertex)
        self._vertex_props.setdefault(vertex, {})
        if label is not None or vertex not in self._vertex_labels:
            self._vertex_labels[vertex] = label
        for key, value in properties.items():
            self.set_vertex_property(vertex, key, value)
        return vertex

    def add_edge(
        self,
        u: Vertex,
        v: Vertex,
        weight: float = 1.0,
        label: str | None = None,
        **properties: Any,
    ) -> int:
        edge_id = super().add_edge(u, v, weight=weight)
        self._edge_labels[edge_id] = label
        self._edge_props[edge_id] = {}
        for key, value in properties.items():
            self.set_edge_property(edge_id, key, value)
        return edge_id

    def remove_edge(self, edge_id: int):
        edge = super().remove_edge(edge_id)
        self._edge_labels.pop(edge_id, None)
        self._edge_props.pop(edge_id, None)
        return edge

    def remove_vertex(self, vertex: Vertex) -> None:
        incident = [edge.edge_id for edge in self.incident_edges(vertex)]
        super().remove_vertex(vertex)
        for edge_id in incident:
            self._edge_labels.pop(edge_id, None)
            self._edge_props.pop(edge_id, None)
        self._vertex_labels.pop(vertex, None)
        self._vertex_props.pop(vertex, None)

    def set_vertex_property(self, vertex: Vertex, key: str,
                            value: Any) -> None:
        """Set one vertex property; the value must be a supported type."""
        property_type_of(value)
        if vertex not in self._vertex_props:
            self.add_vertex(vertex)
        self._vertex_props[vertex][key] = value

    def set_edge_property(self, edge_id: int, key: str, value: Any) -> None:
        property_type_of(value)
        self.edge(edge_id)  # raises EdgeNotFound for unknown ids
        self._edge_props.setdefault(edge_id, {})[key] = value

    def remove_vertex_property(self, vertex: Vertex, key: str) -> None:
        """Delete one vertex property (missing keys are a no-op)."""
        if vertex not in self:
            raise VertexNotFound(vertex)
        self._vertex_props.get(vertex, {}).pop(key, None)

    def remove_edge_property(self, edge_id: int, key: str) -> None:
        """Delete one edge property (missing keys are a no-op)."""
        self.edge(edge_id)
        self._edge_props.get(edge_id, {}).pop(key, None)

    def set_vertex_label(self, vertex: Vertex, label: str | None) -> None:
        """Replace a vertex's label."""
        if vertex not in self:
            raise VertexNotFound(vertex)
        self._vertex_labels[vertex] = label

    def replace_vertex_properties(
        self, vertex: Vertex, properties: dict[str, Any],
    ) -> None:
        """Atomically replace the whole property map of a vertex."""
        if vertex not in self:
            raise VertexNotFound(vertex)
        for value in properties.values():
            property_type_of(value)
        self._vertex_props[vertex] = dict(properties)

    # -- access ------------------------------------------------------------

    def vertex_label(self, vertex: Vertex) -> str | None:
        return self._vertex_labels.get(vertex)

    def edge_label(self, edge_id: int) -> str | None:
        self.edge(edge_id)
        return self._edge_labels.get(edge_id)

    def vertex_properties(self, vertex: Vertex) -> dict[str, Any]:
        """A copy of the vertex's property map."""
        return dict(self._vertex_props.get(vertex, {}))

    def edge_properties(self, edge_id: int) -> dict[str, Any]:
        self.edge(edge_id)
        return dict(self._edge_props.get(edge_id, {}))

    def vertex_property(
        self, vertex: Vertex, key: str, default: Any = None,
    ) -> Any:
        return self._vertex_props.get(vertex, {}).get(key, default)

    def edge_property(
        self, edge_id: int, key: str, default: Any = None,
    ) -> Any:
        return self._edge_props.get(edge_id, {}).get(key, default)

    def vertices_with_label(self, label: str) -> Iterator[Vertex]:
        for vertex, vertex_label in self._vertex_labels.items():
            if vertex_label == label:
                yield vertex

    def edges_with_label(self, label: str) -> Iterator[int]:
        for edge_id, edge_label in self._edge_labels.items():
            if edge_label == label:
                yield edge_id

    def property_types_in_use(self) -> dict[str, set[PropertyType]]:
        """The Table 7c summary of this graph: which value types appear on
        vertices and on edges."""
        vertex_types = {
            property_type_of(value)
            for props in self._vertex_props.values()
            for value in props.values()
        }
        edge_types = {
            property_type_of(value)
            for props in self._edge_props.values()
            for value in props.values()
        }
        return {"vertices": vertex_types, "edges": edge_types}

    # -- derived -----------------------------------------------------------

    def copy(self) -> "PropertyGraph":
        clone = PropertyGraph(directed=self.directed,
                              multigraph=self.multigraph)
        for vertex in self.vertices():
            clone.add_vertex(vertex, label=self.vertex_label(vertex),
                             **self.vertex_properties(vertex))
        for edge in self.edges():
            clone.add_edge(edge.u, edge.v, weight=edge.weight,
                           label=self.edge_label(edge.edge_id),
                           **self.edge_properties(edge.edge_id))
        return clone

    def subgraph(self, vertices: Iterable[Hashable]) -> "PropertyGraph":
        keep = set(vertices)
        clone = PropertyGraph(directed=self.directed,
                              multigraph=self.multigraph)
        for vertex in keep:
            if vertex not in self:
                raise VertexNotFound(vertex)
            clone.add_vertex(vertex, label=self.vertex_label(vertex),
                             **self.vertex_properties(vertex))
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                clone.add_edge(edge.u, edge.v, weight=edge.weight,
                               label=self.edge_label(edge.edge_id),
                               **self.edge_properties(edge.edge_id))
        return clone
