"""Versioned graph with historical analysis (a Section 6.2 user request).

Users of graph databases asked for "the ability to store the history of
the changes made to the vertices and edges and query over the different
versions of the graph". :class:`VersionedGraph` implements that as a
change log with named versions: every mutation appends a change record,
``commit`` seals a version, and ``snapshot`` replays the log to
materialize the graph as of any version.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import EdgeNotFound, GraphError, VertexNotFound
from repro.graphs.adjacency import Vertex
from repro.graphs.property_graph import PropertyGraph


class ChangeKind(enum.Enum):
    ADD_VERTEX = "add_vertex"
    REMOVE_VERTEX = "remove_vertex"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"
    SET_VERTEX_PROPERTY = "set_vertex_property"
    SET_EDGE_PROPERTY = "set_edge_property"


@dataclass(frozen=True)
class Change:
    """One entry in the change log."""

    sequence: int
    kind: ChangeKind
    payload: dict[str, Any]


@dataclass(frozen=True)
class Version:
    """A sealed point in the change log."""

    version_id: int
    message: str
    upto_sequence: int  # changes with sequence <= this are included


@dataclass
class _LiveEdge:
    uid: int
    u: Vertex
    v: Vertex


class VersionedGraph:
    """A property graph that remembers every change.

    Mutations go through this class (not the underlying graph) so they are
    logged. Edge identity across versions uses stable integer *uids*
    assigned by this class.
    """

    def __init__(self, directed: bool = True, multigraph: bool = True):
        self._directed = directed
        self._multigraph = multigraph
        self._log: list[Change] = []
        self._versions: list[Version] = []
        self._current = PropertyGraph(directed=directed,
                                      multigraph=multigraph)
        self._edge_uid_to_id: dict[int, int] = {}
        self._next_uid = 0

    # -- mutation (logged) ----------------------------------------------

    def _record(self, kind: ChangeKind, **payload: Any) -> None:
        self._log.append(
            Change(sequence=len(self._log), kind=kind, payload=payload))

    def add_vertex(self, vertex: Vertex, label: str | None = None,
                   **properties: Any) -> Vertex:
        self._current.add_vertex(vertex, label=label, **properties)
        self._record(ChangeKind.ADD_VERTEX, vertex=vertex, label=label,
                     properties=dict(properties))
        return vertex

    def remove_vertex(self, vertex: Vertex) -> None:
        if vertex not in self._current:
            raise VertexNotFound(vertex)
        dead_uids = [uid for uid, eid in self._edge_uid_to_id.items()
                     if vertex in (self._current.edge(eid).u,
                                   self._current.edge(eid).v)]
        self._current.remove_vertex(vertex)
        for uid in dead_uids:
            del self._edge_uid_to_id[uid]
        self._record(ChangeKind.REMOVE_VERTEX, vertex=vertex)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0,
                 label: str | None = None, **properties: Any) -> int:
        """Add an edge; returns its stable uid."""
        edge_id = self._current.add_edge(u, v, weight=weight, label=label,
                                         **properties)
        uid = self._next_uid
        self._next_uid += 1
        self._edge_uid_to_id[uid] = edge_id
        self._record(ChangeKind.ADD_EDGE, uid=uid, u=u, v=v, weight=weight,
                     label=label, properties=dict(properties))
        return uid

    def remove_edge(self, uid: int) -> None:
        edge_id = self._require_uid(uid)
        self._current.remove_edge(edge_id)
        del self._edge_uid_to_id[uid]
        self._record(ChangeKind.REMOVE_EDGE, uid=uid)

    def set_vertex_property(self, vertex: Vertex, key: str,
                            value: Any) -> None:
        if vertex not in self._current:
            raise VertexNotFound(vertex)
        self._current.set_vertex_property(vertex, key, value)
        self._record(ChangeKind.SET_VERTEX_PROPERTY, vertex=vertex, key=key,
                     value=value)

    def set_edge_property(self, uid: int, key: str, value: Any) -> None:
        edge_id = self._require_uid(uid)
        self._current.set_edge_property(edge_id, key, value)
        self._record(ChangeKind.SET_EDGE_PROPERTY, uid=uid, key=key,
                     value=value)

    def _require_uid(self, uid: int) -> int:
        try:
            return self._edge_uid_to_id[uid]
        except KeyError:
            raise EdgeNotFound(f"uid {uid}") from None

    # -- versions ----------------------------------------------------------

    def commit(self, message: str = "") -> Version:
        """Seal the current state as a new version."""
        version = Version(version_id=len(self._versions), message=message,
                          upto_sequence=len(self._log) - 1)
        self._versions.append(version)
        return version

    def versions(self) -> list[Version]:
        return list(self._versions)

    def current(self) -> PropertyGraph:
        """The live graph (a defensive copy)."""
        return self._current.copy()

    def snapshot(self, version_id: int) -> PropertyGraph:
        """Materialize the graph as of a committed version."""
        try:
            version = self._versions[version_id]
        except IndexError:
            raise GraphError(f"no version {version_id}") from None
        return self._replay(version.upto_sequence)

    def _replay(self, upto_sequence: int) -> PropertyGraph:
        graph = PropertyGraph(directed=self._directed,
                              multigraph=self._multigraph)
        uid_to_id: dict[int, int] = {}
        for change in self._log[:upto_sequence + 1]:
            payload = change.payload
            if change.kind is ChangeKind.ADD_VERTEX:
                graph.add_vertex(payload["vertex"], label=payload["label"],
                                 **payload["properties"])
            elif change.kind is ChangeKind.REMOVE_VERTEX:
                vertex = payload["vertex"]
                dead = [uid for uid, eid in uid_to_id.items()
                        if vertex in (graph.edge(eid).u, graph.edge(eid).v)]
                graph.remove_vertex(vertex)
                for uid in dead:
                    del uid_to_id[uid]
            elif change.kind is ChangeKind.ADD_EDGE:
                edge_id = graph.add_edge(
                    payload["u"], payload["v"], weight=payload["weight"],
                    label=payload["label"], **payload["properties"])
                uid_to_id[payload["uid"]] = edge_id
            elif change.kind is ChangeKind.REMOVE_EDGE:
                graph.remove_edge(uid_to_id.pop(payload["uid"]))
            elif change.kind is ChangeKind.SET_VERTEX_PROPERTY:
                graph.set_vertex_property(payload["vertex"], payload["key"],
                                          payload["value"])
            elif change.kind is ChangeKind.SET_EDGE_PROPERTY:
                graph.set_edge_property(uid_to_id[payload["uid"]],
                                        payload["key"], payload["value"])
        return graph

    # -- history queries -----------------------------------------------

    def history(self, vertex: Vertex) -> Iterator[Change]:
        """Every logged change touching a vertex (adds, removals, property
        writes, and incident-edge changes)."""
        incident_uids = set()
        for change in self._log:
            payload = change.payload
            if change.kind in (ChangeKind.ADD_VERTEX,
                               ChangeKind.REMOVE_VERTEX,
                               ChangeKind.SET_VERTEX_PROPERTY):
                if payload["vertex"] == vertex:
                    yield change
            elif change.kind is ChangeKind.ADD_EDGE:
                if vertex in (payload["u"], payload["v"]):
                    incident_uids.add(payload["uid"])
                    yield change
            elif change.kind in (ChangeKind.REMOVE_EDGE,
                                 ChangeKind.SET_EDGE_PROPERTY):
                if payload["uid"] in incident_uids:
                    yield change

    def diff(self, old_version: int, new_version: int) -> dict[str, set]:
        """Vertex/edge additions and removals between two versions."""
        old = self.snapshot(old_version)
        new = self.snapshot(new_version)
        old_vertices = set(old.vertices())
        new_vertices = set(new.vertices())
        old_edges = {(e.u, e.v) for e in old.edges()}
        new_edges = {(e.u, e.v) for e in new.edges()}
        return {
            "vertices_added": new_vertices - old_vertices,
            "vertices_removed": old_vertices - new_vertices,
            "edges_added": new_edges - old_edges,
            "edges_removed": old_edges - new_edges,
        }

    def change_log(self) -> list[Change]:
        return list(self._log)
