"""Streaming graphs: very frequent changes, old data discarded (Table 8).

Eighteen survey participants reported *streaming* graphs -- "very frequent
changes, and the software discards some of the graph after some time".
:class:`StreamingGraph` implements the standard sliding-window semantics
over a timestamped edge stream: edges older than the window are evicted,
and isolated vertices disappear with their last edge.

Streaming algorithm sketches that consume this stream live in
:mod:`repro.algorithms.streaming_algos`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator

from repro.graphs.adjacency import Graph, Vertex


@dataclass(frozen=True)
class StreamEdge:
    """One timestamped edge arrival."""

    timestamp: float
    u: Vertex
    v: Vertex
    weight: float = 1.0


class StreamingGraph:
    """A sliding-window view over an edge stream.

    Args:
        window: edges older than ``latest_timestamp - window`` are evicted.
        directed: direction semantics of the materialized graph.
        on_evict: optional callback invoked with each evicted
            :class:`StreamEdge` (used by incremental algorithms to undo
            contributions).
    """

    def __init__(
        self,
        window: float,
        directed: bool = False,
        on_evict: Callable[[StreamEdge], None] | None = None,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._graph = Graph(directed=directed, multigraph=True)
        self._queue: deque[tuple[StreamEdge, int]] = deque()
        self._latest = float("-inf")
        self._on_evict = on_evict
        self._arrivals = 0
        self._evictions = 0

    # -- stream ingestion -----------------------------------------------

    def push(self, edge: StreamEdge) -> None:
        """Ingest one edge; timestamps must be non-decreasing."""
        if edge.timestamp < self._latest:
            raise ValueError(
                f"out-of-order timestamp {edge.timestamp} < {self._latest}")
        self._latest = edge.timestamp
        edge_id = self._graph.add_edge(edge.u, edge.v, weight=edge.weight)
        self._queue.append((edge, edge_id))
        self._arrivals += 1
        self._expire()

    def extend(self, edges: Iterable[StreamEdge]) -> None:
        for edge in edges:
            self.push(edge)

    def advance_to(self, timestamp: float) -> None:
        """Advance time without new arrivals (evicts expired edges)."""
        if timestamp < self._latest:
            raise ValueError("cannot move time backwards")
        self._latest = timestamp
        self._expire()

    def _expire(self) -> None:
        horizon = self._latest - self.window
        while self._queue and self._queue[0][0].timestamp <= horizon:
            edge, edge_id = self._queue.popleft()
            self._graph.remove_edge(edge_id)
            self._evictions += 1
            for endpoint in (edge.u, edge.v):
                if (endpoint in self._graph
                        and self._graph.degree(endpoint) == 0):
                    self._graph.remove_vertex(endpoint)
            if self._on_evict is not None:
                self._on_evict(edge)

    # -- window access -----------------------------------------------------

    @property
    def latest_timestamp(self) -> float:
        return self._latest

    def graph(self) -> Graph:
        """The live window graph (shared, do not mutate)."""
        return self._graph

    def window_edges(self) -> Iterator[StreamEdge]:
        for edge, _ in self._queue:
            yield edge

    def num_window_edges(self) -> int:
        return len(self._queue)

    def stats(self) -> dict[str, int]:
        return {
            "arrivals": self._arrivals,
            "evictions": self._evictions,
            "window_edges": len(self._queue),
            "window_vertices": self._graph.num_vertices(),
        }


def edge_stream_from_pairs(
    pairs: Iterable[tuple[Hashable, Hashable]],
    start: float = 0.0,
    step: float = 1.0,
) -> Iterator[StreamEdge]:
    """Wrap plain edge pairs into a uniformly spaced stream."""
    timestamp = start
    for u, v in pairs:
        yield StreamEdge(timestamp=timestamp, u=u, v=v)
        timestamp += step
