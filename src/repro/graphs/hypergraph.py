"""Hyperedges via the hyperedge-vertex encoding (a Section 6.2 request).

Graph database users asked how to represent edges connecting more than two
vertices; the community's standard answer -- which the paper quotes -- is
to introduce a "hyperedge vertex" and link every member to it. This module
makes that encoding a first-class API: :class:`Hypergraph` stores
hyperedges natively and can *lower* itself to a plain
:class:`~repro.graphs.property_graph.PropertyGraph` using the encoding
(and lift such a graph back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.errors import GraphError
from repro.graphs.property_graph import PropertyGraph

Vertex = Hashable

#: Label given to encoding vertices in the lowered property graph.
HYPEREDGE_LABEL = "__hyperedge__"
MEMBER_LABEL = "__member__"


@dataclass(frozen=True)
class Hyperedge:
    """An edge over two or more vertices."""

    hyperedge_id: int
    members: frozenset[Vertex]
    label: str | None = None

    def __post_init__(self):
        if len(self.members) < 2:
            raise GraphError("a hyperedge needs at least two members")


class Hypergraph:
    """A set of vertices plus hyperedges over them."""

    def __init__(self):
        self._vertices: dict[Vertex, dict[str, Any]] = {}
        self._hyperedges: dict[int, Hyperedge] = {}
        self._incidence: dict[Vertex, set[int]] = {}
        self._next_id = 0

    def add_vertex(self, vertex: Vertex, **properties: Any) -> Vertex:
        self._vertices.setdefault(vertex, {}).update(properties)
        self._incidence.setdefault(vertex, set())
        return vertex

    def add_hyperedge(
        self, members: Iterable[Vertex], label: str | None = None,
    ) -> int:
        member_set = frozenset(members)
        edge = Hyperedge(hyperedge_id=self._next_id, members=member_set,
                         label=label)
        self._next_id += 1
        for member in member_set:
            self.add_vertex(member)
            self._incidence[member].add(edge.hyperedge_id)
        self._hyperedges[edge.hyperedge_id] = edge
        return edge.hyperedge_id

    def remove_hyperedge(self, hyperedge_id: int) -> None:
        try:
            edge = self._hyperedges.pop(hyperedge_id)
        except KeyError:
            raise GraphError(f"no hyperedge {hyperedge_id}") from None
        for member in edge.members:
            self._incidence[member].discard(hyperedge_id)

    # -- access ------------------------------------------------------------

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def hyperedges(self) -> Iterator[Hyperedge]:
        return iter(self._hyperedges.values())

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_hyperedges(self) -> int:
        return len(self._hyperedges)

    def incident(self, vertex: Vertex) -> frozenset[int]:
        """Hyperedge ids containing a vertex."""
        return frozenset(self._incidence.get(vertex, frozenset()))

    def neighbors(self, vertex: Vertex) -> set[Vertex]:
        """Vertices sharing at least one hyperedge with ``vertex``."""
        result: set[Vertex] = set()
        for hyperedge_id in self._incidence.get(vertex, ()):
            result |= self._hyperedges[hyperedge_id].members
        result.discard(vertex)
        return result

    def degree(self, vertex: Vertex) -> int:
        return len(self._incidence.get(vertex, ()))

    # -- encoding ----------------------------------------------------------

    def to_property_graph(self) -> PropertyGraph:
        """Lower to a bipartite property graph via hyperedge vertices.

        Each hyperedge becomes a vertex labelled ``__hyperedge__`` with
        membership edges labelled ``__member__`` to every member.
        """
        graph = PropertyGraph(directed=False, multigraph=False)
        for vertex, properties in self._vertices.items():
            graph.add_vertex(vertex, **properties)
        for edge in self._hyperedges.values():
            encoder = ("hyperedge", edge.hyperedge_id)
            graph.add_vertex(encoder, label=HYPEREDGE_LABEL)
            if edge.label is not None:
                graph.set_vertex_property(encoder, "hyperedge_label",
                                          edge.label)
            for member in sorted(edge.members, key=repr):
                graph.add_edge(encoder, member, label=MEMBER_LABEL)
        return graph

    @classmethod
    def from_property_graph(cls, graph: PropertyGraph) -> "Hypergraph":
        """Lift the hyperedge-vertex encoding back into a hypergraph."""
        hypergraph = cls()
        encoders = list(graph.vertices_with_label(HYPEREDGE_LABEL))
        encoder_set = set(encoders)
        for vertex in graph.vertices():
            if vertex not in encoder_set:
                hypergraph.add_vertex(vertex,
                                      **graph.vertex_properties(vertex))
        for encoder in encoders:
            members = [v for v in graph.neighbors(encoder)
                       if v not in encoder_set]
            label = graph.vertex_property(encoder, "hyperedge_label")
            hypergraph.add_hyperedge(members, label=label)
        return hypergraph

    def two_section(self) -> PropertyGraph:
        """The 2-section (clique expansion): members of each hyperedge are
        pairwise connected. Useful for running ordinary graph algorithms."""
        graph = PropertyGraph(directed=False, multigraph=False)
        for vertex in self._vertices:
            graph.add_vertex(vertex)
        for edge in self._hyperedges.values():
            members = sorted(edge.members, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if not graph.has_edge(u, v):
                        graph.add_edge(u, v)
        return graph
