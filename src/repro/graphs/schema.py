"""Graph schemas and constraints (a Section 6.2 user request).

Graph-database users asked for "the ability to define schemas over their
graphs, analogous to DTD and XSD schemas for XML data, usually as a means
to define constraints" -- including structural constraints such as "the
graph is acyclic" and property constraints such as "some vertices always
have a certain property". This module provides:

* :class:`PropertyRule` -- required/typed properties per vertex or edge
  label;
* :class:`EdgeRule` -- which vertex labels an edge label may connect;
* structural constraints -- acyclicity, degree bounds, connectivity of
  declared labels;
* :meth:`GraphSchema.validate` for whole-graph checks and
  :class:`SchemaEnforcedGraph` for write-time enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SchemaViolation
from repro.graphs.adjacency import Vertex
from repro.graphs.property_graph import (
    PropertyGraph,
    PropertyType,
    property_type_of,
)


@dataclass(frozen=True)
class PropertyRule:
    """One property requirement for a label."""

    name: str
    property_type: PropertyType
    required: bool = True

    def check(self, properties: dict[str, Any], subject: str) -> list[str]:
        problems = []
        if self.name not in properties:
            if self.required:
                problems.append(
                    f"{subject}: missing required property {self.name!r}")
            return problems
        actual = property_type_of(properties[self.name])
        if actual is not self.property_type:
            problems.append(
                f"{subject}: property {self.name!r} has type {actual.value}, "
                f"expected {self.property_type.value}")
        return problems


@dataclass(frozen=True)
class EdgeRule:
    """Allowed endpoint labels for an edge label."""

    edge_label: str
    from_labels: frozenset[str]
    to_labels: frozenset[str]


@dataclass
class GraphSchema:
    """A schema: per-label property rules plus structural constraints."""

    vertex_rules: dict[str, list[PropertyRule]] = field(default_factory=dict)
    edge_rules: dict[str, list[PropertyRule]] = field(default_factory=dict)
    endpoint_rules: dict[str, EdgeRule] = field(default_factory=dict)
    require_acyclic: bool = False
    max_out_degree: int | None = None
    allowed_vertex_labels: frozenset[str] | None = None

    # -- declaration helpers -----------------------------------------------

    def require_vertex_property(
        self, label: str, name: str, property_type: PropertyType,
        required: bool = True,
    ) -> "GraphSchema":
        self.vertex_rules.setdefault(label, []).append(
            PropertyRule(name=name, property_type=property_type,
                         required=required))
        return self

    def require_edge_property(
        self, label: str, name: str, property_type: PropertyType,
        required: bool = True,
    ) -> "GraphSchema":
        self.edge_rules.setdefault(label, []).append(
            PropertyRule(name=name, property_type=property_type,
                         required=required))
        return self

    def restrict_edge_endpoints(
        self, edge_label: str, from_labels: Iterable[str],
        to_labels: Iterable[str],
    ) -> "GraphSchema":
        self.endpoint_rules[edge_label] = EdgeRule(
            edge_label=edge_label,
            from_labels=frozenset(from_labels),
            to_labels=frozenset(to_labels))
        return self

    # -- validation ----------------------------------------------------

    def validate(self, graph: PropertyGraph) -> list[str]:
        """Return every violation (empty list means the graph conforms)."""
        problems: list[str] = []
        for vertex in graph.vertices():
            problems.extend(self._check_vertex(graph, vertex))
        for edge in graph.edges():
            problems.extend(self._check_edge(graph, edge.edge_id))
        if self.require_acyclic and graph.directed:
            if _has_cycle(graph):
                problems.append("graph must be acyclic but contains a cycle")
        if self.max_out_degree is not None:
            for vertex in graph.vertices():
                degree = graph.out_degree(vertex)
                if degree > self.max_out_degree:
                    problems.append(
                        f"vertex {vertex!r}: out-degree {degree} exceeds "
                        f"limit {self.max_out_degree}")
        return problems

    def check(self, graph: PropertyGraph) -> None:
        """Raise :class:`~repro.errors.SchemaViolation` on any problem."""
        problems = self.validate(graph)
        if problems:
            raise SchemaViolation("; ".join(problems))

    def _check_vertex(self, graph: PropertyGraph, vertex: Vertex) -> list[str]:
        problems = []
        label = graph.vertex_label(vertex)
        if (self.allowed_vertex_labels is not None
                and label not in self.allowed_vertex_labels):
            problems.append(f"vertex {vertex!r}: label {label!r} not allowed")
        rules = self.vertex_rules.get(label or "", ())
        properties = graph.vertex_properties(vertex)
        for rule in rules:
            problems.extend(rule.check(properties, f"vertex {vertex!r}"))
        return problems

    def _check_edge(self, graph: PropertyGraph, edge_id: int) -> list[str]:
        problems = []
        label = graph.edge_label(edge_id)
        rules = self.edge_rules.get(label or "", ())
        properties = graph.edge_properties(edge_id)
        for rule in rules:
            problems.extend(rule.check(properties, f"edge {edge_id}"))
        endpoint_rule = self.endpoint_rules.get(label or "")
        if endpoint_rule is not None:
            edge = graph.edge(edge_id)
            from_label = graph.vertex_label(edge.u)
            to_label = graph.vertex_label(edge.v)
            if from_label not in endpoint_rule.from_labels:
                problems.append(
                    f"edge {edge_id}: source label {from_label!r} not in "
                    f"{sorted(endpoint_rule.from_labels)}")
            if to_label not in endpoint_rule.to_labels:
                problems.append(
                    f"edge {edge_id}: target label {to_label!r} not in "
                    f"{sorted(endpoint_rule.to_labels)}")
        return problems


def _has_cycle(graph: PropertyGraph) -> bool:
    """Iterative three-color DFS cycle check for directed graphs."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in graph.vertices()}
    for start in graph.vertices():
        if color[start] != WHITE:
            continue
        stack: list[tuple[Vertex, Any]] = [(start, iter(
            graph.out_neighbors(start)))]
        color[start] = GRAY
        while stack:
            vertex, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if color[neighbor] == GRAY:
                    return True
                if color[neighbor] == WHITE:
                    color[neighbor] = GRAY
                    stack.append(
                        (neighbor, iter(graph.out_neighbors(neighbor))))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
    return False


class SchemaEnforcedGraph:
    """A property graph wrapper that validates every mutation.

    Write-time enforcement rejects a mutation when the resulting graph
    would violate the schema, leaving the graph unchanged.
    """

    def __init__(self, schema: GraphSchema, directed: bool = True,
                 multigraph: bool = False):
        self.schema = schema
        self._graph = PropertyGraph(directed=directed, multigraph=multigraph)

    @property
    def graph(self) -> PropertyGraph:
        return self._graph

    def add_vertex(self, vertex: Vertex, label: str | None = None,
                   **properties: Any) -> Vertex:
        trial = self._graph.copy()
        trial.add_vertex(vertex, label=label, **properties)
        self.schema.check(trial)
        self._graph.add_vertex(vertex, label=label, **properties)
        return vertex

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0,
                 label: str | None = None, **properties: Any) -> int:
        trial = self._graph.copy()
        trial.add_edge(u, v, weight=weight, label=label, **properties)
        self.schema.check(trial)
        return self._graph.add_edge(u, v, weight=weight, label=label,
                                    **properties)

    def set_vertex_property(self, vertex: Vertex, key: str,
                            value: Any) -> None:
        trial = self._graph.copy()
        trial.set_vertex_property(vertex, key, value)
        self.schema.check(trial)
        self._graph.set_vertex_property(vertex, key, value)
