"""Filtered graph views, including high-degree-vertex skipping.

Section 6.2: users of graph databases "want the ability to process very
high-degree vertices in a special way. One common request is to skip
finding paths that go over such vertices." A :class:`GraphView` exposes
the traversal-facing subset of the :class:`~repro.graphs.adjacency.Graph`
API over vertex/edge predicates without copying the graph, so any
traversal-based algorithm can run "as if" the filtered graph were real.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import VertexNotFound
from repro.graphs.adjacency import Edge, Graph, Vertex

VertexPredicate = Callable[[Vertex], bool]
EdgePredicate = Callable[[Edge], bool]


class GraphView:
    """A lazy filtered view of a graph.

    A vertex is visible when ``vertex_filter(v)`` is true; an edge is
    visible when both endpoints are visible and ``edge_filter(edge)`` is
    true. The view implements the read API traversals use.
    """

    def __init__(
        self,
        graph: Graph,
        vertex_filter: VertexPredicate | None = None,
        edge_filter: EdgePredicate | None = None,
    ):
        self._graph = graph
        self._vertex_filter = vertex_filter or (lambda v: True)
        self._edge_filter = edge_filter or (lambda e: True)

    @property
    def directed(self) -> bool:
        return self._graph.directed

    @property
    def multigraph(self) -> bool:
        return self._graph.multigraph

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._graph and self._vertex_filter(vertex)

    def _require(self, vertex: Vertex) -> None:
        if vertex not in self:
            raise VertexNotFound(vertex)

    def vertices(self) -> Iterator[Vertex]:
        return (v for v in self._graph.vertices() if self._vertex_filter(v))

    def num_vertices(self) -> int:
        return sum(1 for _ in self.vertices())

    def edges(self) -> Iterator[Edge]:
        for edge in self._graph.edges():
            if (self._vertex_filter(edge.u) and self._vertex_filter(edge.v)
                    and self._edge_filter(edge)):
                yield edge

    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    def _visible_neighbor(self, u: Vertex, v: Vertex, out: bool) -> bool:
        if not self._vertex_filter(v):
            return False
        pair = (u, v) if out else (v, u)
        ids = self._graph.edge_ids(*pair)
        return any(self._edge_filter(self._graph.edge(eid)) for eid in ids)

    def out_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        self._require(vertex)
        return (v for v in self._graph.out_neighbors(vertex)
                if self._visible_neighbor(vertex, v, out=True))

    def in_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        self._require(vertex)
        return (v for v in self._graph.in_neighbors(vertex)
                if self._visible_neighbor(vertex, v, out=False))

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        self._require(vertex)
        seen = set()
        for v in self.out_neighbors(vertex):
            seen.add(v)
            yield v
        for v in self.in_neighbors(vertex):
            if v not in seen:
                yield v

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u not in self or v not in self:
            return False
        return self._visible_neighbor(u, v, out=True)

    def edge_weight(self, u: Vertex, v: Vertex) -> float:
        return self._graph.edge_weight(u, v)

    def out_degree(self, vertex: Vertex) -> int:
        return sum(1 for _ in self.out_neighbors(vertex))

    def degree(self, vertex: Vertex) -> int:
        return sum(1 for _ in self.neighbors(vertex))

    def materialize(self) -> Graph:
        """Copy the visible subgraph into a concrete graph."""
        graph = Graph(directed=self.directed, multigraph=self.multigraph)
        for vertex in self.vertices():
            graph.add_vertex(vertex)
        for edge in self.edges():
            graph.add_edge(edge.u, edge.v, weight=edge.weight)
        return graph


def skip_high_degree(graph: Graph, max_degree: int,
                     protect: set[Vertex] | None = None) -> GraphView:
    """The Section 6.2 feature: hide vertices whose degree exceeds a cap.

    ``protect`` lets callers keep specific endpoints visible (you usually
    still want the query's source and target even if they are hubs).
    """
    protected = protect or set()

    def visible(vertex: Vertex) -> bool:
        return vertex in protected or graph.degree(vertex) <= max_degree

    return GraphView(graph, vertex_filter=visible)


def exclude_vertices(graph: Graph, banned: set[Vertex]) -> GraphView:
    """Hide an explicit vertex set."""
    return GraphView(graph, vertex_filter=lambda v: v not in banned)


def min_weight_edges(graph: Graph, min_weight: float) -> GraphView:
    """Keep only edges at or above a weight threshold."""
    return GraphView(graph, edge_filter=lambda e: e.weight >= min_weight)
