"""Graph storage formats (Table 17 made executable).

Appendix C of the paper lists the storage formats participants keep their
graphs in -- graph/relational database dumps, XML/JSON, GML/GraphML, CSV
and text files, and binary. This module implements the file-based ones as
save/load pairs behind one registry, so a graph really can be "stored in
multiple formats" and round-tripped:

* ``edgelist`` -- whitespace text, one edge per line (weights optional);
* ``csv``     -- two relational-style tables (vertices.csv + edges.csv),
  the "relational database format" of Appendix C as flat files;
* ``json``    -- a self-describing document with labels and properties;
* ``gml``     -- the Graph Modelling Language subset GraphML tools read;
* ``graphml`` -- GraphML XML with typed property keys;
* ``binary``  -- a compact struct-packed format for integer-indexed
  graphs.

JSON and GraphML round-trip full :class:`~repro.graphs.property_graph.
PropertyGraph` content (labels + string/numeric properties); the others
round-trip structure and weights.
"""

from __future__ import annotations

import csv as csv_module
import json
import struct
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Callable

from repro.errors import GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.property_graph import PropertyGraph

# ---------------------------------------------------------------------------
# edge list
# ---------------------------------------------------------------------------

def save_edgelist(graph: Graph, path: str | Path) -> None:
    """``u v weight`` per line; vertices written as repr-safe strings.

    Isolated vertices are listed on ``# vertex`` comment lines so the
    vertex set survives the round trip.
    """
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# directed={graph.directed} "
                f"multigraph={graph.multigraph}\n")
        linked = set()
        for edge in graph.edges():
            linked.add(edge.u)
            linked.add(edge.v)
            f.write(f"{edge.u}\t{edge.v}\t{edge.weight}\n")
        for vertex in graph.vertices():
            if vertex not in linked:
                f.write(f"# vertex\t{vertex}\n")


def load_edgelist(path: str | Path) -> Graph:
    """Load a graph saved by :func:`save_edgelist` (vertex ids become
    strings)."""
    graph: Graph | None = None
    pending_isolated: list[str] = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# directed="):
                parts = dict(
                    token.split("=") for token in line[2:].split())
                graph = Graph(directed=parts["directed"] == "True",
                              multigraph=parts["multigraph"] == "True")
                continue
            if graph is None:
                graph = Graph()
            if line.startswith("# vertex\t"):
                pending_isolated.append(line.split("\t", 1)[1])
                continue
            if line.startswith("#"):
                continue
            u, v, weight = line.split("\t")
            graph.add_edge(u, v, weight=float(weight))
    if graph is None:
        graph = Graph()
    for vertex in pending_isolated:
        graph.add_vertex(vertex)
    return graph


# ---------------------------------------------------------------------------
# CSV (relational-style pair of tables)
# ---------------------------------------------------------------------------

def save_csv(graph: Graph, path: str | Path) -> None:
    """Writes ``<path>.vertices.csv`` and ``<path>.edges.csv``."""
    base = Path(path)
    with open(f"{base}.vertices.csv", "w", encoding="utf-8",
              newline="") as f:
        writer = csv_module.writer(f)
        writer.writerow(["vertex", "label"])
        for vertex in graph.vertices():
            label = ""
            if isinstance(graph, PropertyGraph):
                label = graph.vertex_label(vertex) or ""
            writer.writerow([vertex, label])
    with open(f"{base}.edges.csv", "w", encoding="utf-8", newline="") as f:
        writer = csv_module.writer(f)
        writer.writerow(["source", "target", "weight", "label",
                         "directed", "multigraph"])
        for edge in graph.edges():
            label = ""
            if isinstance(graph, PropertyGraph):
                label = graph.edge_label(edge.edge_id) or ""
            writer.writerow([edge.u, edge.v, edge.weight, label,
                             graph.directed, graph.multigraph])


def load_csv(path: str | Path) -> PropertyGraph:
    base = Path(path)
    directed, multigraph = True, False
    edges = []
    with open(f"{base}.edges.csv", encoding="utf-8", newline="") as f:
        for record in csv_module.DictReader(f):
            directed = record["directed"] == "True"
            multigraph = record["multigraph"] == "True"
            edges.append(record)
    graph = PropertyGraph(directed=directed, multigraph=multigraph)
    with open(f"{base}.vertices.csv", encoding="utf-8", newline="") as f:
        for record in csv_module.DictReader(f):
            graph.add_vertex(record["vertex"],
                             label=record["label"] or None)
    for record in edges:
        graph.add_edge(record["source"], record["target"],
                       weight=float(record["weight"]),
                       label=record["label"] or None)
    return graph


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def save_json(graph: Graph, path: str | Path) -> None:
    """Self-describing JSON; keeps labels and JSON-safe properties."""
    is_property = isinstance(graph, PropertyGraph)
    document = {
        "directed": graph.directed,
        "multigraph": graph.multigraph,
        "vertices": [],
        "edges": [],
    }
    for vertex in graph.vertices():
        record: dict = {"id": vertex}
        if is_property:
            if graph.vertex_label(vertex) is not None:
                record["label"] = graph.vertex_label(vertex)
            properties = _json_safe(graph.vertex_properties(vertex))
            if properties:
                record["properties"] = properties
        document["vertices"].append(record)
    for edge in graph.edges():
        record = {"source": edge.u, "target": edge.v,
                  "weight": edge.weight}
        if is_property:
            if graph.edge_label(edge.edge_id) is not None:
                record["label"] = graph.edge_label(edge.edge_id)
            properties = _json_safe(graph.edge_properties(edge.edge_id))
            if properties:
                record["properties"] = properties
        document["edges"].append(record)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=1)


def _json_safe(properties: dict) -> dict:
    return {key: value for key, value in properties.items()
            if isinstance(value, (str, int, float, bool))}


def load_json(path: str | Path) -> PropertyGraph:
    with open(path, encoding="utf-8") as f:
        document = json.load(f)
    graph = PropertyGraph(directed=document["directed"],
                          multigraph=document["multigraph"])
    for record in document["vertices"]:
        vertex = _freeze(record["id"])
        graph.add_vertex(vertex, label=record.get("label"),
                         **record.get("properties", {}))
    for record in document["edges"]:
        graph.add_edge(_freeze(record["source"]), _freeze(record["target"]),
                       weight=record.get("weight", 1.0),
                       label=record.get("label"),
                       **record.get("properties", {}))
    return graph


def _freeze(value):
    """JSON round-trips tuples as lists; restore hashability."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# GML
# ---------------------------------------------------------------------------

def save_gml(graph: Graph, path: str | Path) -> None:
    """A GML subset readable by Gephi/graph-tool style tools."""
    index_of = {v: i for i, v in enumerate(graph.vertices())}
    lines = ["graph [", f"  directed {int(graph.directed)}"]
    for vertex, index in index_of.items():
        lines.append("  node [")
        lines.append(f"    id {index}")
        lines.append(f'    name "{vertex}"')
        lines.append("  ]")
    for edge in graph.edges():
        lines.append("  edge [")
        lines.append(f"    source {index_of[edge.u]}")
        lines.append(f"    target {index_of[edge.v]}")
        lines.append(f"    weight {edge.weight}")
        lines.append("  ]")
    lines.append("]")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_gml(path: str | Path) -> Graph:
    text = Path(path).read_text(encoding="utf-8")
    tokens = text.replace("[", " [ ").replace("]", " ] ").split()
    directed = False
    names: dict[int, str] = {}
    edges: list[tuple[int, int, float]] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token == "directed":
            directed = tokens[i + 1] == "1"
            i += 2
        elif token in ("node", "edge") and i + 1 < len(tokens) \
                and tokens[i + 1] == "[":
            kind = token
            i += 2  # skip '['
            fields: dict[str, str] = {}
            while i + 1 < len(tokens) and tokens[i] != "]":
                fields[tokens[i]] = tokens[i + 1]
                i += 2
            i += 1
            if kind == "node" and "id" not in fields:
                continue
            if kind == "edge" and ("source" not in fields
                                   or "target" not in fields):
                continue
            if kind == "node":
                names[int(fields["id"])] = fields.get(
                    "name", fields["id"]).strip('"')
            else:
                edges.append((int(fields["source"]), int(fields["target"]),
                              float(fields.get("weight", 1.0))))
        else:
            i += 1
    graph = Graph(directed=directed, multigraph=True)
    for name in names.values():
        graph.add_vertex(name)
    for source, target, weight in edges:
        graph.add_edge(names[source], names[target], weight=weight)
    return graph


# ---------------------------------------------------------------------------
# GraphML
# ---------------------------------------------------------------------------

_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"


def save_graphml(graph: Graph, path: str | Path) -> None:
    """GraphML with label and weight keys; properties for property
    graphs (string/numeric only)."""
    is_property = isinstance(graph, PropertyGraph)
    root = ET.Element("graphml", xmlns=_GRAPHML_NS)
    ET.SubElement(root, "key", id="label", attrib={
        "for": "node", "attr.name": "label", "attr.type": "string"})
    ET.SubElement(root, "key", id="weight", attrib={
        "for": "edge", "attr.name": "weight", "attr.type": "double"})
    ET.SubElement(root, "key", id="elabel", attrib={
        "for": "edge", "attr.name": "label", "attr.type": "string"})
    graph_el = ET.SubElement(
        root, "graph",
        edgedefault="directed" if graph.directed else "undirected")
    for vertex in graph.vertices():
        node = ET.SubElement(graph_el, "node", id=str(vertex))
        if is_property and graph.vertex_label(vertex):
            data = ET.SubElement(node, "data", key="label")
            data.text = graph.vertex_label(vertex)
    for edge in graph.edges():
        el = ET.SubElement(graph_el, "edge",
                           source=str(edge.u), target=str(edge.v))
        data = ET.SubElement(el, "data", key="weight")
        data.text = str(edge.weight)
        if is_property and graph.edge_label(edge.edge_id):
            label_el = ET.SubElement(el, "data", key="elabel")
            label_el.text = graph.edge_label(edge.edge_id)
    ET.ElementTree(root).write(path, encoding="unicode",
                               xml_declaration=True)


def load_graphml(path: str | Path) -> PropertyGraph:
    tree = ET.parse(path)
    ns = {"g": _GRAPHML_NS}
    graph_el = tree.getroot().find("g:graph", ns)
    if graph_el is None:
        raise GraphError("not a GraphML document")
    directed = graph_el.get("edgedefault") == "directed"
    graph = PropertyGraph(directed=directed, multigraph=True)
    for node in graph_el.findall("g:node", ns):
        label = None
        for data in node.findall("g:data", ns):
            if data.get("key") == "label":
                label = data.text
        graph.add_vertex(node.get("id"), label=label)
    for el in graph_el.findall("g:edge", ns):
        weight = 1.0
        label = None
        for data in el.findall("g:data", ns):
            if data.get("key") == "weight":
                weight = float(data.text)
            elif data.get("key") == "elabel":
                label = data.text
        graph.add_edge(el.get("source"), el.get("target"),
                       weight=weight, label=label)
    return graph


# ---------------------------------------------------------------------------
# binary
# ---------------------------------------------------------------------------

_MAGIC = b"RGRB"


def save_binary(graph: Graph, path: str | Path) -> None:
    """Struct-packed: header, vertex count, then (u, v, weight) triples
    over integer indices. Compact and fast; ids are re-indexed."""
    order = list(graph.vertices())
    index_of = {v: i for i, v in enumerate(order)}
    with open(path, "wb") as f:
        f.write(_MAGIC)
        flags = (graph.directed << 0) | (graph.multigraph << 1)
        f.write(struct.pack("<BII", flags, len(order), graph.num_edges()))
        for edge in graph.edges():
            f.write(struct.pack("<IId", index_of[edge.u],
                                index_of[edge.v], edge.weight))


def load_binary(path: str | Path) -> Graph:
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != _MAGIC:
            raise GraphError(f"bad magic {magic!r}; not a binary graph")
        flags, num_vertices, num_edges = struct.unpack("<BII", f.read(9))
        graph = Graph(directed=bool(flags & 1),
                      multigraph=bool(flags & 2))
        graph.add_vertices(range(num_vertices))
        for _ in range(num_edges):
            u, v, weight = struct.unpack("<IId", f.read(16))
            graph.add_edge(u, v, weight=weight)
    return graph


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

Saver = Callable[[Graph, str], None]
Loader = Callable[[str], Graph]

FORMATS: dict[str, tuple[Saver, Loader]] = {
    "edgelist": (save_edgelist, load_edgelist),
    "csv": (save_csv, load_csv),
    "json": (save_json, load_json),
    "gml": (save_gml, load_gml),
    "graphml": (save_graphml, load_graphml),
    "binary": (save_binary, load_binary),
}


def save_graph(graph: Graph, path: str | Path, format: str) -> None:
    """Save in a named format (see :data:`FORMATS`)."""
    try:
        saver, _ = FORMATS[format]
    except KeyError:
        raise GraphError(
            f"unknown format {format!r}; choose from {sorted(FORMATS)}"
        ) from None
    saver(graph, path)


def load_graph(path: str | Path, format: str) -> Graph:
    try:
        _, loader = FORMATS[format]
    except KeyError:
        raise GraphError(
            f"unknown format {format!r}; choose from {sorted(FORMATS)}"
        ) from None
    return loader(path)


def store_in_multiple_formats(
    graph: Graph, directory: str | Path, formats: list[str],
) -> dict[str, Path]:
    """The Appendix C behaviour: one graph, many formats on disk."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for format in formats:
        path = directory / f"graph.{format}"
        save_graph(graph, path, format)
        written[format] = path
    return written
