"""Triggers on graph mutations (a Section 6.2 user request).

Users asked for "trigger-like capabilities", e.g. "automatically adding a
particular property to vertices during insertion or creating a backup of a
vertex or an edge during updates" -- the paper notes OrientDB's hooks and
Neo4j's TransactionEventHandler as partial answers. :class:`TriggeredGraph`
wraps a :class:`~repro.graphs.property_graph.PropertyGraph` with
before/after hooks on every mutation kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.graphs.adjacency import Vertex
from repro.graphs.property_graph import PropertyGraph


class TriggerEvent(enum.Enum):
    VERTEX_INSERT = "vertex_insert"
    VERTEX_REMOVE = "vertex_remove"
    EDGE_INSERT = "edge_insert"
    EDGE_REMOVE = "edge_remove"
    VERTEX_UPDATE = "vertex_update"     # property write
    EDGE_UPDATE = "edge_update"


class TriggerPhase(enum.Enum):
    BEFORE = "before"
    AFTER = "after"


@dataclass(frozen=True)
class TriggerContext:
    """What a trigger callback receives."""

    event: TriggerEvent
    phase: TriggerPhase
    graph: PropertyGraph
    payload: dict[str, Any]


TriggerFn = Callable[[TriggerContext], None]


class TriggerAbort(Exception):
    """Raised by a BEFORE trigger to veto the mutation."""


class TriggerRegistry:
    """Ordered registry of trigger callbacks."""

    def __init__(self):
        self._triggers: dict[tuple[TriggerEvent, TriggerPhase],
                             list[TriggerFn]] = {}

    def register(self, event: TriggerEvent, phase: TriggerPhase,
                 fn: TriggerFn) -> None:
        self._triggers.setdefault((event, phase), []).append(fn)

    def fire(self, context: TriggerContext) -> None:
        for fn in self._triggers.get((context.event, context.phase), ()):
            fn(context)

    def count(self) -> int:
        return sum(len(fns) for fns in self._triggers.values())


class TriggeredGraph:
    """Property graph with mutation triggers.

    BEFORE triggers may raise :class:`TriggerAbort` to veto the mutation;
    AFTER triggers observe the applied change (and may mutate further --
    e.g. stamping a created-at property -- without re-firing themselves,
    because follow-up writes go directly to the inner graph).
    """

    def __init__(self, directed: bool = True, multigraph: bool = False):
        self.graph = PropertyGraph(directed=directed, multigraph=multigraph)
        self.registry = TriggerRegistry()

    def on(self, event: TriggerEvent, phase: TriggerPhase = TriggerPhase.AFTER,
           ) -> Callable[[TriggerFn], TriggerFn]:
        """Decorator: ``@g.on(TriggerEvent.VERTEX_INSERT)``."""

        def decorator(fn: TriggerFn) -> TriggerFn:
            self.registry.register(event, phase, fn)
            return fn

        return decorator

    def _fire(self, event: TriggerEvent, phase: TriggerPhase,
              **payload: Any) -> None:
        self.registry.fire(TriggerContext(
            event=event, phase=phase, graph=self.graph, payload=payload))

    # -- mutations -------------------------------------------------------

    def add_vertex(self, vertex: Vertex, label: str | None = None,
                   **properties: Any) -> Vertex:
        self._fire(TriggerEvent.VERTEX_INSERT, TriggerPhase.BEFORE,
                   vertex=vertex, label=label, properties=properties)
        self.graph.add_vertex(vertex, label=label, **properties)
        self._fire(TriggerEvent.VERTEX_INSERT, TriggerPhase.AFTER,
                   vertex=vertex, label=label, properties=properties)
        return vertex

    def remove_vertex(self, vertex: Vertex) -> None:
        self._fire(TriggerEvent.VERTEX_REMOVE, TriggerPhase.BEFORE,
                   vertex=vertex)
        self.graph.remove_vertex(vertex)
        self._fire(TriggerEvent.VERTEX_REMOVE, TriggerPhase.AFTER,
                   vertex=vertex)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0,
                 label: str | None = None, **properties: Any) -> int:
        self._fire(TriggerEvent.EDGE_INSERT, TriggerPhase.BEFORE,
                   u=u, v=v, label=label, properties=properties)
        edge_id = self.graph.add_edge(u, v, weight=weight, label=label,
                                      **properties)
        self._fire(TriggerEvent.EDGE_INSERT, TriggerPhase.AFTER,
                   u=u, v=v, edge_id=edge_id, label=label,
                   properties=properties)
        return edge_id

    def remove_edge(self, edge_id: int) -> None:
        edge = self.graph.edge(edge_id)
        self._fire(TriggerEvent.EDGE_REMOVE, TriggerPhase.BEFORE,
                   edge_id=edge_id, u=edge.u, v=edge.v)
        self.graph.remove_edge(edge_id)
        self._fire(TriggerEvent.EDGE_REMOVE, TriggerPhase.AFTER,
                   edge_id=edge_id, u=edge.u, v=edge.v)

    def set_vertex_property(self, vertex: Vertex, key: str,
                            value: Any) -> None:
        old = self.graph.vertex_property(vertex, key)
        self._fire(TriggerEvent.VERTEX_UPDATE, TriggerPhase.BEFORE,
                   vertex=vertex, key=key, value=value, old_value=old)
        self.graph.set_vertex_property(vertex, key, value)
        self._fire(TriggerEvent.VERTEX_UPDATE, TriggerPhase.AFTER,
                   vertex=vertex, key=key, value=value, old_value=old)

    def set_edge_property(self, edge_id: int, key: str, value: Any) -> None:
        old = self.graph.edge_property(edge_id, key)
        self._fire(TriggerEvent.EDGE_UPDATE, TriggerPhase.BEFORE,
                   edge_id=edge_id, key=key, value=value, old_value=old)
        self.graph.set_edge_property(edge_id, key, value)
        self._fire(TriggerEvent.EDGE_UPDATE, TriggerPhase.AFTER,
                   edge_id=edge_id, key=key, value=value, old_value=old)
