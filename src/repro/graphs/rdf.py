"""An RDF-style triple store (the paper's "RDF Engine" class).

RDF engines (Jena, Virtuoso, Sparksee) account for 115 of the mailing-
list users in Table 1, and 23 survey participants hold RDF / semantic-web
data (Table 4). This module provides the storage model those systems
share: a set of (subject, predicate, object) triples with all three
access-path indexes (SPO, POS, OSP), prefix namespaces, and a
SPARQL-flavoured basic-graph-pattern ``select``.

The store interoperates with the property-graph world through
``to_property_graph`` / ``from_property_graph``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.algorithms.matching import Var
from repro.errors import GraphError
from repro.graphs.property_graph import PropertyGraph

Term = Hashable
Triple = tuple[Term, Term, Term]


@dataclass(frozen=True)
class Literal:
    """A literal object value (as opposed to a resource)."""

    value: Any

    def __repr__(self):
        return f"Literal({self.value!r})"


class TripleStore:
    """Indexed triple storage with namespace support."""

    def __init__(self):
        self._triples: set[Triple] = set()
        self._spo: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set))
        self._pos: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set))
        self._osp: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set))
        self._namespaces: dict[str, str] = {}

    # -- namespaces ------------------------------------------------------

    def bind(self, prefix: str, uri: str) -> None:
        """Register a namespace prefix, e.g. ``bind("ex", "http://x/")``."""
        self._namespaces[prefix] = uri

    def expand(self, term: Term) -> Term:
        """Expand ``prefix:name`` into a full URI when the prefix is
        bound; other terms pass through."""
        if isinstance(term, str) and ":" in term:
            prefix, _, name = term.partition(":")
            if prefix in self._namespaces:
                return self._namespaces[prefix] + name
        return term

    def compact(self, term: Term) -> Term:
        """The inverse of :meth:`expand` (longest-match)."""
        if isinstance(term, str):
            best = None
            for prefix, uri in self._namespaces.items():
                if term.startswith(uri):
                    if best is None or len(uri) > len(self._namespaces[best]):
                        best = prefix
            if best is not None:
                return f"{best}:{term[len(self._namespaces[best]):]}"
        return term

    # -- mutation ----------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Insert a triple (namespaces expanded); returns False when it
        was already present."""
        triple = (self.expand(subject), self.expand(predicate),
                  obj if isinstance(obj, Literal) else self.expand(obj))
        if triple in self._triples:
            return False
        subject, predicate, obj = triple
        self._triples.add(triple)
        self._spo[subject][predicate].add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        return True

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        triple = (self.expand(subject), self.expand(predicate),
                  obj if isinstance(obj, Literal) else self.expand(obj))
        if triple not in self._triples:
            return False
        subject, predicate, obj = triple
        self._triples.discard(triple)
        self._spo[subject][predicate].discard(obj)
        self._pos[predicate][obj].discard(subject)
        self._osp[obj][subject].discard(predicate)
        return True

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        subject, predicate, obj = triple
        return (self.expand(subject), self.expand(predicate),
                obj if isinstance(obj, Literal)
                else self.expand(obj)) in self._triples

    # -- access ------------------------------------------------------------

    def triples(self, subject: Term | None = None,
                predicate: Term | None = None,
                obj: Term | None = None) -> Iterator[Triple]:
        """All triples matching the given constants (``None`` = any).

        The best index for the bound positions answers the scan: SPO for
        subject-bound, POS for predicate-bound, OSP for object-bound.
        """
        subject = None if subject is None else self.expand(subject)
        predicate = None if predicate is None else self.expand(predicate)
        if obj is not None and not isinstance(obj, Literal):
            obj = self.expand(obj)

        if subject is not None:
            by_predicate = self._spo.get(subject, {})
            predicates = ([predicate] if predicate is not None
                          else list(by_predicate))
            for p in predicates:
                for o in by_predicate.get(p, ()):
                    if obj is None or o == obj:
                        yield (subject, p, o)
        elif predicate is not None:
            by_object = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_object)
            for o in objects:
                for s in by_object.get(o, ()):
                    yield (s, predicate, o)
        elif obj is not None:
            by_subject = self._osp.get(obj, {})
            for s, predicates in by_subject.items():
                for p in predicates:
                    yield (s, p, obj)
        else:
            yield from self._triples

    def subjects(self, predicate: Term, obj: Term) -> set[Term]:
        return {s for s, _, _ in self.triples(predicate=predicate,
                                              obj=obj)}

    def objects(self, subject: Term, predicate: Term) -> set[Term]:
        return {o for _, _, o in self.triples(subject=subject,
                                              predicate=predicate)}

    # -- SPARQL-flavoured basic graph patterns ---------------------------

    def select(self, patterns: list[tuple],
               ) -> Iterator[dict[str, Term]]:
        """Solve a conjunction of triple patterns with :class:`Var`
        variables, index-backed per pattern:

            store.select([
                (Var("who"), "rdf:type", "ex:Person"),
                (Var("who"), "ex:worksAt", Var("org")),
            ])
        """
        prepared = []
        for subject, predicate, obj in patterns:
            prepared.append((
                subject if isinstance(subject, Var)
                else self.expand(subject),
                predicate if isinstance(predicate, Var)
                else self.expand(predicate),
                obj if isinstance(obj, (Var, Literal))
                else self.expand(obj)))

        def solve(index: int, binding: dict[str, Term]):
            if index == len(prepared):
                yield dict(binding)
                return
            subject, predicate, obj = (
                self._substitute(term, binding) for term in prepared[index])
            for s, p, o in self.triples(
                    None if isinstance(subject, Var) else subject,
                    None if isinstance(predicate, Var) else predicate,
                    None if isinstance(obj, (Var,)) else obj):
                trial = dict(binding)
                if (self._bind(trial, subject, s)
                        and self._bind(trial, predicate, p)
                        and self._bind(trial, obj, o)):
                    yield from solve(index + 1, trial)

        yield from solve(0, {})

    @staticmethod
    def _substitute(term, binding):
        if isinstance(term, Var) and term.name in binding:
            return binding[term.name]
        return term

    @staticmethod
    def _bind(binding: dict, term, value) -> bool:
        if isinstance(term, Var):
            if term.name in binding:
                return binding[term.name] == value
            binding[term.name] = value
            return True
        return term == value

    def ask(self, patterns: list[tuple]) -> bool:
        """SPARQL ASK: does the pattern have any solution?"""
        for _ in self.select(patterns):
            return True
        return False

    # -- property-graph interop ------------------------------------------

    def to_property_graph(self, type_predicate: Term = "rdf:type",
                          ) -> PropertyGraph:
        """Resources become vertices (label from ``rdf:type``), literal
        objects become vertex properties, resource objects become
        labelled edges."""
        type_predicate = self.expand(type_predicate)
        graph = PropertyGraph(directed=True, multigraph=True)
        for subject, predicate, obj in sorted(self._triples, key=repr):
            graph.add_vertex(subject)
            if predicate == type_predicate and not isinstance(obj, Literal):
                graph.set_vertex_label(subject, str(self.compact(obj)))
            elif isinstance(obj, Literal):
                graph.set_vertex_property(
                    subject, str(self.compact(predicate)), obj.value)
            else:
                graph.add_vertex(obj)
                graph.add_edge(subject, obj,
                               label=str(self.compact(predicate)))
        return graph

    @classmethod
    def from_property_graph(cls, graph: PropertyGraph,
                            type_predicate: Term = "rdf:type",
                            ) -> "TripleStore":
        store = cls()
        for vertex in graph.vertices():
            label = graph.vertex_label(vertex)
            if label is not None:
                store.add(vertex, type_predicate, label)
            for key, value in graph.vertex_properties(vertex).items():
                store.add(vertex, key, Literal(value))
        for edge in graph.edges():
            label = graph.edge_label(edge.edge_id)
            if label is None:
                raise GraphError(
                    "from_property_graph requires labelled edges "
                    f"(edge {edge.edge_id} has none)")
            store.add(edge.u, label, edge.v)
        return store
