"""Graph substrate: the structures the surveyed systems provide.

Public surface:

* :class:`~repro.graphs.adjacency.Graph` -- directed/undirected,
  simple/multigraph adjacency store (Table 7a/7b).
* :class:`~repro.graphs.property_graph.PropertyGraph` -- labels and typed
  properties (Table 7c).
* :class:`~repro.graphs.csr.CSRGraph` -- numpy snapshot for analytics.
* :class:`~repro.graphs.dynamic.VersionedGraph` -- change log, versions,
  historical analysis (Section 6.2).
* :class:`~repro.graphs.streaming.StreamingGraph` -- sliding-window edge
  stream (Table 8 "streaming").
* :class:`~repro.graphs.hypergraph.Hypergraph` -- hyperedges via the
  hyperedge-vertex encoding (Section 6.2).
* :class:`~repro.graphs.schema.GraphSchema` -- schemas and constraints
  (Section 6.2).
* :class:`~repro.graphs.triggers.TriggeredGraph` -- mutation triggers
  (Section 6.2).
* :class:`~repro.graphs.views.GraphView` and
  :func:`~repro.graphs.views.skip_high_degree` -- filtered views including
  high-degree skipping (Section 6.2).
"""

from repro.graphs.adjacency import Edge, Graph, graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.dynamic import Change, ChangeKind, Version, VersionedGraph
from repro.graphs.hypergraph import Hyperedge, Hypergraph
from repro.graphs.property_graph import (
    PropertyGraph,
    PropertyType,
    property_type_of,
)
from repro.graphs.schema import (
    EdgeRule,
    GraphSchema,
    PropertyRule,
    SchemaEnforcedGraph,
)
from repro.graphs.streaming import (
    StreamEdge,
    StreamingGraph,
    edge_stream_from_pairs,
)
from repro.graphs.triggers import (
    TriggerAbort,
    TriggerEvent,
    TriggerPhase,
    TriggeredGraph,
)
from repro.graphs.views import (
    GraphView,
    exclude_vertices,
    min_weight_edges,
    skip_high_degree,
)

__all__ = [
    "Edge", "Graph", "graph_from_edges", "CSRGraph",
    "Change", "ChangeKind", "Version", "VersionedGraph",
    "Hyperedge", "Hypergraph",
    "PropertyGraph", "PropertyType", "property_type_of",
    "EdgeRule", "GraphSchema", "PropertyRule", "SchemaEnforcedGraph",
    "StreamEdge", "StreamingGraph", "edge_stream_from_pairs",
    "TriggerAbort", "TriggerEvent", "TriggerPhase", "TriggeredGraph",
    "GraphView", "exclude_vertices", "min_weight_edges", "skip_high_degree",
]

from repro.graphs.io_formats import (  # noqa: E402 (Table 17 formats)
    FORMATS,
    load_graph,
    save_graph,
    store_in_multiple_formats,
)

__all__ += ["FORMATS", "load_graph", "save_graph",
            "store_in_multiple_formats"]

from repro.graphs.rdf import Literal, TripleStore  # noqa: E402 (RDF class)

__all__ += ["Literal", "TripleStore"]
