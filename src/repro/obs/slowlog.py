"""Slow-query log: fingerprinted per-query latency/error aggregation.

Section 6.2's "profiling and debugging slow queries" needs more than a
global latency histogram: operators ask *which query shape* is slow.
This module normalizes query text into a **fingerprint** (literals
collapsed, whitespace canonicalized) so the thousands of variants of
one template aggregate into a single row, then keeps bounded
statistics per fingerprint:

* request count, error count, cache-hit count;
* total / max / min latency (total-time ordering finds the queries
  that matter — a 2ms query run 10^5 times outranks one 80ms one);
* the **top-k slowest samples**, each carrying its ``trace_id`` — the
  link from an aggregate row to the full span tree in the
  :class:`~repro.obs.retention.TraceStore`.

Memory is bounded twice: samples per fingerprint are a k-item
min-heap, and the fingerprint table itself is an LRU capped at
``max_fingerprints`` (eviction is counted, never silent).
"""

from __future__ import annotations

import heapq
import itertools
import re
import threading
from collections import OrderedDict
from typing import Any

#: Literal-normalization passes, in order: quoted strings first so a
#: digit inside a string does not survive as a fake parameter.
_STRING = re.compile(r"'[^']*'|\"[^\"]*\"")
_NUMBER = re.compile(r"(?<![\w.])-?\d+(?:\.\d+)?\b")


def fingerprint(text: str) -> str:
    """Canonical shape of a query: literals become ``?``, whitespace
    collapses. Distinct parameterizations of one template share a
    fingerprint; structurally different queries never do."""
    normalized = _STRING.sub("?", text)
    normalized = _NUMBER.sub("?", normalized)
    return " ".join(normalized.split())


class _Aggregate:
    """Running statistics for one fingerprint."""

    __slots__ = ("count", "errors", "cached", "total_ms", "max_ms",
                 "min_ms", "last_error", "samples")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.cached = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self.min_ms: float | None = None
        self.last_error: str | None = None
        # (latency_ms, tiebreak, trace_id) min-heap of the slowest k.
        self.samples: list[tuple[float, int, str | None]] = []


class SlowLog:
    """Thread-safe bounded per-fingerprint query aggregation."""

    def __init__(self, *, top_k: int = 5,
                 max_fingerprints: int = 256):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if max_fingerprints < 1:
            raise ValueError("max_fingerprints must be >= 1")
        self.top_k = top_k
        self.max_fingerprints = max_fingerprints
        self._lock = threading.Lock()
        self._table: OrderedDict[str, _Aggregate] = OrderedDict()
        self._tiebreak = itertools.count()
        self.recorded = 0
        self.evicted_fingerprints = 0

    def record(self, text: str, latency_ms: float, *,
               error: str | None = None, cached: bool = False,
               trace_id: str | None = None) -> str:
        """Fold one query execution into its fingerprint's aggregate;
        returns the fingerprint."""
        key = fingerprint(text)
        with self._lock:
            self.recorded += 1
            agg = self._table.get(key)
            if agg is None:
                agg = self._table[key] = _Aggregate()
            else:
                self._table.move_to_end(key)
            agg.count += 1
            agg.total_ms += latency_ms
            agg.max_ms = max(agg.max_ms, latency_ms)
            agg.min_ms = (latency_ms if agg.min_ms is None
                          else min(agg.min_ms, latency_ms))
            if cached:
                agg.cached += 1
            if error is not None:
                agg.errors += 1
                agg.last_error = error
            entry = (latency_ms, next(self._tiebreak), trace_id)
            if len(agg.samples) < self.top_k:
                heapq.heappush(agg.samples, entry)
            elif latency_ms > agg.samples[0][0]:
                heapq.heapreplace(agg.samples, entry)
            while len(self._table) > self.max_fingerprints:
                self._table.popitem(last=False)
                self.evicted_fingerprints += 1
        return key

    def report(self, limit: int = 20) -> list[dict[str, Any]]:
        """Aggregates sorted by total time descending (the queries
        eating the most wall-clock overall come first)."""
        with self._lock:
            rows = []
            for key, agg in self._table.items():
                slowest = sorted(agg.samples, reverse=True)
                rows.append({
                    "fingerprint": key,
                    "count": agg.count,
                    "errors": agg.errors,
                    "cached": agg.cached,
                    "total_ms": round(agg.total_ms, 3),
                    "mean_ms": round(agg.total_ms / agg.count, 3),
                    "max_ms": round(agg.max_ms, 3),
                    "min_ms": round(agg.min_ms or 0.0, 3),
                    "last_error": agg.last_error,
                    "slowest": [
                        {"latency_ms": round(lat, 3),
                         "trace_id": tid}
                        for lat, _, tid in slowest
                    ],
                })
        rows.sort(key=lambda row: row["total_ms"], reverse=True)
        return rows[:limit]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "recorded": self.recorded,
                "fingerprints": len(self._table),
                "evicted_fingerprints": self.evicted_fingerprints,
                "top_k": self.top_k,
                "max_fingerprints": self.max_fingerprints,
            }

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
