"""Nestable, thread-safe tracing spans.

Section 6.2 lists "profiling and debugging slow queries" and visibility
into long-running computations among users' top challenges. This module
is the tracing half of the answer: a span marks one timed region of
work (a query execution, a Pregel superstep, a graph-database
transaction), carries arbitrary attributes, and nests -- a span opened
while another is active becomes its child, so a workload run yields a
tree showing where the time went.

Design constraints:

* **disabled by default, zero overhead when off** -- :func:`span`
  returns the shared :data:`NULL_SPAN` singleton when tracing is
  disabled, so hot paths allocate nothing;
* **thread-safe** -- the active-span stack is thread-local (each thread
  grows its own subtree) and the collector is locked;
* **consumable as events** -- finished spans are pushed to subscribers,
  which is how :mod:`repro.dgps.debugger` observes supersteps without a
  private hook format.

Usage::

    from repro.obs import enable, span

    enable()
    with span("pregel.superstep", superstep=3) as sp:
        ...
        sp.set("messages_sent", 128)
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterator

#: The ambient trace id (see :mod:`repro.obs.trace_context`). A
#: ContextVar rather than a thread-local so the id survives
#: generator/contextmanager suspension within a request; every *real*
#: span opened while it is set records it as a ``trace_id`` attribute.
#: The NULL_SPAN path never reads it, so tracing-off stays free.
_TRACE_ID: ContextVar[str | None] = ContextVar(
    "repro_trace_id", default=None)

#: The ambient request deadline (see :mod:`repro.obs.deadline`), bound
#: beside the trace id. Every *real* span opened while it is set stamps
#: ``deadline_remaining_ms`` at entry, so a finished trace shows the
#: budget draining through serve -> query/pregel -> dist worker spans.
#: The NULL_SPAN path never reads it, so tracing-off stays free.
_DEADLINE: ContextVar[Any] = ContextVar(
    "repro_deadline", default=None)


class _ThreadState(threading.local):
    """Per-thread stack of currently open spans."""

    def __init__(self):
        self.stack: list["Span"] = []


_STATE = _ThreadState()
_IDS = itertools.count(1)


class Span:
    """One timed, attributed region of work.

    Use as a context manager; entering links the span under the
    thread's innermost open span, exiting records the end time and
    hands the span to the :class:`Tracer`.
    """

    __slots__ = ("name", "attributes", "span_id", "parent", "children",
                 "start_ns", "end_ns", "_prof")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.span_id = next(_IDS)
        self.parent: Span | None = None
        self.children: list[Span] = []
        self.start_ns: int | None = None
        self.end_ns: int | None = None
        self._prof: list | None = None  # scratch for repro.obs.profile

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        stack = _STATE.stack
        if stack:
            self.parent = stack[-1]
            self.parent.children.append(self)
        stack.append(self)
        trace_id = _TRACE_ID.get()
        if trace_id is not None and "trace_id" not in self.attributes:
            self.attributes["trace_id"] = trace_id
        deadline = _DEADLINE.get()
        if deadline is not None and \
                "deadline_remaining_ms" not in self.attributes:
            self.attributes["deadline_remaining_ms"] = round(
                deadline.remaining_ms(), 3)
        profiler = _PROFILER
        if profiler is not None:
            profiler._on_enter(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        profiler = _PROFILER
        if profiler is not None:
            profiler._on_exit(self)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        stack = _STATE.stack
        if self in stack:
            # Normally the top of the stack; tolerate unbalanced exits
            # (e.g. a transaction span closed after an inner span leaked).
            stack.remove(self)
        _TRACER._record(self)
        return False

    # -- attributes ------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __setitem__(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    # -- introspection ---------------------------------------------------

    @property
    def duration_ms(self) -> float:
        if self.start_ns is None or self.end_ns is None:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Descendant spans (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"{self.duration_ms:.3f} ms, {self.attributes!r})")


class _NullSpan:
    """Shared no-op span returned by :func:`span` while tracing is off.

    Accepts the full :class:`Span` surface so instrumented code never
    branches; every method does nothing.
    """

    __slots__ = ()

    name = "null"
    attributes: dict[str, Any] = {}
    span_id = 0
    parent = None
    children: list[Span] = []
    start_ns = None
    end_ns = None
    duration_ms = 0.0
    closed = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def walk(self):
        return iter(())

    def find(self, name: str) -> list[Span]:
        return []

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()

#: The installed span profiler (see :mod:`repro.obs.profile`), or None.
#: Checked once per real-span enter/exit — the profiling-disabled path
#: costs one module-global read and a None test, and the tracing-off
#: path (NULL_SPAN) never consults it at all, preserving the PR-1
#: zero-overhead contract.
_PROFILER = None


def _set_profiler(profiler) -> None:
    """Install (or, with None, remove) the span profiler hook.

    Internal to :mod:`repro.obs.profile` — use
    :func:`repro.obs.profile.enable_profiling`."""
    global _PROFILER
    _PROFILER = profiler


class Tracer:
    """Process-wide span collector: retains finished root spans while
    enabled and notifies subscribers of every finished span."""

    def __init__(self):
        self._lock = threading.Lock()
        self.enabled = False
        self._finished: list[Span] = []
        self._subscribers: list[Callable[[Span], None]] = []

    def enable(self) -> None:
        with self._lock:
            self.enabled = True

    def disable(self) -> None:
        with self._lock:
            self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()

    def subscribe(self, listener: Callable[[Span], None]) -> None:
        with self._lock:
            self._subscribers.append(listener)

    def unsubscribe(self, listener: Callable[[Span], None]) -> None:
        with self._lock:
            if listener in self._subscribers:
                self._subscribers.remove(listener)

    def finished_roots(self) -> list[Span]:
        """Completed top-level spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def _record(self, finished: Span) -> None:
        with self._lock:
            if self.enabled and finished.parent is None:
                self._finished.append(finished)
            subscribers = list(self._subscribers)
        for listener in subscribers:
            listener(finished)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, /, **attributes: Any) -> Span | _NullSpan:
    """Open a span if tracing is enabled; otherwise the no-op singleton.

    The gate is one attribute read, and the disabled path allocates no
    span object -- safe on hot paths.
    """
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(name, attributes)


def forced_span(name: str, /, **attributes: Any) -> Span:
    """Open a real span regardless of the global gate.

    Used where a live consumer is attached (e.g. the Pregel engine with
    a registered superstep listener): subscribers are still notified,
    but the span is only *retained* by the tracer when tracing is on.
    """
    return Span(name, attributes)


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def enable() -> None:
    _TRACER.enable()


def disable() -> None:
    _TRACER.disable()


def is_enabled() -> bool:
    return _TRACER.enabled


def reset_spans() -> None:
    _TRACER.reset()


def subscribe(listener: Callable[[Span], None]) -> None:
    _TRACER.subscribe(listener)


def unsubscribe(listener: Callable[[Span], None]) -> None:
    _TRACER.unsubscribe(listener)


def finished_roots() -> list[Span]:
    return _TRACER.finished_roots()


class _Capture:
    """Handle yielded by :func:`capture`."""

    def __init__(self, start_index: int):
        self._start = start_index

    @property
    def roots(self) -> list[Span]:
        return _TRACER.finished_roots()[self._start:]


class capture:
    """``with capture() as trace:`` -- temporarily enable tracing and
    expose the root spans finished inside the block as ``trace.roots``."""

    def __init__(self):
        self._previous = False
        self._handle: _Capture | None = None

    def __enter__(self) -> _Capture:
        self._previous = _TRACER.enabled
        self._handle = _Capture(len(_TRACER.finished_roots()))
        _TRACER.enable()
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._previous:
            _TRACER.enable()
        else:
            _TRACER.disable()
        return False
