"""Process memory accounting: peak-RSS and tracemalloc gauges.

Sahu et al. rank memory footprint among practitioners' top graph
challenges (Section 6.1), yet nothing in this stack measured bytes
until this module: wall-time-only benchmarking is exactly how graph
benchmarks mislead (the SoK critique in PAPERS.md). Two complementary
views, both stdlib-only:

* **peak RSS** — the OS high-water mark (``ru_maxrss``), the number an
  operator sees in ``top``; monotone over process life, so it answers
  "did this workload push the process ceiling up?";
* **tracemalloc** — Python-heap allocation tracking; resettable, so it
  answers "how many KB did *this block* allocate?" — the source of the
  per-span ``peak_alloc_kb`` attribute :mod:`repro.obs.profile`
  records and the ``peak_alloc_kb`` bench column.

:func:`record_memory_gauges` publishes both as gauges on the process
:class:`~repro.obs.metrics.MetricsRegistry` (the hot layers call it
with their own prefix — ``dist.mem.*``, ``pregel.mem.*``,
``workload.mem.*``); :class:`AllocationTracker` measures one block's
peak allocation, used by the bench runner for the schema-v2 memory
column.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_registry

try:
    import resource
except ImportError:  # pragma: no cover - non-unix platforms
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> int | None:
    """The process's peak resident set size, in KB (None when the
    platform has no ``getrusage``).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalized to KB here. The value is a high-water mark: it never
    decreases over the life of the process.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS only
        peak //= 1024
    return int(peak)


def current_rss_kb() -> int | None:
    """The process's current resident set size in KB (Linux ``/proc``;
    None elsewhere)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def traced_memory_kb() -> tuple[float, float] | None:
    """(current, peak) Python-heap KB per tracemalloc, or None while
    tracemalloc is not tracing."""
    if not tracemalloc.is_tracing():
        return None
    current, peak = tracemalloc.get_traced_memory()
    return (current / 1024, peak / 1024)


def memory_summary() -> dict[str, Any]:
    """Every memory fact this module can source, as one plain dict."""
    traced = traced_memory_kb()
    return {
        "peak_rss_kb": peak_rss_kb(),
        "current_rss_kb": current_rss_kb(),
        "traced_current_kb": (round(traced[0], 3)
                              if traced is not None else None),
        "traced_peak_kb": (round(traced[1], 3)
                           if traced is not None else None),
        "tracing": tracemalloc.is_tracing(),
    }


def record_memory_gauges(registry: MetricsRegistry | None = None,
                         prefix: str = "mem") -> dict[str, Any]:
    """Publish the memory summary as ``<prefix>.*`` gauges.

    Unavailable facts (no /proc, tracemalloc off) are skipped rather
    than recorded as zero — absence must stay distinguishable from an
    empty process. Returns the summary dict.
    """
    if registry is None:
        registry = get_registry()
    summary = memory_summary()
    for key in ("peak_rss_kb", "current_rss_kb",
                "traced_current_kb", "traced_peak_kb"):
        value = summary[key]
        if value is not None:
            registry.set_gauge(f"{prefix}.{key}", value)
    return summary


class AllocationTracker:
    """Measure one block's peak Python-heap allocation.

    ::

        with AllocationTracker() as tracker:
            result = kernel()
        tracker.peak_alloc_kb   # high-water mark above entry, KB
        tracker.net_alloc_kb    # still-live allocation at exit, KB

    Starts tracemalloc if it is not already tracing (and stops it again
    on exit in that case). Uses ``tracemalloc.reset_peak``, so nesting
    it inside an active :mod:`repro.obs.profile` region perturbs that
    region's per-span peaks — the bench runner runs it on a separate,
    un-profiled repetition for exactly this reason.
    """

    def __init__(self):
        self.peak_alloc_kb: float = 0.0
        self.net_alloc_kb: float = 0.0
        self._base = 0
        self._started = False

    def __enter__(self) -> "AllocationTracker":
        self._started = not tracemalloc.is_tracing()
        if self._started:
            tracemalloc.start()
        self._base = tracemalloc.get_traced_memory()[0]
        tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        current, peak = tracemalloc.get_traced_memory()
        self.peak_alloc_kb = round(
            max(0, max(peak, current) - self._base) / 1024, 3)
        self.net_alloc_kb = round((current - self._base) / 1024, 3)
        if self._started:
            tracemalloc.stop()
        return False
