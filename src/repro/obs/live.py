"""A polling ops console over a running :mod:`repro.serve` instance.

``python -m repro.obs.live --url http://127.0.0.1:8080`` polls the
service's health, metrics, SLO, and slow-query endpoints and renders
one compact dashboard per interval — the operator's answer to "is the
service healthy *right now*, and if not, which query shape and which
trace do I look at?". The console is read-only and deliberately
dependency-free (stdlib ``http.client``; no :mod:`repro.serve`
import), so it can run from a box that only has network reach.

Sections, top to bottom:

* **health** — status, hosted graphs, uptime, in-flight/queued;
* **slo** — each objective's per-window compliance and burn rate,
  with a ``BURNING`` flag when every window burns;
* **slowlog** — the top query fingerprints by total time;
* **traces** — retention counters plus the newest retained traces,
  ids included (feed one to ``GET /debug/traces/{id}``).

``--iterations N`` renders N frames and exits (tests and one-shot
status checks); the default polls until interrupted.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any
from urllib.parse import urlsplit


class LiveError(RuntimeError):
    """The target server could not be reached or answered non-JSON."""


def fetch_json(url: str, path: str,
               timeout: float = 10.0) -> dict[str, Any]:
    """GET one JSON endpoint; every failure mode is a LiveError."""
    parts = urlsplit(url)
    if parts.hostname is None:
        raise LiveError(f"bad server url {url!r}")
    conn = HTTPConnection(parts.hostname, parts.port or 80,
                          timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read()
    except (OSError, HTTPException) as exc:
        raise LiveError(
            f"cannot reach {url}{path}: {exc}") from None
    finally:
        conn.close()
    if response.status != 200:
        raise LiveError(
            f"GET {path} returned HTTP {response.status}")
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise LiveError(
            f"GET {path} returned non-JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise LiveError(f"GET {path} returned a non-object payload")
    return payload


def snapshot(url: str, timeout: float = 10.0) -> dict[str, Any]:
    """One poll of every dashboard endpoint, as plain data."""
    return {
        "health": fetch_json(url, "/healthz", timeout),
        "metrics": fetch_json(url, "/metrics", timeout),
        "slo": fetch_json(url, "/debug/slo", timeout),
        "slowlog": fetch_json(url, "/debug/slowlog?limit=5", timeout),
        "traces": fetch_json(url, "/debug/traces?limit=5", timeout),
    }


def _slo_lines(slo: dict[str, Any]) -> list[str]:
    lines = []
    for row in slo.get("slos", ()):
        worst = None
        for window in row.get("windows", ()):
            burn = window.get("burn_rate")
            if burn is not None and \
                    (worst is None or burn > worst):
                worst = burn
        flag = "BURNING" if row.get("burning") else "ok"
        windows = "  ".join(
            f"{int(w['window_s'])}s:{100 * w['compliance']:.2f}%"
            f"/{w['burn_rate'] if w['burn_rate'] is not None else 'inf'}x"
            for w in row.get("windows", ()))
        lines.append(f"  {row['spec']:<32} {flag:<8} {windows}")
    return lines or ["  (no SLOs configured)"]


def _slowlog_lines(slowlog: dict[str, Any]) -> list[str]:
    lines = []
    for row in slowlog.get("slowlog", ())[:5]:
        fp = row["fingerprint"]
        if len(fp) > 44:
            fp = fp[:41] + "..."
        lines.append(
            f"  {fp:<44} n={row['count']:<5} "
            f"total={row['total_ms']:.1f}ms max={row['max_ms']:.1f}ms "
            f"err={row['errors']}")
    return lines or ["  (no queries recorded)"]


def _trace_lines(traces: dict[str, Any]) -> list[str]:
    stats = traces.get("stats", {})
    lines = [
        f"  retained={stats.get('retained', 0)} "
        f"ingested={stats.get('ingested', 0)} "
        f"sampled_out={stats.get('sampled_out', 0)} "
        f"evicted={stats.get('evicted', 0)} "
        f"errors_kept={stats.get('errors_kept', 0)}"]
    for row in traces.get("traces", ())[:5]:
        error = row.get("error") or "-"
        lines.append(
            f"  {row.get('trace_id') or '?':<18} "
            f"{row.get('op') or '?':<10} "
            f"{row['duration_ms']:>9.2f}ms  spans={row['spans']:<4} "
            f"error={error}")
    return lines


def render_dashboard(snap: dict[str, Any]) -> str:
    """One snapshot as the terminal dashboard (pure; testable)."""
    health = snap["health"]
    lines = [
        f"status={health.get('status', '?')} "
        f"graphs={health.get('graphs', 0)} "
        f"uptime={health.get('uptime_s', 0.0):.0f}s "
        f"in_flight={health.get('in_flight', 0)} "
        f"queued={health.get('queued', 0)}",
        "slo:",
        *_slo_lines(snap["slo"]),
        "slowlog (by total time):",
        *_slowlog_lines(snap["slowlog"]),
        "traces:",
        *_trace_lines(snap["traces"]),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Poll a repro.serve instance and render a live "
                    "SLO/slowlog/trace dashboard.")
    parser.add_argument("--url", required=True,
                        help="server base url, e.g. "
                             "http://127.0.0.1:8080")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=0,
                        help="render N frames then exit "
                             "(0 = poll until interrupted)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print raw snapshot JSON instead of the "
                             "dashboard")
    args = parser.parse_args(argv)

    frame = 0
    try:
        while True:
            frame += 1
            try:
                snap = snapshot(args.url)
            except LiveError as exc:
                print(f"error: {exc}")
                return 1
            if args.as_json:
                print(json.dumps(snap, indent=2))
            else:
                print(f"-- repro.obs.live frame {frame} "
                      f"({args.url}) --")
                print(render_dashboard(snap))
            if args.iterations and frame >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
