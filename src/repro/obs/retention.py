"""Bounded trace retention: a ring buffer with tail-based keep rules.

A resident server cannot hold every request trace (the seed behaviour
— reset everything past a count — threw away exactly the traces worth
debugging), and it must not grow without bound either. This module
implements production-shaped retention:

* **head sampling** — ``sample_every=N`` keeps one in N ordinary
  traces *at ingest*, before any memory is spent;
* **ring buffer** — ordinary traces live in a fixed-capacity deque;
  the oldest is evicted when a new one arrives;
* **tail keep rules** — error traces go to their own bounded buffer
  regardless of sampling, and the slowest traces seen so far are held
  in a bounded min-heap (a new trace slower than the heap's fastest
  member replaces it), so the interesting tail survives ring churn;
* **visible loss** — kept/sampled-out/evicted counters reconcile
  exactly (``ingested == kept + sampled_out``;
  ``retained == kept - evicted``), and are mirrored into the obs
  metrics registry as ``obs.traces.*`` so ``/metrics`` shows drop
  rates.

The store holds strong references to its :class:`~repro.obs.spans.Span`
trees, so the serve edge may freely reset the global tracer's
(unbounded) finished-roots list — see :meth:`TraceStore.maintain` —
without losing anything retention decided to keep.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import get_registry
from repro.obs.spans import Span, get_tracer, is_enabled


@dataclass(frozen=True)
class RetentionPolicy:
    """How much of each trace class to keep.

    ``capacity`` bounds the ordinary-trace ring, ``error_capacity``
    and ``slow_capacity`` bound the tail buffers, and ``sample_every``
    head-samples ordinary traffic (1 = keep everything the ring can
    hold). Tail rules ignore head sampling on purpose: an error trace
    is kept even when its head sample would have dropped it.
    """

    capacity: int = 256
    error_capacity: int = 64
    slow_capacity: int = 64
    sample_every: int = 1

    def __post_init__(self):
        for name in ("capacity", "error_capacity", "slow_capacity"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")


class TraceStore:
    """Bounded, indexed storage for finished request-trace roots."""

    def __init__(self, policy: RetentionPolicy | None = None):
        self.policy = policy or RetentionPolicy()
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque()
        self._errors: deque[Span] = deque()
        # (duration_ms, tiebreak, span): a min-heap whose root is the
        # *fastest* retained slow trace — the replacement candidate.
        self._slow: list[tuple[float, int, Span]] = []
        self._tiebreak = itertools.count()
        # trace_id -> retained root. A span can sit in several buffers
        # at once; _refs counts memberships so the index entry drops
        # only when the last buffer lets go.
        self._index: dict[str, Span] = {}
        self._refs: dict[int, int] = {}
        self.ingested = 0
        self.kept = 0
        self.sampled_out = 0
        self.evicted = 0
        self.errors_kept = 0
        self.slow_kept = 0

    # -- internal bookkeeping (lock held) --------------------------------

    def _retain(self, root: Span) -> None:
        self._refs[root.span_id] = self._refs.get(root.span_id, 0) + 1
        trace_id = root.attributes.get("trace_id")
        if trace_id is not None:
            self._index[trace_id] = root

    def _release(self, root: Span) -> None:
        remaining = self._refs.get(root.span_id, 0) - 1
        if remaining > 0:
            self._refs[root.span_id] = remaining
            return
        self._refs.pop(root.span_id, None)
        self.evicted += 1
        trace_id = root.attributes.get("trace_id")
        if trace_id is not None and \
                self._index.get(trace_id) is root:
            del self._index[trace_id]

    # -- ingest ----------------------------------------------------------

    def ingest(self, root: Span, *, error: bool = False) -> bool:
        """Offer one finished root span; returns whether any buffer
        kept it. Unclosed or non-root spans are rejected (the trace
        tree under a root is only complete once the root closed)."""
        if not isinstance(root, Span) or not root.closed \
                or root.parent is not None:
            return False
        error = error or "error" in root.attributes
        duration = root.duration_ms
        policy = self.policy
        with self._lock:
            self.ingested += 1
            retained = False

            if error:
                self._errors.append(root)
                self._retain(root)
                self.errors_kept += 1
                retained = True
                if len(self._errors) > policy.error_capacity:
                    self._release(self._errors.popleft())

            # Slowest-tail keep: admit while below capacity, then
            # displace the fastest retained slow trace.
            if len(self._slow) < policy.slow_capacity:
                heapq.heappush(self._slow,
                               (duration, next(self._tiebreak), root))
                self._retain(root)
                self.slow_kept += 1
                retained = True
            elif duration > self._slow[0][0]:
                _, _, displaced = heapq.heapreplace(
                    self._slow,
                    (duration, next(self._tiebreak), root))
                self._retain(root)
                self._release(displaced)
                self.slow_kept += 1
                retained = True

            if not retained and policy.sample_every > 1 and \
                    (self.ingested - 1) % policy.sample_every != 0:
                self.sampled_out += 1
            else:
                self._ring.append(root)
                self._retain(root)
                retained = True
                if len(self._ring) > policy.capacity:
                    self._release(self._ring.popleft())

            if retained:
                self.kept += 1
        if is_enabled():
            registry = get_registry()
            registry.inc("obs.traces.ingested")
            if retained:
                registry.inc("obs.traces.kept")
            else:
                registry.inc("obs.traces.sampled_out")
            registry.set_gauge("obs.traces.retained", self.retained)
        return retained

    # -- lookup ----------------------------------------------------------

    def get(self, trace_id: str) -> Span | None:
        with self._lock:
            return self._index.get(trace_id)

    @property
    def retained(self) -> int:
        """Distinct trace roots currently held across all buffers."""
        return len(self._refs)

    def summaries(self, limit: int = 50) -> list[dict[str, Any]]:
        """Newest-first one-line digests of the retained ring +
        error-tail traces (the ops-console listing)."""
        with self._lock:
            seen: set[int] = set()
            rows: list[dict[str, Any]] = []
            for root in itertools.chain(reversed(self._ring),
                                        reversed(self._errors)):
                if root.span_id in seen:
                    continue
                seen.add(root.span_id)
                rows.append({
                    "trace_id": root.attributes.get("trace_id"),
                    "name": root.name,
                    "op": root.attributes.get("op"),
                    "duration_ms": round(root.duration_ms, 3),
                    "error": root.attributes.get("error"),
                    "spans": sum(1 for _ in root.walk()),
                })
                if len(rows) >= limit:
                    break
            return rows

    def stats(self) -> dict[str, Any]:
        """Counter snapshot; ``ingested == kept + sampled_out`` and
        ``retained == kept - evicted`` always hold."""
        with self._lock:
            return {
                "ingested": self.ingested,
                "kept": self.kept,
                "sampled_out": self.sampled_out,
                "evicted": self.evicted,
                "retained": len(self._refs),
                "errors_kept": self.errors_kept,
                "slow_kept": self.slow_kept,
                "ring": len(self._ring),
                "errors": len(self._errors),
                "slow": len(self._slow),
                "policy": {
                    "capacity": self.policy.capacity,
                    "error_capacity": self.policy.error_capacity,
                    "slow_capacity": self.policy.slow_capacity,
                    "sample_every": self.policy.sample_every,
                },
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._errors.clear()
            self._slow.clear()
            self._index.clear()
            self._refs.clear()

    # -- tracer hygiene ---------------------------------------------------

    @staticmethod
    def maintain(limit: int = 10_000) -> bool:
        """Reset the global tracer's finished-roots list once it grows
        past ``limit``; returns whether a reset happened.

        Safe because this store (not the tracer) owns the retained
        request traces — the tracer's list is only a staging area on a
        resident server, and metrics survive the reset.
        """
        tracer = get_tracer()
        if tracer.enabled and \
                len(tracer.finished_roots()) > limit:
            tracer.reset()
            if is_enabled():
                get_registry().inc("obs.traces.tracer_resets")
            return True
        return False
