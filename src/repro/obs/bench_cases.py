"""Built-in cases for the :mod:`repro.obs.bench` default suite.

Mirrors the kernels the ``benchmarks/bench_workload_*.py`` and
``bench_ablation_*.py`` files time under pytest, packaged as
zero-argument callables so ``python -m repro.obs.bench run`` works from
anywhere without pytest in the loop (the pytest bench files themselves
register additional cases through the ``benchmarks/suite.py`` adapter,
passed with ``--extra``). Inputs are built lazily, once, outside the
timed region.

Imports are deliberately local to each case factory so importing
:mod:`repro.obs` never drags in the whole stack.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.bench import BenchSuite

#: Shared input sizes — small enough that a full suite run is seconds,
#: large enough that kernels dominate interpreter noise.
SOCIAL_SEED = 17
SMALLWORLD = (400, 6, 0.05)
DIST_K = 4
DIST_SUPERSTEPS = 10
SERVE_REQUESTS = 20
SERVE_QUERY = ("MATCH (c:Customer)-[:PLACED]->(o:Order) "
               "RETURN c, o")

_INPUTS: dict[str, Any] = {}


def _social_graph():
    if "social" not in _INPUTS:
        from repro.workloads import build_scenario

        _INPUTS["social"] = build_scenario("social", seed=SOCIAL_SEED)
    return _INPUTS["social"]


def _smallworld_graph():
    if "smallworld" not in _INPUTS:
        from repro.generators import watts_strogatz

        n, k, p = SMALLWORLD
        _INPUTS["smallworld"] = watts_strogatz(n, k, p, seed=0)
    return _INPUTS["smallworld"]


def _product_graph():
    if "product" not in _INPUTS:
        from repro.workloads import generate_product_graph

        _INPUTS["product"] = generate_product_graph(seed=SOCIAL_SEED)
    return _INPUTS["product"]


def _serve_service():
    if "serve" not in _INPUTS:
        from repro.serve.service import GraphService

        service = GraphService()
        service.create_graph(graph_id="bench", scenario="product",
                             seed=SOCIAL_SEED)
        _INPUTS["serve"] = service
    return _INPUTS["serve"]


def clear_inputs() -> None:
    """Drop cached case inputs (tests use this to isolate state)."""
    _INPUTS.clear()


def _workload_case(computation: str) -> Callable[[], Any]:
    def run():
        from repro.workloads import run_computation

        return run_computation(computation, _social_graph(),
                               seed=SOCIAL_SEED)
    return run


# -- work denominators (schema-v2 throughput; GraphChallenge publishes
# edges/sec as the comparable unit, so every graph kernel declares the
# edges one repetition processes) -------------------------------------

def _social_edges() -> int:
    return _social_graph().num_edges()


def _social_edge_supersteps() -> int:
    # Pregel-style kernels touch every edge once per superstep.
    return _social_graph().num_edges() * DIST_SUPERSTEPS


def _smallworld_edges() -> int:
    return _smallworld_graph().num_edges()


def register_default_cases(suite: BenchSuite) -> BenchSuite:
    """Register the standing case set: workload kernels, ablation
    kernels, and one k=4 distributed case."""
    n, k, p = SMALLWORLD

    # -- workload kernels (Table 9 computations on the scenario graph) --
    for name, computation in (
        ("workload.components", "Finding Connected Components"),
        ("workload.pagerank", "Ranking & Centrality Scores"),
        ("workload.bfs", "Breadth-first-search or variant"),
        ("workload.triangles", "Aggregations"),
        ("workload.partitioning", "Graph Partitioning"),
    ):
        suite.add(name, _workload_case(computation),
                  tags=("workload",), work=_social_edges,
                  computation=computation,
                  scenario="social", seed=SOCIAL_SEED)

    def pregel_pagerank_case():
        from repro.dgps import pregel_pagerank

        return pregel_pagerank(_social_graph(),
                               supersteps=DIST_SUPERSTEPS)

    suite.add("dgps.pregel_pagerank", pregel_pagerank_case,
              tags=("workload", "dgps"),
              work=_social_edge_supersteps,
              supersteps=DIST_SUPERSTEPS)

    def query_case():
        from repro.query import run_query

        return run_query(_product_graph(),
                         "MATCH (c:Customer)-[:PLACED]->(o:Order) "
                         "RETURN c, o").rows

    suite.add("query.match_placed", query_case, tags=("query",))

    # -- ablation kernels (partitioner quality bench, head to head) ----
    def partition_bfs_case():
        from repro.algorithms.partitioning import partition_graph

        return partition_graph(_smallworld_graph(), DIST_K, seed=0)

    def partition_hash_case():
        from repro.dist import hash_partition

        return hash_partition(_smallworld_graph(), DIST_K, seed=0)

    suite.add("ablation.partition_bfs", partition_bfs_case,
              tags=("ablation",), work=_smallworld_edges,
              n=n, k=DIST_K, strategy="bfs+refine")
    suite.add("ablation.partition_hash", partition_hash_case,
              tags=("ablation",), work=_smallworld_edges,
              n=n, k=DIST_K, strategy="hash")

    # -- the sharded runtime, k=4 --------------------------------------
    def dist_pagerank_case():
        from repro.dgps.algorithms import pagerank_spec
        from repro.dist import run_distributed_pregel

        graph = _social_graph()
        return run_distributed_pregel(
            graph, pagerank_spec(graph, supersteps=DIST_SUPERSTEPS),
            k=DIST_K, seed=0).values

    suite.add("dist.pagerank_k4", dist_pagerank_case,
              tags=("dist",), work=_social_edge_supersteps,
              k=DIST_K, supersteps=DIST_SUPERSTEPS,
              partitioner="bfs")

    def dist_pagerank_with_fault_case():
        from repro.dgps.algorithms import pagerank_spec
        from repro.dist import FaultPlan, run_distributed_pregel

        graph = _social_graph()
        return run_distributed_pregel(
            graph, pagerank_spec(graph, supersteps=DIST_SUPERSTEPS),
            k=DIST_K, seed=0,
            fault_plan=FaultPlan().kill(
                "w1", at_superstep=DIST_SUPERSTEPS // 2)).values

    # Same kernel as dist.pagerank_k4 plus one mid-run worker kill —
    # the delta between the two medians is the recovery overhead
    # (checkpoint restore + replay), tracked per PR like any other
    # case.
    suite.add("dist.pagerank_with_fault", dist_pagerank_with_fault_case,
              tags=("dist", "resilience"),
              work=_social_edge_supersteps, k=DIST_K,
              supersteps=DIST_SUPERSTEPS, partitioner="bfs",
              fault=f"w1@{DIST_SUPERSTEPS // 2}",
              baseline_case="dist.pagerank_k4")

    def analysis_full_sweep_case():
        from pathlib import Path

        import repro
        from repro.analysis import analyze_paths

        package_root = Path(repro.__file__).parent
        report = analyze_paths([package_root])
        return {"targets": len(report.targets),
                "findings": len(report.findings)}

    # Tracks the analyzer's steady-state sweep over the full source
    # tree. After the warmup rep this measures the *incremental* path
    # (unchanged files hit the whole-file result cache), which is
    # what CI re-runs pay; cold rule cost is tracked separately by
    # analysis.concurrency_sweep below.
    suite.add("analysis.full_sweep", analysis_full_sweep_case,
              tags=("analysis",), paths="src/repro")

    def analysis_concurrency_sweep_case():
        from pathlib import Path

        import repro
        from repro.analysis import analyze_paths
        from repro.analysis.registry import match_selection
        from repro.analysis.scanner import clear_ast_cache

        # Cold on purpose: clearing the caches makes every rep pay
        # the full parse + rule cost, so a slow RACE/LEAK/DLC rule
        # regresses visibly instead of hiding behind the result
        # cache.
        clear_ast_cache()
        package_root = Path(repro.__file__).parent
        report = analyze_paths([package_root])
        select = ("RACE", "LEAK", "DLC", "SUP")
        findings = [f for f in report.findings
                    if match_selection(f.rule, select, ())]
        return {"targets": len(report.targets),
                "findings": len(findings)}

    # Cold-cache cost of the concurrency/resource-safety families
    # (the most traversal-heavy rules) over the full source tree.
    suite.add("analysis.concurrency_sweep",
              analysis_concurrency_sweep_case,
              tags=("analysis",), paths="src/repro")

    # -- service layer (GraphService driven directly, no socket: the
    # cache-hit path vs. the executor path, requests/sec) --------------
    def serve_cached_case():
        service = _serve_service()
        for _ in range(SERVE_REQUESTS):
            last = service.query("bench", SERVE_QUERY)
        return last["cache"]

    def serve_cold_case():
        service = _serve_service()
        for _ in range(SERVE_REQUESTS):
            service.cache.clear()  # force the executor path each time
            last = service.query("bench", SERVE_QUERY)
        return last["cache"]

    def serve_traced_case():
        # The cached-query loop under an explicit trace scope, so the
        # compare gate (baseline: serve.query_cached) proves the
        # request-tracing layer — trace-id stamping, slowlog
        # recording, SLO accounting, retention ingest — stays within
        # the noise guards on the hottest serve path.
        from repro.obs.trace_context import trace_scope

        service = _serve_service()
        for _ in range(SERVE_REQUESTS):
            with trace_scope():
                last = service.query("bench", SERVE_QUERY)
        return last["cache"]

    def serve_deadline_case():
        # The cached-query loop under an armed (generous) deadline,
        # so the compare gate (baseline: serve.query_cached) pins the
        # cost of cooperative deadline checks — contextvar read +
        # monotonic clock per row/boundary — on the hottest serve
        # path.
        from repro.obs.deadline import deadline_scope

        service = _serve_service()
        with deadline_scope(60_000.0):
            for _ in range(SERVE_REQUESTS):
                last = service.query("bench", SERVE_QUERY)
        return last["cache"]

    suite.add("serve.query_cached", serve_cached_case,
              tags=("serve",), work=SERVE_REQUESTS,
              query=SERVE_QUERY, requests=SERVE_REQUESTS)
    suite.add("serve.query_cold", serve_cold_case,
              tags=("serve",), work=SERVE_REQUESTS,
              query=SERVE_QUERY, requests=SERVE_REQUESTS,
              baseline_case="serve.query_cached")
    suite.add("serve.request_traced", serve_traced_case,
              tags=("serve",), work=SERVE_REQUESTS,
              query=SERVE_QUERY, requests=SERVE_REQUESTS,
              baseline_case="serve.query_cached")
    suite.add("serve.query_deadline", serve_deadline_case,
              tags=("serve",), work=SERVE_REQUESTS,
              query=SERVE_QUERY, requests=SERVE_REQUESTS,
              deadline_ms=60_000.0,
              baseline_case="serve.query_cached")

    return suite


def default_suite() -> BenchSuite:
    """A fresh suite holding the standing case set."""
    return register_default_cases(BenchSuite("repro-default"))
