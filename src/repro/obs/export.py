"""Exporters for span trees and metric summaries.

Three output shapes, matching the three consumers:

* :func:`to_jsonl` / :func:`from_jsonl` -- one JSON object per finished
  span (flat records linked by ``parent_id``), the machine-readable
  trace dump; round-trips back into a linked tree of
  :class:`SpanRecord`;
* :func:`render_tree` -- an indented human-readable tree with durations
  and attributes, for terminals;
* :func:`observability_dict` -- spans plus the metric summary as one
  plain dict, the form the benchmark suite embeds in ``BENCH_*.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import Span, finished_roots

#: Version tag stamped on :func:`observability_dict` payloads (and
#: embedded inside ``BENCH_*.json`` artifacts). Bump on shape changes
#: so consumers can reject payloads they do not understand.
OBS_SCHEMA = "repro.obs/v1"


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-safe types (keys become str,
    unknown objects become their repr)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def _walk(roots: Iterable[Span]) -> Iterator[Span]:
    for root in roots:
        yield from root.walk()


def span_record(span: Span) -> dict[str, Any]:
    """The flat JSON record for one span."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent.span_id if span.parent else None,
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "duration_ms": span.duration_ms,
        "attributes": _jsonable(span.attributes),
    }


def to_jsonl(roots: Iterable[Span] | None = None) -> str:
    """Serialize span trees as JSON-lines (depth-first, parents before
    children). Defaults to every finished root span in the tracer."""
    if roots is None:
        roots = finished_roots()
    lines = [json.dumps(span_record(s), sort_keys=True, default=repr)
             for s in _walk(roots)]
    return "\n".join(lines)


@dataclass
class SpanRecord:
    """A span re-read from a JSON-lines dump, with tree links."""

    span_id: int
    parent_id: int | None
    name: str
    start_ns: int | None
    end_ns: int | None
    duration_ms: float
    attributes: dict[str, Any]
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanRecord"]:
        return [s for s in self.walk() if s.name == name]


def from_jsonl(text: str) -> list[SpanRecord]:
    """Parse a JSON-lines dump back into linked root records."""
    by_id: dict[int, SpanRecord] = {}
    roots: list[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        record = SpanRecord(
            span_id=raw["span_id"],
            parent_id=raw.get("parent_id"),
            name=raw["name"],
            start_ns=raw.get("start_ns"),
            end_ns=raw.get("end_ns"),
            duration_ms=raw.get("duration_ms", 0.0),
            attributes=raw.get("attributes", {}),
        )
        by_id[record.span_id] = record
        parent = by_id.get(record.parent_id)
        if parent is not None:
            parent.children.append(record)
        else:
            roots.append(record)
    return roots


_TREE_ATTR_LIMIT = 60


def _format_attributes(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        text = repr(value)
        if len(text) > _TREE_ATTR_LIMIT:
            text = text[:_TREE_ATTR_LIMIT - 3] + "..."
        parts.append(f"{key}={text}")
    return "  {" + ", ".join(parts) + "}"


def render_tree(roots: Iterable[Span | SpanRecord] | None = None) -> str:
    """The span forest as an indented text tree with durations."""
    if roots is None:
        roots = finished_roots()

    lines: list[str] = []

    def render(span, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{indent}{span.name}  {span.duration_ms:.3f} ms"
                     f"{_format_attributes(span.attributes)}")
        for child in span.children:
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def observability_dict(
    roots: Iterable[Span] | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Spans + metrics as one embeddable dict (``BENCH_*.json`` form)."""
    if roots is None:
        roots = finished_roots()
    if registry is None:
        registry = get_registry()
    return {
        "schema": OBS_SCHEMA,
        "spans": [span_record(s) for s in _walk(roots)],
        "metrics": registry.summary(),
    }
