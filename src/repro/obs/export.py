"""Exporters for span trees and metric summaries.

Three output shapes, matching the three consumers:

* :func:`to_jsonl` / :func:`from_jsonl` -- one JSON object per finished
  span (flat records linked by ``parent_id``), the machine-readable
  trace dump; round-trips back into a linked tree of
  :class:`SpanRecord`;
* :func:`render_tree` -- an indented human-readable tree with durations
  and attributes, for terminals;
* :func:`observability_dict` -- spans plus the metric summary as one
  plain dict, the form the benchmark suite embeds in ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import Span, finished_roots


class ArtifactError(ReproError):
    """A saved observability/report artifact could not be loaded:
    missing file, torn/truncated JSON, or the wrong payload shape.

    The report CLIs (``repro.obs.report --input``,
    ``repro.dist.report --input``) map this to a named non-zero exit
    instead of a traceback — a missing or half-written artifact is an
    operational condition, not a bug in the reader.
    """

#: Version tag stamped on :func:`observability_dict` payloads (and
#: embedded inside ``BENCH_*.json`` artifacts). Bump on shape changes
#: so consumers can reject payloads they do not understand.
OBS_SCHEMA = "repro.obs/v1"


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-safe types (keys become str,
    unknown objects become their repr)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def _walk(roots: Iterable[Span]) -> Iterator[Span]:
    for root in roots:
        yield from root.walk()


def span_record(span: Span) -> dict[str, Any]:
    """The flat JSON record for one span."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent.span_id if span.parent else None,
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "duration_ms": span.duration_ms,
        "attributes": _jsonable(span.attributes),
    }


def to_jsonl(roots: Iterable[Span] | None = None) -> str:
    """Serialize span trees as JSON-lines (depth-first, parents before
    children). Defaults to every finished root span in the tracer."""
    if roots is None:
        roots = finished_roots()
    lines = [json.dumps(span_record(s), sort_keys=True, default=repr)
             for s in _walk(roots)]
    return "\n".join(lines)


@dataclass
class SpanRecord:
    """A span re-read from a JSON-lines dump, with tree links."""

    span_id: int
    parent_id: int | None
    name: str
    start_ns: int | None
    end_ns: int | None
    duration_ms: float
    attributes: dict[str, Any]
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanRecord"]:
        return [s for s in self.walk() if s.name == name]


def link_span_records(
    raw_records: Iterable[dict[str, Any]],
) -> list[SpanRecord]:
    """Link flat span dicts (``span_record`` shape, parents before
    children) into root :class:`SpanRecord` trees."""
    by_id: dict[int, SpanRecord] = {}
    roots: list[SpanRecord] = []
    for raw in raw_records:
        record = SpanRecord(
            span_id=raw["span_id"],
            parent_id=raw.get("parent_id"),
            name=raw["name"],
            start_ns=raw.get("start_ns"),
            end_ns=raw.get("end_ns"),
            duration_ms=raw.get("duration_ms", 0.0),
            attributes=raw.get("attributes", {}),
        )
        by_id[record.span_id] = record
        parent = by_id.get(record.parent_id)
        if parent is not None:
            parent.children.append(record)
        else:
            roots.append(record)
    return roots


def from_jsonl(text: str) -> list[SpanRecord]:
    """Parse a JSON-lines dump back into linked root records."""
    raw_records = [json.loads(line) for line in text.splitlines()
                   if line.strip()]
    return link_span_records(raw_records)


_TREE_ATTR_LIMIT = 60


def _format_attributes(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        text = repr(value)
        if len(text) > _TREE_ATTR_LIMIT:
            text = text[:_TREE_ATTR_LIMIT - 3] + "..."
        parts.append(f"{key}={text}")
    return "  {" + ", ".join(parts) + "}"


def render_tree(roots: Iterable[Span | SpanRecord] | None = None) -> str:
    """The span forest as an indented text tree with durations."""
    if roots is None:
        roots = finished_roots()

    lines: list[str] = []

    def render(span, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{indent}{span.name}  {span.duration_ms:.3f} ms"
                     f"{_format_attributes(span.attributes)}")
        for child in span.children:
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def observability_dict(
    roots: Iterable[Span] | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Spans + metrics as one embeddable dict (``BENCH_*.json`` form)."""
    if roots is None:
        roots = finished_roots()
    if registry is None:
        registry = get_registry()
    return {
        "schema": OBS_SCHEMA,
        "spans": [span_record(s) for s in _walk(roots)],
        "metrics": registry.summary(),
    }


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A registry instrument name as a Prometheus metric name: dots
    and any other illegal characters become underscores."""
    sanitized = _PROM_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Counters get the conventional ``_total`` suffix, gauges render
    as-is (unset gauges are skipped — Prometheus has no null), and
    histograms expand to cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, mapping the registry's inclusive
    upper-bound buckets directly onto ``le``.
    """
    if registry is None:
        registry = get_registry()
    lines: list[str] = []
    for name, counter in sorted(registry._counters.items()):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter.value)}")
    for name, gauge in sorted(registry._gauges.items()):
        if gauge.value is None:
            continue
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge.value)}")
    for name, histogram in sorted(registry._histograms.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bound)}"}} '
                f"{cumulative}")
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def load_json_artifact(path: str | Path) -> dict[str, Any]:
    """Read one saved JSON artifact; every failure mode is a named
    :class:`ArtifactError` (never a traceback-worthy surprise)."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ArtifactError(
            f"artifact {str(path)!r} does not exist") from None
    except OSError as exc:
        raise ArtifactError(
            f"artifact {str(path)!r} is unreadable: {exc}") from None
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ArtifactError(
            f"artifact {str(path)!r} is not valid JSON (torn or "
            f"partial write?): {exc}") from None
    if not isinstance(payload, dict):
        raise ArtifactError(
            f"artifact {str(path)!r} holds "
            f"{type(payload).__name__}, expected a JSON object")
    return payload


def load_observability_artifact(path: str | Path) -> dict[str, Any]:
    """Load a saved :func:`observability_dict` payload (the
    ``repro.obs.report --json`` output), validating its shape."""
    payload = load_json_artifact(path)
    if "spans" not in payload or "metrics" not in payload:
        raise ArtifactError(
            f"artifact {str(path)!r} is not an observability payload "
            f"(missing 'spans'/'metrics'; keys: "
            f"{sorted(payload)[:8]})")
    schema = payload.get("schema")
    if schema != OBS_SCHEMA:
        raise ArtifactError(
            f"artifact {str(path)!r} has schema {schema!r}; this "
            f"reader understands {OBS_SCHEMA!r}")
    return payload
