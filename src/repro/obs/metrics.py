"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The measurement half of :mod:`repro.obs`. A :class:`MetricsRegistry`
holds named instruments that instrumented code increments on hot paths;
``registry.summary()`` flattens everything into a plain dict the
benchmark suite can embed in ``BENCH_*.json`` files.

Instruments:

* :class:`Counter` -- monotonically accumulating integer/float total.
  Backed by Python's arbitrary-precision ints, so it never overflows.
* :class:`Gauge` -- a last-write-wins value (queue depth, graph size).
* :class:`Histogram` -- fixed upper-bound buckets with p50/p95/p99
  summaries. Observation is a binary search plus two adds; percentiles
  interpolate linearly *within* the bucket containing the target rank
  (clamped to the observed min/max; the overflow bucket reports the
  observed maximum), so the error is bounded by one bucket width
  rather than always rounding up to the bucket's upper bound.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any

#: Default histogram upper bounds, tuned for millisecond timings.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: int | float) -> None:
        """Overwrite the total (used to restore saved stats)."""
        with self._lock:
            self.value = value

    def reset(self) -> None:
        self.set(0)


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are inclusive upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and "
                             "non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, p: float) -> float | None:
        """The pth-percentile estimate, interpolated within its bucket
        (None when empty; overflow reports the observed maximum).

        The target rank is ``ceil(p/100 * count)`` clamped to >= 1 (the
        conventional nearest-rank definition), then the estimate is a
        linear interpolation across the bucket holding that rank: a
        bucket whose observations fill ranks ``prev+1 .. prev+n``
        resolves rank ``prev+i`` to ``lower + (i/n) * (upper - lower)``.
        The bucket's lower edge is the previous bound, clamped up to
        the observed minimum (it *is* the observed minimum for the
        first bucket), and its upper edge is clamped down to the
        observed maximum — so a single observation reports itself, and
        no percentile is ever below the smallest observed value.

        **Error bound:** the true order statistic lies somewhere in the
        same bucket, so the estimate is off by at most one bucket width
        (for skewed latency data the old upper-bound rule *always* paid
        the full width; interpolation is exact for uniformly spread
        buckets and still within the width in the worst case). Ranks in
        the overflow bucket resolve to the observed maximum.
        """
        if self.count == 0:
            return None
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):  # overflow bucket
                    return self.max
                upper = self.bounds[index]
                if self.max is not None:
                    upper = min(upper, self.max)
                lower = self.bounds[index - 1] if index else self.min
                if self.min is not None:
                    # The bucket holding the observed minimum has a
                    # lower edge below every real observation; without
                    # this clamp a low-rank percentile interpolates to
                    # a value no observation ever took (e.g. a single
                    # 700ms sample in the 500-1000 bucket reporting
                    # p50 < 700).
                    lower = max(lower, self.min)
                lower = min(lower, upper)
                fraction = (rank - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self.max

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


class MetricsRegistry:
    """Named instruments, created on first use.

    Get-or-create is locked; each instrument serializes its own
    updates, so concurrent hot paths never corrupt totals.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(
                    name, Histogram(name, buckets))

    # -- convenience ------------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float | int) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reporting --------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Everything the registry holds, as a plain JSON-ready dict."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        with self._lock:
            for instrument in (*self._counters.values(),
                               *self._gauges.values(),
                               *self._histograms.values()):
                instrument.reset()

    def clear(self) -> None:
        """Drop every instrument (reset keeps them at zero instead)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry used by the instrumented subsystems."""
    return _REGISTRY
