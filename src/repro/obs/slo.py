"""Declarative SLOs evaluated over multi-window burn rates.

"SoK: The Faults in our Graph Benchmarks" (PAPERS.md) shows how
unattributed aggregate numbers mislead; an SLO turns "the service felt
slow" into a falsifiable statement — *99% of queries complete under
250ms* — and a burn rate says how fast the error budget is being
spent right now.

Spec literals (validated statically by the CFG006 analysis rule)::

    latency:query<250ms@0.99     # 99% of query requests under 250ms
    errors:*@0.999               # 99.9% of all requests succeed

Grammar: ``latency:OP<THRESHOLDms@TARGET`` or ``errors:OP@TARGET``
where ``OP`` is a serve request op (or ``*`` for all), the threshold
is a positive millisecond count, and the target is a fraction in
(0, 1].

Evaluation follows the multi-window burn-rate discipline: the
:class:`SLOMonitor` keeps a bounded, timestamped event window per run
and computes, for each spec and each window (default 60s and 300s),

    ``burn_rate = bad_fraction / (1 - target)``

A burn of 1.0 spends the budget exactly at the sustainable rate;
``burning`` is flagged only when **every** window burns above the
threshold — the short window proves it is happening *now*, the long
window proves it is not a blip. Latency SLOs measure successful
requests only (a failed request has no meaningful latency); error
SLOs count every request.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

#: Serve request ops a spec may target (``*`` matches any op).
KNOWN_OPS = ("query", "mutate", "algorithm", "create", "delete", "*")

#: Default burn-rate windows, seconds: "is it happening now" and "is
#: it sustained".
DEFAULT_WINDOWS: tuple[float, ...] = (60.0, 300.0)

#: Schema tag on :meth:`SLOMonitor.evaluate` payloads.
SLO_SCHEMA = "repro.obs.slo/v1"

_LATENCY = re.compile(
    r"^latency:(?P<op>[\w*]+)<(?P<threshold>[0-9.]+)ms"
    r"@(?P<target>[0-9.]+)$")
_ERRORS = re.compile(r"^errors:(?P<op>[\w*]+)@(?P<target>[0-9.]+)$")


@dataclass(frozen=True)
class SLOSpec:
    """One parsed service-level objective."""

    kind: str  # "latency" | "errors"
    op: str
    target: float
    threshold_ms: float | None = None

    def __post_init__(self):
        if self.kind not in ("latency", "errors"):
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; known: "
                f"['latency', 'errors']")
        if self.op not in KNOWN_OPS:
            raise ValueError(
                f"unknown SLO op {self.op!r}; known: "
                f"{list(KNOWN_OPS)}")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(
                f"SLO target {self.target} must be in (0, 1]")
        if self.kind == "latency":
            if self.threshold_ms is None or self.threshold_ms <= 0:
                raise ValueError(
                    f"latency SLO threshold {self.threshold_ms!r} "
                    f"must be > 0 ms")
        elif self.threshold_ms is not None:
            raise ValueError("errors SLO takes no latency threshold")

    @classmethod
    def parse(cls, text: str) -> "SLOSpec":
        """Parse a spec literal; malformed grammar, unknown ops,
        non-positive thresholds, and out-of-range targets are
        :class:`ValueError` (the CFG006 pre-flight surface)."""
        compact = text.strip()
        match = _LATENCY.match(compact)
        if match:
            return cls(kind="latency", op=match["op"],
                       threshold_ms=float(match["threshold"]),
                       target=float(match["target"]))
        match = _ERRORS.match(compact)
        if match:
            return cls(kind="errors", op=match["op"],
                       target=float(match["target"]))
        raise ValueError(
            f"bad SLO spec {text!r}: expected "
            f"'latency:OP<Nms@T' or 'errors:OP@T'")

    def render(self) -> str:
        """The canonical literal form (parse round-trips it)."""
        target = format(self.target, "g")
        if self.kind == "latency":
            threshold = format(self.threshold_ms, "g")
            return f"latency:{self.op}<{threshold}ms@{target}"
        return f"errors:{self.op}@{target}"

    def matches(self, op: str) -> bool:
        return self.op == "*" or self.op == op

    def is_bad(self, latency_ms: float, error: bool) -> bool | None:
        """Whether one event violates this SLO; None when the event
        does not count toward it (failed requests for latency SLOs)."""
        if self.kind == "errors":
            return error
        if error:
            return None
        return latency_ms > self.threshold_ms


def parse_specs(specs: Iterable["SLOSpec | str"]) -> list[SLOSpec]:
    """Normalize a mixed list of literals/specs, preserving order."""
    return [spec if isinstance(spec, SLOSpec) else SLOSpec.parse(spec)
            for spec in specs]


def _window_verdict(spec: SLOSpec,
                    events: Iterable[tuple[float, bool]],
                    window_s: float) -> dict[str, Any]:
    """One spec over one window's (latency_ms, error) events."""
    total = bad = 0
    for latency_ms, error in events:
        verdict = spec.is_bad(latency_ms, error)
        if verdict is None:
            continue
        total += 1
        bad += bool(verdict)
    budget = 1.0 - spec.target
    bad_rate = bad / total if total else 0.0
    if budget > 0.0:
        burn = bad_rate / budget
    else:
        # target == 1.0: zero budget; any violation is infinite burn,
        # reported as None (JSON has no inf) with met=False.
        burn = None if bad else 0.0
    return {
        "window_s": window_s,
        "events": total,
        "bad": bad,
        "compliance": round(1.0 - bad_rate, 6),
        "burn_rate": (round(burn, 4)
                      if burn is not None else None),
        "met": bad_rate <= budget + 1e-12,
    }


class SLOMonitor:
    """Rolling SLO evaluation over a bounded event window.

    ``clock`` is injectable (tests step a fake clock through window
    boundaries); events older than the longest window are pruned on
    every record, and ``max_events`` hard-bounds memory under traffic
    faster than the prune horizon.
    """

    def __init__(self, specs: Sequence[SLOSpec | str] = (), *,
                 windows: Sequence[float] = DEFAULT_WINDOWS,
                 burn_threshold: float = 1.0,
                 max_events: int = 8192,
                 clock: Callable[[], float] = time.monotonic):
        if not windows or any(w <= 0 for w in windows):
            raise ValueError("windows must be positive")
        self.specs = parse_specs(specs)
        self.windows = tuple(sorted(windows))
        self.burn_threshold = burn_threshold
        self.max_events = max_events
        self._clock = clock
        self._lock = threading.Lock()
        # (t, op, latency_ms, error)
        self._events: deque[tuple[float, str, float, bool]] = deque(
            maxlen=max_events)
        self.recorded = 0

    def record(self, op: str, latency_ms: float, *,
               error: bool = False) -> None:
        now = self._clock()
        horizon = now - self.windows[-1]
        with self._lock:
            self.recorded += 1
            self._events.append((now, op, latency_ms, error))
            while self._events and self._events[0][0] < horizon:
                self._events.popleft()

    def evaluate(self, now: float | None = None) -> dict[str, Any]:
        """Every spec against every window, plus the burning flag."""
        if now is None:
            now = self._clock()
        with self._lock:
            events = list(self._events)
        results = []
        for spec in self.specs:
            matching = [(latency, error)
                        for _t, op, latency, error in events
                        if spec.matches(op)]
            windows = []
            for window_s in self.windows:
                cutoff = now - window_s
                in_window = [(latency, error)
                             for t, op, latency, error in events
                             if t >= cutoff and spec.matches(op)]
                windows.append(
                    _window_verdict(spec, in_window, window_s))
            # Multi-window rule: every window must be burning (and
            # have seen traffic) before the alarm trips.
            burning = bool(windows) and all(
                w["events"] > 0
                and (w["burn_rate"] is None
                     or w["burn_rate"] >= self.burn_threshold)
                and not w["met"]
                for w in windows)
            results.append({
                "spec": spec.render(),
                "kind": spec.kind,
                "op": spec.op,
                "threshold_ms": spec.threshold_ms,
                "target": spec.target,
                "events": len(matching),
                "windows": windows,
                "burning": burning,
            })
        return {
            "schema": SLO_SCHEMA,
            "burn_threshold": self.burn_threshold,
            "windows_s": list(self.windows),
            "recorded": self.recorded,
            "slos": results,
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"recorded": self.recorded,
                    "window_events": len(self._events),
                    "specs": [spec.render() for spec in self.specs]}


def evaluate_samples(
    specs: Sequence[SLOSpec | str],
    samples: Iterable[tuple[str, float, bool]],
) -> list[dict[str, Any]]:
    """One-shot compliance over a closed sample set — the per-run SLO
    report :mod:`repro.serve.traffic` prints (no windows: a finite run
    is its own window). ``samples`` are (op, latency_ms, error)."""
    parsed = parse_specs(specs)
    samples = list(samples)
    rows = []
    for spec in parsed:
        matching = [(latency, error)
                    for op, latency, error in samples
                    if spec.matches(op)]
        verdict = _window_verdict(spec, matching, 0.0)
        verdict.pop("window_s")
        rows.append({"spec": spec.render(), **verdict})
    return rows
