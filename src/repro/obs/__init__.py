"""Unified observability: tracing spans, metrics, and exporters.

The single measurement substrate the ROADMAP's perf work rests on.
Every instrumented subsystem (query executor/profiler, Pregel engine,
graph database, mining pipeline, workload runner) speaks this API, so
one ``enable()`` lights up the whole stack:

    >>> from repro import obs
    >>> obs.enable()
    >>> with obs.span("demo", n=3):
    ...     obs.get_registry().inc("demo.items", 3)
    >>> print(obs.render_tree())       # doctest: +SKIP
    >>> obs.disable(); obs.reset()

Tracing is **disabled by default**; the gated :func:`span` constructor
returns a shared no-op singleton while off, so instrumentation costs
one attribute read on hot paths. ``python -m repro.obs.report`` runs a
small instrumented workload end to end and prints the span tree plus
the metric summary.

On top of the substrate sit two analysis layers: :mod:`repro.obs.bench`
(``python -m repro.obs.bench run|compare|report``) runs the registered
benchmark cases, writes schema-versioned ``BENCH_<label>.json``
artifacts and detects regressions between them, and
:mod:`repro.obs.timeline` reconstructs per-worker / per-superstep lanes
and load-skew statistics from :mod:`repro.dist` span records.

Resource attribution rides the same spans: :mod:`repro.obs.profile`
(``python -m repro.obs.profile``) attributes CPU time and allocation
peaks to each span (``cpu_ms`` / ``self_cpu_ms`` / ``peak_alloc_kb``
attributes, off by default, zero overhead while off), and
:mod:`repro.obs.memory` exposes peak-RSS / tracemalloc gauges plus the
:class:`AllocationTracker` block-level allocation meter.

Request-scoped telemetry completes the picture:
:mod:`repro.obs.trace_context` propagates a per-request ``trace_id``
onto every span via ``contextvars``, :mod:`repro.obs.retention` keeps
a bounded trace store with tail-based keep rules,
:mod:`repro.obs.slowlog` aggregates fingerprinted query latencies,
:mod:`repro.obs.slo` evaluates declarative SLOs over multi-window
burn rates, and ``python -m repro.obs.live`` is the polling ops
console over a running :mod:`repro.serve` instance.
"""

from repro.obs.memory import (
    AllocationTracker,
    current_rss_kb,
    memory_summary,
    peak_rss_kb,
    record_memory_gauges,
    traced_memory_kb,
)
from repro.obs.export import (
    OBS_SCHEMA,
    ArtifactError,
    SpanRecord,
    from_jsonl,
    link_span_records,
    load_json_artifact,
    load_observability_artifact,
    observability_dict,
    render_prometheus,
    render_tree,
    span_record,
    to_jsonl,
)
from repro.obs.deadline import (
    DEADLINE_HEADER,
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
    parse_deadline_ms,
)
from repro.obs.retention import RetentionPolicy, TraceStore
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    evaluate_samples,
    parse_specs,
)
from repro.obs.slowlog import SlowLog, fingerprint
from repro.obs.trace_context import (
    TRACE_HEADER,
    accept_trace_id,
    current_trace_id,
    new_trace_id,
    trace_scope,
    valid_trace_id,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.timeline import (
    Lane,
    SuperstepLanes,
    Timeline,
    build_timeline,
    render_timeline,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    capture,
    current_span,
    disable,
    enable,
    finished_roots,
    forced_span,
    get_tracer,
    is_enabled,
    reset_spans,
    span,
    subscribe,
    unsubscribe,
)

__all__ = [
    # spans
    "NULL_SPAN", "Span", "Tracer", "capture", "current_span", "disable",
    "enable", "finished_roots", "forced_span", "get_tracer", "is_enabled",
    "reset", "reset_spans", "span", "subscribe", "unsubscribe",
    # metrics
    "DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry",
    # export
    "OBS_SCHEMA", "ArtifactError", "SpanRecord", "from_jsonl",
    "link_span_records", "load_json_artifact",
    "load_observability_artifact", "observability_dict",
    "render_prometheus", "render_tree", "span_record", "to_jsonl",
    # request tracing / retention / slowlog / SLOs
    "TRACE_HEADER", "RetentionPolicy", "SLOMonitor", "SLOSpec",
    "SlowLog", "TraceStore", "accept_trace_id", "current_trace_id",
    "evaluate_samples", "fingerprint", "new_trace_id", "parse_specs",
    "trace_scope", "valid_trace_id",
    # deadlines (repro.obs.deadline)
    "DEADLINE_HEADER", "Deadline", "DeadlineExceeded", "check_deadline",
    "current_deadline", "deadline_scope", "parse_deadline_ms",
    # timeline (the bench harness lives in repro.obs.bench — imported
    # explicitly, so `import repro.obs` stays light)
    "Lane", "SuperstepLanes", "Timeline", "build_timeline",
    "render_timeline",
    # profiling (repro.obs.profile)
    "ProfileNode", "disable_profiling", "enable_profiling", "hot_spans",
    "is_profiling", "profile_tree", "profiled", "render_flame",
    # memory accounting (repro.obs.memory)
    "AllocationTracker", "current_rss_kb", "memory_summary",
    "peak_rss_kb", "record_memory_gauges", "traced_memory_kb",
]


#: Lazily re-exported from :mod:`repro.obs.profile` (PEP 562) so
#: ``python -m repro.obs.profile`` does not trip runpy's
#: already-imported warning by importing the module during package
#: init.
_PROFILE_EXPORTS = frozenset({
    "ProfileNode", "disable_profiling", "enable_profiling",
    "hot_spans", "is_profiling", "profile_tree", "profiled",
    "render_flame",
})


def __getattr__(name: str):
    if name in _PROFILE_EXPORTS:
        from repro.obs import profile

        return getattr(profile, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def reset() -> None:
    """Drop collected spans and zero the process-wide metric registry."""
    reset_spans()
    get_registry().reset()
