"""Distributed execution timeline and skew analysis.

Section 6.1's scalability challenge is, operationally, a *stragglers*
problem: a bulk-synchronous superstep is as slow as its slowest shard,
so a skewed partition silently wastes every other worker's time at the
barrier. This module reconstructs, from :mod:`repro.dist` span records
alone, the per-worker / per-superstep lanes of a run -- compute time,
active vertices, sent / routed / combined message counts, barrier
routing and checkpoint costs -- and derives the skew statistics that
tell you *where* the wall-clock went:

* per-superstep **straggler ratio** -- max lane time over mean lane
  time (1.0 is a perfectly balanced superstep; k is one worker doing
  everything);
* whole-run straggler ratio over per-worker compute totals;
* **message imbalance** and **vertex imbalance** -- the deterministic
  load view (wall time is noisy on small shards; message and vertex
  counts are exact).

:func:`build_timeline` accepts live :class:`~repro.obs.spans.Span`
trees or :class:`~repro.obs.export.SpanRecord` trees re-read from a
JSON-lines dump -- timelines reconstruct from trace files after the
fact. :func:`render_timeline` draws the text Gantt;
``python -m repro.dist.report`` surfaces the skew summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: A per-superstep or whole-run ratio above this is flagged as skewed.
SKEW_THRESHOLD = 1.5


@dataclass(frozen=True)
class Lane:
    """One worker's compute slice of one superstep.

    ``cpu_ms`` and ``peak_alloc_kb`` are the resource lane: filled
    from the span attributes :mod:`repro.obs.profile` records when the
    run executed under profiling, zero otherwise (the attrs are absent
    on unprofiled spans). They let a straggler be *blamed*: slow with
    high CPU is compute-bound, slow with low CPU is waiting on routing
    or the barrier, and a high allocation peak marks churn.
    """

    worker: str
    compute_ms: float
    active_vertices: int
    messages_sent: int
    messages_routed: int
    messages_combined: int
    shard_vertices: int
    cpu_ms: float = 0.0
    peak_alloc_kb: float = 0.0


def _ratio(values: list[float]) -> float:
    """max/mean of non-negative values; 1.0 when there is no load."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


@dataclass
class SuperstepLanes:
    """All worker lanes of one executed superstep, plus barrier costs."""

    superstep: int
    lanes: list[Lane] = field(default_factory=list)
    barrier_ms: float = 0.0
    total_ms: float = 0.0  # the dist.superstep span itself

    @property
    def max_lane_ms(self) -> float:
        return max((lane.compute_ms for lane in self.lanes), default=0.0)

    @property
    def mean_lane_ms(self) -> float:
        if not self.lanes:
            return 0.0
        return sum(lane.compute_ms for lane in self.lanes) / len(self.lanes)

    @property
    def straggler(self) -> str | None:
        """Name of the slowest worker this superstep."""
        if not self.lanes:
            return None
        return max(self.lanes, key=lambda lane: lane.compute_ms).worker

    @property
    def straggler_ratio(self) -> float:
        return _ratio([lane.compute_ms for lane in self.lanes])

    @property
    def message_imbalance(self) -> float:
        return _ratio([float(lane.messages_sent) for lane in self.lanes])

    @property
    def vertex_imbalance(self) -> float:
        return _ratio([float(lane.active_vertices) for lane in self.lanes])


@dataclass
class Timeline:
    """One distributed run, reconstructed from its spans."""

    k: int
    partitioner: str
    supersteps: list[SuperstepLanes]
    checkpoints: list[dict[str, Any]] = field(default_factory=list)
    recoveries: int = 0
    run_ms: float = 0.0

    def workers(self) -> list[str]:
        seen: dict[str, None] = {}
        for step in self.supersteps:
            for lane in step.lanes:
                seen.setdefault(lane.worker)
        return list(seen)

    def worker_totals(self) -> dict[str, dict[str, float]]:
        """Per-worker totals across the whole run."""
        totals: dict[str, dict[str, float]] = {}
        for step in self.supersteps:
            for lane in step.lanes:
                entry = totals.setdefault(lane.worker, {
                    "compute_ms": 0.0, "active_vertices": 0,
                    "messages_sent": 0, "messages_routed": 0,
                    "shard_vertices": lane.shard_vertices,
                    "cpu_ms": 0.0, "peak_alloc_kb": 0.0,
                })
                entry["compute_ms"] += lane.compute_ms
                entry["active_vertices"] += lane.active_vertices
                entry["messages_sent"] += lane.messages_sent
                entry["messages_routed"] += lane.messages_routed
                entry["cpu_ms"] += lane.cpu_ms
                # Peaks don't add across supersteps — the worker's
                # high-water mark is the max over its lanes.
                entry["peak_alloc_kb"] = max(entry["peak_alloc_kb"],
                                             lane.peak_alloc_kb)
        return totals

    def skew_summary(self,
                     threshold: float = SKEW_THRESHOLD) -> dict[str, Any]:
        """The load-skew roll-up ``repro.dist.report`` prints.

        ``straggler_ratio`` is computed over per-worker compute
        *totals* (stabler than any single superstep);
        ``worst_superstep_*`` give the single worst barrier. A run is
        ``flagged`` when either the time-based straggler ratio or the
        deterministic vertex-load imbalance exceeds ``threshold``.
        """
        totals = self.worker_totals()
        compute = [entry["compute_ms"] for entry in totals.values()]
        vertices = [float(entry["active_vertices"])
                    for entry in totals.values()]
        messages = [float(entry["messages_sent"])
                    for entry in totals.values()]
        straggler_ratio = _ratio(compute)
        vertex_imbalance = _ratio(vertices)
        message_imbalance = _ratio(messages)
        worst = max(self.supersteps, default=None,
                    key=lambda step: step.straggler_ratio)
        straggler = (max(totals, key=lambda w: totals[w]["compute_ms"])
                     if totals else None)
        return {
            "k": self.k,
            "partitioner": self.partitioner,
            "supersteps": len(self.supersteps),
            "straggler": straggler,
            "straggler_ratio": round(straggler_ratio, 3),
            "message_imbalance": round(message_imbalance, 3),
            "vertex_imbalance": round(vertex_imbalance, 3),
            "worst_superstep": (worst.superstep
                                if worst is not None else None),
            "worst_superstep_straggler_ratio": (
                round(worst.straggler_ratio, 3)
                if worst is not None else 1.0),
            "barrier_ms": round(sum(s.barrier_ms
                                    for s in self.supersteps), 3),
            "checkpoint_ms": round(sum(c["ms"]
                                       for c in self.checkpoints), 3),
            "threshold": threshold,
            "flagged": (straggler_ratio > threshold
                        or vertex_imbalance > threshold),
        }

    @property
    def profiled(self) -> bool:
        """Whether the run carried resource attrs (executed under
        :mod:`repro.obs.profile`)."""
        return any(lane.cpu_ms > 0 for step in self.supersteps
                   for lane in step.lanes)

    def resource_summary(self) -> dict[str, Any]:
        """Per-worker resource attribution: where each worker's wall
        time went (busy CPU vs. waiting) and its allocation peak.

        ``cpu_share`` is CPU-ms over wall-ms for the worker's compute
        lanes; the ``blame`` tag classifies each worker:
        ``cpu-bound`` (share >= 0.6) or ``waiting`` (low share — the
        lane's wall time is routing/barrier/scheduling, not compute),
        with ``+alloc-heavy`` appended when the worker's allocation
        peak exceeds 1.5x the mean peak across workers. Returns
        ``{"profiled": False}`` when the run has no resource attrs.
        """
        if not self.profiled:
            return {"profiled": False, "workers": {}}
        totals = self.worker_totals()
        peaks = [entry["peak_alloc_kb"] for entry in totals.values()]
        mean_peak = sum(peaks) / len(peaks) if peaks else 0.0
        workers: dict[str, dict[str, Any]] = {}
        for worker, entry in totals.items():
            wall = entry["compute_ms"]
            cpu_share = (entry["cpu_ms"] / wall) if wall > 0 else 0.0
            blame = "cpu-bound" if cpu_share >= 0.6 else "waiting"
            if mean_peak > 0 and \
                    entry["peak_alloc_kb"] > 1.5 * mean_peak:
                blame += "+alloc-heavy"
            workers[worker] = {
                "wall_ms": round(wall, 3),
                "cpu_ms": round(entry["cpu_ms"], 3),
                "cpu_share": round(min(cpu_share, 1.0), 3),
                "peak_alloc_kb": round(entry["peak_alloc_kb"], 3),
                "blame": blame,
            }
        return {"profiled": True, "workers": workers}


# ---------------------------------------------------------------------------
# reconstruction
# ---------------------------------------------------------------------------


def _find(spans: Iterable[Any], name: str) -> list[Any]:
    found = []
    for root in spans:
        found.extend(root.find(name))
    return found


def _lane_from_span(span: Any) -> Lane:
    attrs = span.attributes
    return Lane(
        worker=attrs.get("worker", "?"),
        compute_ms=span.duration_ms,
        active_vertices=attrs.get("active_vertices", 0),
        messages_sent=attrs.get("messages_sent", 0),
        messages_routed=attrs.get("messages_routed", 0),
        messages_combined=attrs.get("messages_combined", 0),
        shard_vertices=attrs.get("shard_vertices", 0),
        cpu_ms=attrs.get("cpu_ms", 0.0),
        peak_alloc_kb=attrs.get("peak_alloc_kb", 0.0),
    )


def build_timeline(source: Any, run_index: int = -1) -> Timeline:
    """Reconstruct the timeline of one ``dist.run`` span tree.

    ``source`` is a single span/record, or an iterable of roots (live
    :class:`Span` trees or :class:`SpanRecord` trees from
    :func:`repro.obs.from_jsonl` -- both expose ``find`` / ``children``
    / ``attributes`` / ``duration_ms``). When several ``dist.run``
    spans are present, ``run_index`` selects one (default: the most
    recent). Replayed supersteps after a recovery appear as separate
    entries in execution order, so recovery cost is visible, not
    averaged away.
    """
    roots = [source] if hasattr(source, "find") else list(source)
    runs = _find(roots, "dist.run")
    if not runs:
        raise ValueError("no dist.run span in the given trace; run the "
                         "computation under obs.capture() first")
    run = runs[run_index]
    timeline = Timeline(
        k=run.attributes.get("k", 0),
        partitioner=run.attributes.get("partitioner", "?"),
        supersteps=[],
        recoveries=len(run.find("dist.recovery")),
        run_ms=run.duration_ms,
    )
    for step_span in run.find("dist.superstep"):
        step = SuperstepLanes(
            superstep=step_span.attributes.get("superstep", -1),
            total_ms=step_span.duration_ms)
        for child in step_span.children:
            if child.name == "dist.worker.superstep":
                step.lanes.append(_lane_from_span(child))
            elif child.name == "dist.barrier":
                step.barrier_ms += child.duration_ms
        timeline.supersteps.append(step)
    for cp_span in run.find("dist.checkpoint"):
        timeline.checkpoints.append({
            "superstep": cp_span.attributes.get("superstep", -1),
            "ms": cp_span.duration_ms,
            "bytes": cp_span.attributes.get("bytes", 0),
        })
    return timeline


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return " " * width
    filled = round(width * value / maximum)
    filled = min(width, max(filled, 1 if value > 0 else 0))
    return "#" * filled + "." * (width - filled)


def render_timeline(source: Any, *, width: int = 30,
                    run_index: int = -1) -> str:
    """Text Gantt of a distributed run: one lane per worker per
    superstep, bars scaled to the slowest lane of the run.

    ``source`` is a :class:`Timeline` or anything
    :func:`build_timeline` accepts.
    """
    timeline = (source if isinstance(source, Timeline)
                else build_timeline(source, run_index=run_index))
    peak = max((lane.compute_ms for step in timeline.supersteps
                for lane in step.lanes), default=0.0)
    lines = [
        f"dist timeline — k={timeline.k} "
        f"partitioner={timeline.partitioner} "
        f"supersteps={len(timeline.supersteps)} "
        f"recoveries={timeline.recoveries} "
        f"run={timeline.run_ms:.2f} ms",
    ]
    checkpoints = {cp["superstep"]: cp for cp in timeline.checkpoints}
    for step in timeline.supersteps:
        label = f"step {step.superstep}"
        for i, lane in enumerate(step.lanes):
            prefix = f"{label:<8}" if i == 0 else " " * 8
            lines.append(
                f"{prefix} {lane.worker:<4}"
                f"|{_bar(lane.compute_ms, peak, width)}| "
                f"{lane.compute_ms:8.3f} ms  "
                f"act={lane.active_vertices:<5} "
                f"sent={lane.messages_sent:<6} "
                f"routed={lane.messages_routed}")
        extras = [f"barrier {step.barrier_ms:.3f} ms",
                  f"straggler x{step.straggler_ratio:.2f}"]
        checkpoint = checkpoints.get(step.superstep + 1)
        if checkpoint is not None:
            extras.append(f"checkpoint {checkpoint['ms']:.3f} ms "
                          f"({checkpoint['bytes']} B)")
        lines.append(" " * 8 + " └─ " + "  ".join(extras))
    summary = timeline.skew_summary()
    lines.append(
        f"skew: straggler ratio {summary['straggler_ratio']:.2f} "
        f"({summary['straggler']}), "
        f"vertex imbalance {summary['vertex_imbalance']:.2f}, "
        f"message imbalance {summary['message_imbalance']:.2f}"
        + ("  [FLAGGED]" if summary["flagged"] else ""))
    return "\n".join(lines)
