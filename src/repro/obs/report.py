"""Observability smoke report: ``python -m repro.obs.report``.

Runs one small workload sweep with instrumentation enabled -- a
scenario graph through two surveyed computations, a Pregel PageRank, a
graph-database transaction plus a declarative query -- then prints the
resulting span tree and metric summary (the ``observability_dict``
payload with ``--json``, the JSON-lines trace with ``--jsonl``).
Every instrumented subsystem appears in the output, so
this doubles as the end-to-end check that the wiring is intact; the
benchmark suite invokes it from ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro import obs


def run_instrumented_workload(
    scenario: str = "social", seed: int = 0,
) -> tuple[list[obs.Span], "obs.MetricsRegistry"]:
    """One small sweep touching every instrumented subsystem.

    Returns the root spans recorded during the sweep and the process
    registry. Tracing state is restored afterwards; metrics accumulate
    in the process-wide registry.
    """
    # Imports are local so ``repro.obs`` itself stays dependency-free.
    from repro.dgps import pregel_pagerank
    from repro.graphdb import GraphDatabase
    from repro.query import profile
    from repro.workloads import build_scenario, run_computation

    registry = obs.get_registry()
    with obs.capture() as trace:
        with obs.span("report.sweep", scenario=scenario, seed=seed):
            graph = build_scenario(scenario, seed=seed)
            registry.set_gauge("report.graph_vertices",
                               graph.num_vertices())
            run_computation("Finding Connected Components", graph, seed)
            run_computation("Breadth-first-search or variant", graph, seed)
            pregel_pagerank(graph, supersteps=5)

            db = GraphDatabase()
            with db.transaction():
                db.add_vertex("ann", label="Person", age=42)
                db.add_vertex("bob", label="Person", age=17)
                db.add_edge("ann", "bob", label="KNOWS")
            db.query("MATCH (a:Person)-[:KNOWS]->(b) RETURN a, b")
            profile(db.graph, "MATCH (a:Person)-[:KNOWS]->(b) RETURN a")
            try:
                with db.transaction():
                    db.add_vertex("eve", label="Person")
                    raise RuntimeError("forced rollback for the report")
            except RuntimeError:
                pass
    return trace.roots, registry


def _render_metrics(summary: dict[str, Any]) -> str:
    lines = ["METRICS"]
    for name, value in summary["counters"].items():
        lines.append(f"  counter    {name} = {value}")
    for name, value in summary["gauges"].items():
        lines.append(f"  gauge      {name} = {value}")
    for name, hist in summary["histograms"].items():
        if hist["count"] == 0:  # instrument exists but was reset/unused
            lines.append(f"  histogram  {name}: count=0")
            continue
        lines.append(
            f"  histogram  {name}: count={hist['count']} "
            f"mean={hist['mean']:.3f} p50={hist['p50']} "
            f"p95={hist['p95']} p99={hist['p99']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Run a small instrumented workload and print the "
                    "span tree and metric summary.")
    parser.add_argument("--scenario", default="social",
                        help="scenario graph to run on (default: social)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="emit the observability_dict payload "
                             "(spans + metrics) as one JSON object")
    parser.add_argument("--jsonl", action="store_true",
                        help="emit the JSON-lines span trace instead "
                             "of the text tree")
    parser.add_argument("--input", default=None, metavar="PATH",
                        help="replay a saved --json payload instead "
                             "of running the workload; a missing or "
                             "torn artifact exits 2 with a named "
                             "ArtifactError")
    args = parser.parse_args(argv)

    if args.input is not None:
        try:
            return _replay(args.input, as_json=args.json,
                           as_jsonl=args.jsonl)
        except obs.ArtifactError as exc:
            print(f"error: ArtifactError: {exc}", file=sys.stderr)
            return 2
    try:
        roots, registry = run_instrumented_workload(args.scenario,
                                                    args.seed)
    except ValueError as exc:  # e.g. unknown scenario name
        parser.error(str(exc))
    if args.json:
        import json

        print(json.dumps(obs.observability_dict(roots, registry),
                         default=repr))
    elif args.jsonl:
        print(obs.to_jsonl(roots))
    else:
        print("SPAN TREE")
        print(obs.render_tree(roots))
        print()
        print(_render_metrics(registry.summary()))
        print()
        print(_render_profile_sample(args.scenario, args.seed))
    return 0


def _replay(path: str, *, as_json: bool, as_jsonl: bool) -> int:
    """Re-render a saved ``--json`` payload (no workload run)."""
    import json

    payload = obs.load_observability_artifact(path)
    roots = obs.link_span_records(payload["spans"])
    if as_json:
        print(json.dumps(payload, default=repr))
    elif as_jsonl:
        print("\n".join(
            json.dumps(record, sort_keys=True, default=repr)
            for record in payload["spans"]))
    else:
        print(f"SPAN TREE (replayed from {path})")
        print(obs.render_tree(roots))
        print()
        print(_render_metrics(payload["metrics"]))
    return 0


def _render_profile_sample(scenario: str, seed: int) -> str:
    """One profiled PageRank — keeps the profiling-enabled path
    exercised every report run, right next to the unprofiled sweep
    above it (which keeps the disabled path exercised)."""
    from repro.dgps import pregel_pagerank
    from repro.obs.profile import profiled, render_flame
    from repro.workloads import build_scenario

    graph = build_scenario(scenario, seed=seed)
    with profiled() as trace:
        pregel_pagerank(graph, supersteps=3)
    return ("PROFILE (one pregel_pagerank run under "
            "repro.obs.profile; # self CPU, = children CPU)\n"
            + render_flame(trace.roots))


if __name__ == "__main__":
    sys.exit(main())
