"""Request deadlines, propagated via ``contextvars`` and checked
cooperatively.

The survey's operational complaints — queries that "never come back",
batch jobs starving interactive traffic — share one root cause: once a
request starts executing, nothing bounds it. Admission control (PR 7)
bounds *queue* wait; this module bounds *execution*. A
:class:`Deadline` is minted once per request at the serve edge (or
adopted from the ``X-Repro-Deadline-Ms`` header) and bound in a
:class:`~contextvars.ContextVar` beside the trace id. Long-running
loops check it at their natural yield points — the query executor's
row loop, Pregel superstep boundaries, the dist Coordinator's barriers
and each Worker's superstep — and an expired budget raises
:class:`DeadlineExceeded`, which the serve edge maps to HTTP 504. The
exception unwinds through ordinary ``with`` blocks, so the admission
slot, graph lock, and open spans all release cleanly.

Propagation contract (mirrors :mod:`repro.obs.trace_context`):

* the deadline flows wherever the context does — nested calls,
  generators, and the synchronous :mod:`repro.dist` runtime inherit
  it; threads spawned inside a scope do not (``contextvars``
  semantics);
* checks are *cooperative*: code between yield points is never
  interrupted, so an expired budget surfaces at the next boundary
  (for a distributed run, within about one superstep);
* every real span opened under a deadline records
  ``deadline_remaining_ms`` at entry, so a finished trace shows the
  budget draining layer by layer;
* no ambient deadline means no checks and no overhead — the fast
  path is one ContextVar read and a ``None`` test.

Usage::

    from repro.obs import deadline_scope, current_deadline

    with deadline_scope(250):            # 250 ms budget
        run_query(graph, text)           # raises DeadlineExceeded
                                         # if the row loop overruns
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.obs.spans import _DEADLINE

#: HTTP header carrying a caller-supplied execution budget (in
#: milliseconds) into the serve edge.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: Largest accepted budget — one hour. Anything above is a malformed
#: request, not a real deadline.
MAX_BUDGET_MS = 3_600_000.0


class DeadlineExceeded(ReproError):
    """A request overran its execution budget.

    Raised from a cooperative check point; carries where the overrun
    was detected and by how much. The serve edge maps it to HTTP 504.
    """

    def __init__(self, where: str, budget_ms: float, overrun_ms: float):
        self.where = where
        self.budget_ms = budget_ms
        self.overrun_ms = overrun_ms
        super().__init__(
            f"deadline of {budget_ms:g} ms exceeded by "
            f"{overrun_ms:.1f} ms at {where}")


class Deadline:
    """An absolute expiry instant derived from a millisecond budget.

    The clock is injectable (monotonic by default) so tests can drive
    expiry deterministically, the same way :class:`~repro.obs.slo.\
SLOMonitor` takes ``clock=``.
    """

    __slots__ = ("budget_ms", "_expires_at", "_clock")

    def __init__(self, budget_ms: float, *,
                 clock: Callable[[], float] = time.monotonic):
        budget_ms = float(budget_ms)
        if not budget_ms > 0:
            raise ValueError(
                f"deadline budget must be positive, got {budget_ms!r}")
        if budget_ms > MAX_BUDGET_MS:
            raise ValueError(
                f"deadline budget {budget_ms:g} ms exceeds the "
                f"{MAX_BUDGET_MS:g} ms cap")
        self.budget_ms = budget_ms
        self._clock = clock
        self._expires_at = clock() + budget_ms / 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds until expiry; negative once overrun."""
        return (self._expires_at - self._clock()) * 1000.0

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        remaining = self.remaining_ms()
        if remaining <= 0.0:
            raise DeadlineExceeded(where, self.budget_ms, -remaining)

    def __repr__(self) -> str:
        return (f"Deadline({self.budget_ms:g} ms, "
                f"remaining={self.remaining_ms():.1f} ms)")


def current_deadline() -> Deadline | None:
    """The ambient deadline, if a scope is active.

    Loop bodies should call this once before iterating and keep the
    result — ``None`` means no checks at all, and a captured deadline
    avoids a ContextVar read per iteration.
    """
    return _DEADLINE.get()  # type: ignore[return-value]


def check_deadline(where: str) -> None:
    """Check the ambient deadline at a single yield point.

    One ContextVar read and a ``None`` test when no deadline is bound;
    otherwise delegates to :meth:`Deadline.check`.
    """
    deadline = _DEADLINE.get()
    if deadline is not None:
        deadline.check(where)  # type: ignore[union-attr]


def parse_deadline_ms(raw: str | None) -> float | None:
    """Parse an ``X-Repro-Deadline-Ms`` header value.

    Returns ``None`` when the header is absent; raises
    :class:`ValueError` on anything that is not a positive number of
    milliseconds (the serve edge maps that to a 400).
    """
    if raw is None or raw == "":
        return None
    try:
        budget_ms = float(raw)
    except ValueError:
        raise ValueError(
            f"bad {DEADLINE_HEADER} value {raw!r}: expected a "
            f"positive number of milliseconds") from None
    if not budget_ms > 0 or budget_ms > MAX_BUDGET_MS:
        raise ValueError(
            f"bad {DEADLINE_HEADER} value {raw!r}: expected "
            f"0 < ms <= {MAX_BUDGET_MS:g}")
    return budget_ms


@contextmanager
def deadline_scope(
        budget: Deadline | float | int) -> Iterator[Deadline]:
    """Bind a deadline for the duration of the block, yielding it.

    Accepts a millisecond budget (a fresh :class:`Deadline` starts
    ticking now) or a pre-built :class:`Deadline` (tests inject fake
    clocks this way). Nested scopes rebind — the innermost deadline is
    the effective one; the serve edge binds exactly once per request.
    """
    deadline = budget if isinstance(budget, Deadline) else \
        Deadline(budget)
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)
