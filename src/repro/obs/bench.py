"""Benchmark-suite runner and regression detector.

The ROADMAP promises a system that runs "as fast as the hardware
allows", but a promise without a trajectory is unfalsifiable: the
scripts under ``benchmarks/`` time kernels ad hoc and nothing records
their results across PRs. This module is the standing harness:

* a :class:`BenchSuite` registry of named, parameterized cases (plain
  zero-argument callables -- the existing bench kernels wrap without
  rewriting via ``benchmarks/suite.py``);
* a runner that executes each case ``warmup + reps`` times under an
  enabled :mod:`repro.obs` registry and records exact wall-time
  percentiles over the repetitions, span statistics, counter deltas,
  and environment capture (python / platform / commit);
* a schema-versioned ``BENCH_<label>.json`` artifact written at the
  repo root, so baselines are diffable and live in version control;
* a :func:`compare` engine producing per-case verdicts -- ``improved``
  / ``unchanged`` / ``regressed`` -- guarded against noise by a
  relative threshold *and* a minimum absolute effect, rendered as a
  text table with a CI-friendly exit code.

CLI::

    python -m repro.obs.bench run --label seed
    python -m repro.obs.bench compare BENCH_seed.json BENCH_pr4.json
    python -m repro.obs.bench report BENCH_seed.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs.export import OBS_SCHEMA, _jsonable
from repro.obs.metrics import get_registry
from repro.obs.spans import capture

#: Version tag on ``BENCH_*.json`` artifacts; bump on shape changes.
#: v2 adds per-case ``throughput`` (``edges_per_sec`` over a declared
#: work denominator) and ``memory`` (``peak_alloc_kb`` from one extra
#: un-timed repetition, plus process ``peak_rss_kb``) blocks.
BENCH_SCHEMA = "repro.obs.bench/v2"
BENCH_SCHEMA_V1 = "repro.obs.bench/v1"

#: Schemas :func:`load_artifact` accepts; older ones compare with
#: ``not-in-baseline`` column verdicts instead of crashing.
SUPPORTED_SCHEMAS = (BENCH_SCHEMA, BENCH_SCHEMA_V1)

#: Default noise guards for :func:`compare`: a case only changes
#: verdict when the median moved by more than REL_THRESHOLD of the
#: baseline *and* by more than MIN_EFFECT_MS absolute.
REL_THRESHOLD = 0.25
MIN_EFFECT_MS = 0.5

#: Noise guards for the v2 resource columns, mirroring the wall-time
#: pair: ``(rel_threshold, min_effect, direction)`` where direction
#: says which way is *better*. Only a ``peak_alloc_kb`` regression is
#: failing — throughput mirrors wall time (already guarded), so its
#: verdicts are informational.
COLUMN_GUARDS: dict[str, tuple[float, float, str]] = {
    "edges_per_sec": (0.25, 1.0, "higher"),
    "peak_alloc_kb": (0.25, 64.0, "lower"),
}


# ---------------------------------------------------------------------------
# suite registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchCase:
    """One named, parameterized benchmark kernel.

    ``fn`` takes no arguments (close over inputs; build them outside so
    setup cost stays out of the timing) and returns a small result used
    only for the artifact's sanity digest.

    ``work`` declares the case's throughput denominator — the number
    of edges (or edge-equivalents, e.g. edges × supersteps) one
    repetition processes, as an int or a zero-argument callable
    evaluated lazily at record time. Cases with no meaningful edge
    denominator (query latency, static analysis) leave it None and get
    no ``edges_per_sec`` column.
    """

    name: str
    fn: Callable[[], Any]
    params: dict[str, Any] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    work: Callable[[], int] | int | None = None

    def run(self) -> Any:
        return self.fn()

    def work_units(self) -> int | None:
        """The declared per-repetition work denominator, resolved."""
        if callable(self.work):
            return int(self.work())
        return self.work


class BenchSuite:
    """Ordered registry of :class:`BenchCase` objects."""

    def __init__(self, name: str = "default"):
        self.name = name
        self._cases: dict[str, BenchCase] = {}

    def add(self, name: str, fn: Callable[[], Any], *,
            tags: Iterable[str] = (),
            work: Callable[[], int] | int | None = None,
            **params: Any) -> BenchCase:
        if name in self._cases:
            raise ValueError(f"bench case {name!r} already registered")
        case = BenchCase(name=name, fn=fn, params=dict(params),
                         tags=tuple(tags), work=work)
        self._cases[name] = case
        return case

    def case(self, name: str, *, tags: Iterable[str] = (),
             work: Callable[[], int] | int | None = None,
             **params: Any) -> Callable[[Callable[[], Any]], Callable]:
        """Decorator form of :meth:`add`."""
        def register(fn: Callable[[], Any]) -> Callable[[], Any]:
            self.add(name, fn, tags=tags, work=work, **params)
            return fn
        return register

    def names(self) -> list[str]:
        return list(self._cases)

    def cases(self) -> list[BenchCase]:
        return list(self._cases.values())

    def get(self, name: str) -> BenchCase:
        try:
            return self._cases[name]
        except KeyError:
            raise KeyError(
                f"unknown bench case {name!r}; known: "
                f"{sorted(self._cases)}") from None

    def select(self, patterns: Iterable[str] | None) -> list[BenchCase]:
        """Cases whose name matches any glob pattern (all when None)."""
        if not patterns:
            return self.cases()
        chosen = [case for name, case in self._cases.items()
                  if any(fnmatch(name, p) for p in patterns)]
        if not chosen:
            raise ValueError(
                f"no bench case matches {list(patterns)!r}; known: "
                f"{sorted(self._cases)}")
        return chosen

    def __len__(self) -> int:
        return len(self._cases)

    def __contains__(self, name: str) -> bool:
        return name in self._cases


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def percentile_exact(samples: Iterable[float], p: float) -> float:
    """Linear-interpolation percentile over raw samples (numpy's
    default method, without numpy -- the repetition lists are tiny)."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of no samples")
    if len(ordered) == 1:
        return ordered[0]
    position = (p / 100.0) * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


def timing_stats(timings_ms: list[float]) -> dict[str, float]:
    return {
        "min": min(timings_ms),
        "max": max(timings_ms),
        "mean": sum(timings_ms) / len(timings_ms),
        "p50": percentile_exact(timings_ms, 50),
        "p95": percentile_exact(timings_ms, 95),
    }


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def capture_environment() -> dict[str, Any]:
    """Where the numbers came from -- without it they are unactionable
    (the SoK graph-benchmark critique in PAPERS.md)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def _result_digest(result: Any) -> Any:
    """A small, JSON-safe sanity digest of a case's return value."""
    summary = getattr(result, "summary", None)
    if isinstance(summary, dict):
        return _jsonable(summary)
    if isinstance(result, dict):
        if len(result) > 10:
            return {"type": "dict", "len": len(result)}
        return _jsonable(result)
    if isinstance(result, (list, tuple, set, frozenset)):
        return {"type": type(result).__name__, "len": len(result)}
    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    return repr(result)


def run_case(case: BenchCase, *, reps: int = 5,
             warmup: int = 1) -> dict[str, Any]:
    """Execute one case ``warmup + reps`` times; return its record.

    Timed repetitions run with tracing enabled (span capture is part of
    what the system pays in production, and both sides of a comparison
    pay it identically), so the record carries the span statistics and
    the metric-counter deltas the case produced alongside wall time.

    Schema v2: one *extra, un-timed* repetition then runs under
    :class:`~repro.obs.memory.AllocationTracker` to fill the
    ``memory`` block — tracemalloc slows allocation several-fold, so
    the timed repetitions must never pay for it — and cases with a
    declared ``work`` denominator get a ``throughput`` block
    (``edges_per_sec`` from the median timing).
    """
    from repro.obs.memory import AllocationTracker, peak_rss_kb

    if reps < 1:
        raise ValueError("reps must be >= 1")
    registry = get_registry()
    for _ in range(warmup):
        case.run()
    before = dict(registry.summary()["counters"])
    timings_ms: list[float] = []
    result: Any = None
    with capture() as trace:
        for _ in range(reps):
            start = time.perf_counter_ns()
            result = case.run()
            timings_ms.append((time.perf_counter_ns() - start) / 1e6)
    after = dict(registry.summary()["counters"])
    # Counter deltas are already snapshotted: the probe repetition
    # below never shows up in them, in the span stats, or in timings.
    with AllocationTracker() as alloc:
        case.run()
    deltas = {name: value - before.get(name, 0)
              for name, value in after.items()
              if value - before.get(name, 0)}
    span_names: dict[str, int] = {}
    total_spans = 0
    for root in trace.roots:
        for sp in root.walk():
            total_spans += 1
            span_names[sp.name] = span_names.get(sp.name, 0) + 1
    stats = {k: round(v, 4) for k, v in
             timing_stats(timings_ms).items()}
    record = {
        "name": case.name,
        "params": _jsonable(case.params),
        "tags": list(case.tags),
        "reps": reps,
        "warmup": warmup,
        "timings_ms": [round(t, 4) for t in timings_ms],
        "stats": stats,
        "counters": _jsonable(deltas),
        "spans": {"roots": len(trace.roots), "total": total_spans,
                  "by_name": dict(sorted(span_names.items()))},
        "memory": {
            "peak_alloc_kb": alloc.peak_alloc_kb,
            "net_alloc_kb": alloc.net_alloc_kb,
            "peak_rss_kb": peak_rss_kb(),
        },
        "result": _result_digest(result),
    }
    work = case.work_units()
    if work and stats["p50"] > 0:
        record["throughput"] = {
            "work_edges": work,
            "edges_per_sec": round(work / (stats["p50"] / 1000.0), 1),
        }
    return record


def run_suite(suite: BenchSuite, label: str, *, reps: int = 5,
              warmup: int = 1, patterns: Iterable[str] | None = None,
              progress: Callable[[str], None] | None = None,
              ) -> dict[str, Any]:
    """Run the (selected) suite; return the ``BENCH_<label>`` artifact."""
    cases = suite.select(patterns)
    records = []
    for case in cases:
        if progress is not None:
            progress(case.name)
        records.append(run_case(case, reps=reps, warmup=warmup))
    return {
        "schema": BENCH_SCHEMA,
        "obs_schema": OBS_SCHEMA,
        "label": label,
        "suite": suite.name,
        "environment": capture_environment(),
        "config": {"reps": reps, "warmup": warmup},
        "cases": records,
    }


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


def artifact_path(label: str, root: str | Path = ".") -> Path:
    return Path(root) / f"BENCH_{label}.json"


def write_artifact(artifact: dict[str, Any],
                   path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False)
                    + "\n")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    path = Path(path)
    artifact = json.loads(path.read_text())
    schema = artifact.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected one of {list(SUPPORTED_SCHEMAS)!r})")
    return artifact


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

#: Verdicts that make ``compare`` exit non-zero.
FAILING_VERDICTS = ("regressed", "missing")


@dataclass(frozen=True)
class ColumnVerdict:
    """Outcome of comparing one v2 resource column for one case.

    ``not-in-baseline`` / ``not-in-current`` mark the column absent on
    one side — the v1-compat path (satellite: comparing against an
    old-schema baseline must degrade, never crash or fail the run).
    """

    column: str
    verdict: str  # improved | unchanged | regressed |
    #               not-in-baseline | not-in-current
    baseline: float | None
    current: float | None

    @property
    def delta_pct(self) -> float | None:
        if self.baseline is None or self.current is None or \
                not self.baseline:
            return None
        return 100.0 * (self.current - self.baseline) / self.baseline


@dataclass(frozen=True)
class CaseVerdict:
    """Outcome of comparing one case between two artifacts."""

    name: str
    verdict: str  # improved | unchanged | regressed | missing | added
    baseline_ms: float | None
    current_ms: float | None
    columns: tuple[ColumnVerdict, ...] = ()

    @property
    def delta_ms(self) -> float | None:
        if self.baseline_ms is None or self.current_ms is None:
            return None
        return self.current_ms - self.baseline_ms

    @property
    def delta_pct(self) -> float | None:
        if self.delta_ms is None or not self.baseline_ms:
            return None
        return 100.0 * self.delta_ms / self.baseline_ms

    @property
    def failing_columns(self) -> list[ColumnVerdict]:
        """Resource columns whose regression fails the comparison —
        only ``peak_alloc_kb`` (throughput mirrors wall time, which is
        already guarded; absence on either side never fails)."""
        return [c for c in self.columns
                if c.column == "peak_alloc_kb"
                and c.verdict == "regressed"]


@dataclass
class Comparison:
    """Every per-case verdict plus the roll-up."""

    baseline_label: str
    current_label: str
    rel_threshold: float
    min_effect_ms: float
    verdicts: list[CaseVerdict]

    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for v in self.verdicts:
            totals[v.verdict] = totals.get(v.verdict, 0) + 1
        return totals

    @property
    def regressions(self) -> list[CaseVerdict]:
        return [v for v in self.verdicts
                if v.verdict in FAILING_VERDICTS or v.failing_columns]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


def _column_value(case: dict[str, Any], column: str) -> float | None:
    """Pull a v2 resource column from a case record; None when the
    record predates the column (v1) or the case has no denominator."""
    if column == "edges_per_sec":
        return (case.get("throughput") or {}).get("edges_per_sec")
    if column == "peak_alloc_kb":
        return (case.get("memory") or {}).get("peak_alloc_kb")
    return None


def _compare_columns(base: dict[str, Any],
                     cur: dict[str, Any]) -> tuple[ColumnVerdict, ...]:
    """Per-column verdicts for one case, noise-guarded like wall time.

    A column missing on either side (v1 baseline, case without a work
    denominator) gets ``not-in-baseline`` / ``not-in-current`` — never
    an exception, never a regression. A column absent on *both* sides
    is simply not reported.
    """
    columns: list[ColumnVerdict] = []
    for column, (rel, min_effect, better) in COLUMN_GUARDS.items():
        base_val = _column_value(base, column)
        cur_val = _column_value(cur, column)
        if base_val is None and cur_val is None:
            continue
        if base_val is None:
            columns.append(ColumnVerdict(column, "not-in-baseline",
                                         None, cur_val))
            continue
        if cur_val is None:
            columns.append(ColumnVerdict(column, "not-in-current",
                                         base_val, None))
            continue
        delta = cur_val - base_val
        if better == "higher":
            delta = -delta  # normalize: positive delta = worse
        guard = max(rel * abs(base_val), min_effect)
        if delta > guard:
            verdict = "regressed"
        elif -delta > guard:
            verdict = "improved"
        else:
            verdict = "unchanged"
        columns.append(ColumnVerdict(column, verdict, base_val,
                                     cur_val))
    return tuple(columns)


def compare(baseline: dict[str, Any], current: dict[str, Any], *,
            rel_threshold: float = REL_THRESHOLD,
            min_effect_ms: float = MIN_EFFECT_MS) -> Comparison:
    """Per-case verdicts between two artifacts, noise-guarded.

    A case regresses (or improves) only when its median moved by more
    than ``rel_threshold`` of the baseline median **and** by more than
    ``min_effect_ms`` absolute -- both guards must trip, so microsecond
    kernels cannot flap on scheduler noise and slow kernels cannot hide
    a real regression behind a small percentage. Cases present in the
    baseline but absent now are ``missing`` (a failure: a silently
    dropped case is an untracked regression); new cases are ``added``.

    The v2 resource columns (``edges_per_sec``, ``peak_alloc_kb``)
    carry their own guards from :data:`COLUMN_GUARDS`; a memory
    regression fails the comparison, a column absent on either side
    (e.g. a v1 baseline) reports as ``not-in-baseline`` /
    ``not-in-current`` and never fails.
    """
    base_cases = {c["name"]: c for c in baseline["cases"]}
    cur_cases = {c["name"]: c for c in current["cases"]}
    verdicts: list[CaseVerdict] = []
    for name, base in base_cases.items():
        base_ms = base["stats"]["p50"]
        cur = cur_cases.get(name)
        if cur is None:
            verdicts.append(CaseVerdict(name, "missing", base_ms, None))
            continue
        cur_ms = cur["stats"]["p50"]
        delta = cur_ms - base_ms
        guard = max(rel_threshold * base_ms, min_effect_ms)
        if delta > guard:
            verdict = "regressed"
        elif -delta > guard:
            verdict = "improved"
        else:
            verdict = "unchanged"
        verdicts.append(CaseVerdict(name, verdict, base_ms, cur_ms,
                                    _compare_columns(base, cur)))
    for name, cur in cur_cases.items():
        if name not in base_cases:
            verdicts.append(
                CaseVerdict(name, "added", None, cur["stats"]["p50"]))
    return Comparison(
        baseline_label=baseline.get("label", "?"),
        current_label=current.get("label", "?"),
        rel_threshold=rel_threshold,
        min_effect_ms=min_effect_ms,
        verdicts=verdicts)


def render_comparison(comparison: Comparison) -> str:
    lines = [
        f"BENCH compare — baseline={comparison.baseline_label} "
        f"current={comparison.current_label} "
        f"(guards: >{comparison.rel_threshold * 100:.0f}% and "
        f">{comparison.min_effect_ms}ms)",
        "",
        f"{'case':<38} {'base p50':>10} {'cur p50':>10} {'delta':>8}  "
        f"verdict",
    ]
    column_notes = 0
    for v in comparison.verdicts:
        base = f"{v.baseline_ms:.3f}" if v.baseline_ms is not None else "—"
        cur = f"{v.current_ms:.3f}" if v.current_ms is not None else "—"
        delta = (f"{v.delta_pct:+.1f}%" if v.delta_pct is not None
                 else "—")
        marker = (" <<<" if v.verdict in FAILING_VERDICTS
                  or v.failing_columns else "")
        lines.append(f"{v.name:<38} {base:>10} {cur:>10} {delta:>8}  "
                     f"{v.verdict}{marker}")
        # Resource columns print only when they have something to say
        # — a change past the guards, or one side missing the column.
        for col in v.columns:
            if col.verdict == "unchanged":
                continue
            column_notes += 1
            pct = (f" ({col.delta_pct:+.1f}%)"
                   if col.delta_pct is not None else "")
            col_marker = (" <<<" if col.column == "peak_alloc_kb"
                          and col.verdict == "regressed" else "")
            base_val = (col.baseline if col.baseline is not None
                        else "—")
            cur_val = col.current if col.current is not None else "—"
            lines.append(f"{'':<38}   {col.column}: "
                         f"{base_val} -> {cur_val}"
                         f"{pct}  {col.verdict}{col_marker}")
    counts = comparison.counts()
    summary = ", ".join(f"{count} {verdict}" for verdict, count
                        in sorted(counts.items()))
    lines.append("")
    lines.append(f"{len(comparison.verdicts)} cases: {summary}"
                 + (f"; {column_notes} resource-column notes"
                    if column_notes else ""))
    return "\n".join(lines)


def render_artifact(artifact: dict[str, Any]) -> str:
    """One artifact as a human-readable table."""
    env = artifact["environment"]
    config = artifact["config"]
    lines = [
        f"BENCH {artifact['label']} — suite={artifact['suite']}, "
        f"{len(artifact['cases'])} cases, reps={config['reps']} "
        f"(+{config['warmup']} warmup)",
        f"  python {env['python']} ({env['implementation']}) on "
        f"{env['platform']}; commit={env['commit']} "
        f"at {env['timestamp']}",
        "",
        f"{'case':<38} {'p50 ms':>9} {'p95 ms':>9} {'min ms':>9} "
        f"{'max ms':>9} {'spans':>6} {'edges/s':>10} {'peakKB':>8}",
    ]
    for case in artifact["cases"]:
        stats = case["stats"]
        eps = _column_value(case, "edges_per_sec")
        peak = _column_value(case, "peak_alloc_kb")
        eps_text = f"{eps:>10.0f}" if eps is not None else f"{'—':>10}"
        peak_text = (f"{peak:>8.1f}" if peak is not None
                     else f"{'—':>8}")
        lines.append(
            f"{case['name']:<38} {stats['p50']:>9.3f} "
            f"{stats['p95']:>9.3f} {stats['min']:>9.3f} "
            f"{stats['max']:>9.3f} {case['spans']['total']:>6} "
            f"{eps_text} {peak_text}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _load_extra(suite: BenchSuite, path: str) -> None:
    """Load a python file exposing ``register(suite)`` -- the hook the
    ``benchmarks/suite.py`` adapter plugs in through."""
    import importlib.util

    file = Path(path)
    spec = importlib.util.spec_from_file_location(
        f"_bench_extra_{file.stem}", file)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot load bench module {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    register = getattr(module, "register", None)
    if not callable(register):
        raise ValueError(
            f"{path!r} does not expose a register(suite) function")
    register(suite)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.bench_cases import default_suite

    suite = default_suite()
    for extra in args.extra or ():
        _load_extra(suite, extra)
    if args.list:
        for case in suite.cases():
            tags = f"  [{', '.join(case.tags)}]" if case.tags else ""
            print(f"{case.name}{tags}  {case.params}")
        return 0
    artifact = run_suite(
        suite, args.label, reps=args.reps, warmup=args.warmup,
        patterns=args.cases,
        progress=(None if args.quiet
                  else lambda name: print(f"  running {name} ...",
                                          file=sys.stderr)))
    path = write_artifact(artifact,
                          artifact_path(args.label, args.out_dir))
    print(render_artifact(artifact))
    print(f"\nwrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = compare(
        load_artifact(args.baseline), load_artifact(args.current),
        rel_threshold=args.threshold, min_effect_ms=args.min_effect_ms)
    if args.json:
        payload = {
            "baseline": comparison.baseline_label,
            "current": comparison.current_label,
            "rel_threshold": comparison.rel_threshold,
            "min_effect_ms": comparison.min_effect_ms,
            "verdicts": [
                {"name": v.name, "verdict": v.verdict,
                 "baseline_ms": v.baseline_ms,
                 "current_ms": v.current_ms,
                 "delta_ms": v.delta_ms,
                 "columns": [
                     {"column": c.column, "verdict": c.verdict,
                      "baseline": c.baseline, "current": c.current}
                     for c in v.columns]}
                for v in comparison.verdicts],
            "exit_code": comparison.exit_code,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(render_comparison(comparison))
    return comparison.exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_artifact(load_artifact(args.artifact)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Run the benchmark suite, write BENCH_<label>.json "
                    "artifacts, and compare them for regressions.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run the suite and write BENCH_<label>.json")
    run_p.add_argument("--label", required=True,
                       help="artifact label (BENCH_<label>.json)")
    run_p.add_argument("--reps", type=int, default=5)
    run_p.add_argument("--warmup", type=int, default=1)
    run_p.add_argument("--cases", nargs="*", default=None,
                       metavar="GLOB",
                       help="only cases matching these glob patterns")
    run_p.add_argument("--out-dir", default=".",
                       help="directory for the artifact (default: .)")
    run_p.add_argument("--extra", action="append", default=None,
                       metavar="FILE.py",
                       help="additionally load cases from a python "
                            "file exposing register(suite) — e.g. "
                            "benchmarks/suite.py")
    run_p.add_argument("--list", action="store_true",
                       help="list registered cases and exit")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-case progress on stderr")
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare", help="compare two artifacts; exit 1 on regression")
    cmp_p.add_argument("baseline")
    cmp_p.add_argument("current")
    cmp_p.add_argument("--threshold", type=float, default=REL_THRESHOLD,
                       help="relative change guard (default %(default)s)")
    cmp_p.add_argument("--min-effect-ms", type=float,
                       default=MIN_EFFECT_MS,
                       help="absolute change guard in ms "
                            "(default %(default)s)")
    cmp_p.add_argument("--json", action="store_true")
    cmp_p.set_defaults(fn=_cmd_compare)

    rep_p = sub.add_parser("report",
                           help="render one artifact as a text table")
    rep_p.add_argument("artifact")
    rep_p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, FileNotFoundError) as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":
    sys.exit(main())
