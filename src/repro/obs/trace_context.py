"""Request-scoped trace ids, propagated via ``contextvars``.

The survey ranks debugging among practitioners' top graph-processing
challenges, and aggregate metrics cannot answer "why was *this*
request slow?". This module is the identity layer of the answer: a
trace id is minted once per request at the serve edge (or accepted
from the ``X-Repro-Trace`` header) and held in a
:class:`~contextvars.ContextVar`, so every span the request opens —
``serve.request`` through ``query.run``, ``pregel.superstep``,
``dist.superstep`` and each ``dist.worker.superstep`` — records the
same ``trace_id`` attribute without any subsystem threading an
argument through. The stamped trees are retrievable from the
:class:`~repro.obs.retention.TraceStore` by id (``GET
/debug/traces/{id}``) and linked from the slow-query log.

Propagation contract:

* the id flows wherever the context does — nested calls, generators,
  and the synchronous :mod:`repro.dist` runtime all inherit it;
* threads spawned *inside* a scope do not inherit automatically
  (``contextvars`` semantics); a worker pool must re-enter
  :func:`trace_scope` with the parent's id;
* spans opened with an explicit ``trace_id=...`` attribute keep it —
  the ambient id only fills the gap.

Usage::

    from repro.obs import trace_scope

    with trace_scope() as trace_id:      # mint a fresh id
        run_query(graph, text)           # every span carries trace_id

    with trace_scope("a1b2c3"):          # adopt a caller's id
        ...
"""

from __future__ import annotations

import re
import uuid
from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import _TRACE_ID

#: HTTP header carrying a caller-supplied trace id into the serve
#: edge, and echoing the request's id back on every response.
TRACE_HEADER = "X-Repro-Trace"

#: Accepted id shape — url/header-safe, bounded. Anything else from
#: the wire is rejected rather than laundered into the span store.
_ID_PATTERN = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision odds are negligible at
    any realistic retention size)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The ambient trace id, if a scope is active."""
    return _TRACE_ID.get()


def valid_trace_id(raw: object) -> bool:
    """Whether ``raw`` is an acceptable externally-supplied id."""
    return isinstance(raw, str) and bool(_ID_PATTERN.match(raw))


def accept_trace_id(raw: str | None) -> str:
    """Adopt a wire-supplied id, or mint one when absent.

    Raises :class:`ValueError` on a malformed id — the serve edge maps
    that to a 400 rather than storing attacker-shaped keys.
    """
    if raw is None or raw == "":
        return new_trace_id()
    if not valid_trace_id(raw):
        raise ValueError(
            f"bad trace id {raw!r}: expected 1-64 chars of "
            f"[A-Za-z0-9_-]")
    return raw


@contextmanager
def trace_scope(trace_id: str | None = None) -> Iterator[str]:
    """Bind a trace id for the duration of the block, yielding it.

    With no argument: reuse the ambient id when one is already bound
    (nested scopes share one trace), otherwise mint a fresh id. An
    explicit argument always rebinds — that is how the serve edge
    adopts an ``X-Repro-Trace`` id even mid-context.
    """
    if trace_id is None:
        trace_id = _TRACE_ID.get() or new_trace_id()
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)
