"""Per-span resource attribution: CPU time and allocation peaks.

Section 6.2 of Sahu et al. puts "profiling and debugging" near the top
of users' graph-processing challenges; wall time alone cannot say *why*
a superstep is slow — busy CPU, allocation churn, or waiting on
another worker. This module attributes two resources to the spans the
stack already opens:

* ``cpu_ms`` / ``self_cpu_ms`` — CPU seconds burned on the span's
  thread (``time.thread_time_ns``), total and with the children's CPU
  subtracted, so a hot wrapper is distinguishable from a hot leaf;
* ``peak_alloc_kb`` — the Python-heap high-water mark reached while
  the span was open, relative to the heap size at entry
  (``tracemalloc``), attributed to the *innermost* open span via peak
  bubbling (see :class:`_SpanProfiler`).

Overhead contract: profiling is **off by default** and rides the same
gate design as tracing (PR 1). While off, a real span's enter/exit
pays one module-global read plus a ``None`` test, and the tracing-off
path (``NULL_SPAN``) never consults the profiler at all — locked in by
the overhead-guard test in ``tests/test_profile.py``. While on, the
attrs appear on every finished span; while off, they are **absent,
not zero**, so downstream consumers can tell "unmeasured" from
"free".

Usage::

    from repro.obs.profile import profiled, render_flame, profile_tree

    with profiled() as trace:
        run_computation("PageRank", graph, seed=0)
    print(render_flame(trace.roots))

or ``python -m repro.obs.profile --scenario social`` for the CLI.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs import spans as _spans
from repro.obs.spans import Span, capture


class _SpanProfiler:
    """The hook installed into :mod:`repro.obs.spans` while profiling.

    ``Span.__enter__``/``__exit__`` call :meth:`_on_enter` and
    :meth:`_on_exit` on real spans. Each open span carries a scratch
    frame in its ``_prof`` slot::

        [cpu0_ns, start_current_bytes, peak_seen_bytes]

    **CPU.** ``cpu0_ns`` is ``time.thread_time_ns()`` at entry; exit
    records ``cpu_ms`` as the delta. ``self_cpu_ms`` is that total
    minus the ``cpu_ms`` the span's (profiled) children recorded —
    computed from the finished children's attrs, so it is exact even
    for re-entrant span names.

    **Allocation.** tracemalloc exposes one *global* peak, so nested
    spans must share it by bubbling: at a child's entry the current
    global peak is folded into the parent's ``peak_seen`` and the
    global peak is reset, giving the child a fresh window; at the
    child's exit its absolute peak (``max`` of its window's global
    peak and its folded-in ``peak_seen``) is bubbled into the parent's
    frame and the global peak is reset again for the parent's
    remaining run. ``peak_alloc_kb`` is the span's absolute peak minus
    the heap size at its entry — the high-water mark *above where the
    span started*, never negative.
    """

    __slots__ = ("track_alloc",)

    def __init__(self, track_alloc: bool = True):
        self.track_alloc = track_alloc and tracemalloc.is_tracing()

    # Called from Span.__enter__ just before start_ns is taken.
    def _on_enter(self, span: Span) -> None:
        if self.track_alloc:
            current, peak = tracemalloc.get_traced_memory()
            parent = span.parent
            if parent is not None and parent._prof is not None:
                # Fold the window so far into the parent before the
                # child claims a fresh global peak.
                if peak > parent._prof[2]:
                    parent._prof[2] = peak
            tracemalloc.reset_peak()
            span._prof = [time.thread_time_ns(), current, current]
        else:
            span._prof = [time.thread_time_ns(), 0, 0]

    # Called from Span.__exit__ just after end_ns is taken.
    def _on_exit(self, span: Span) -> None:
        frame = span._prof
        if frame is None:  # profiling enabled mid-span: skip quietly
            return
        span._prof = None
        cpu_ms = (time.thread_time_ns() - frame[0]) / 1e6
        attrs = span.attributes
        attrs["cpu_ms"] = round(cpu_ms, 3)
        child_cpu = 0.0
        for child in span.children:
            child_cpu += child.attributes.get("cpu_ms", 0.0)
        attrs["self_cpu_ms"] = round(max(0.0, cpu_ms - child_cpu), 3)
        if self.track_alloc:
            _, peak = tracemalloc.get_traced_memory()
            abs_peak = max(frame[2], peak)
            attrs["peak_alloc_kb"] = round(
                max(0, abs_peak - frame[1]) / 1024, 3)
            parent = span.parent
            if parent is not None and parent._prof is not None:
                if abs_peak > parent._prof[2]:
                    parent._prof[2] = abs_peak
            tracemalloc.reset_peak()


_STARTED_TRACEMALLOC = False


def enable_profiling(track_alloc: bool = True) -> None:
    """Install the span profiler; spans finished from now on carry
    ``cpu_ms``/``self_cpu_ms`` (and, with ``track_alloc``,
    ``peak_alloc_kb``) attributes.

    Starts tracemalloc if allocation tracking is requested and it is
    not already tracing; :func:`disable_profiling` stops it again in
    that case. Idempotent.
    """
    global _STARTED_TRACEMALLOC
    if track_alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        _STARTED_TRACEMALLOC = True
    _spans._set_profiler(_SpanProfiler(track_alloc))


def disable_profiling() -> None:
    """Remove the span profiler and stop tracemalloc if
    :func:`enable_profiling` started it. Idempotent."""
    global _STARTED_TRACEMALLOC
    _spans._set_profiler(None)
    if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_TRACEMALLOC = False


def is_profiling() -> bool:
    return _spans._PROFILER is not None


class profiled:
    """``with profiled() as trace:`` — tracing *and* profiling for the
    block; ``trace.roots`` are the finished root spans, each subtree
    annotated with resource attrs. Restores both prior states."""

    def __init__(self, track_alloc: bool = True):
        self._track_alloc = track_alloc
        self._capture = capture()
        self._was_profiling = False

    def __enter__(self):
        self._was_profiling = is_profiling()
        handle = self._capture.__enter__()
        if not self._was_profiling:
            enable_profiling(self._track_alloc)
        return handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._was_profiling:
            disable_profiling()
        return self._capture.__exit__(exc_type, exc, tb)


# -- aggregation ---------------------------------------------------------


@dataclass
class ProfileNode:
    """One span-name aggregate within a profile tree."""

    name: str
    count: int = 0
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    self_cpu_ms: float = 0.0
    peak_alloc_kb: float = 0.0  # max across occurrences
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "ProfileNode"]]:
        yield depth, self
        for child in self.children.values():
            yield from child.walk(depth + 1)


def _fold(node: ProfileNode, span: Span) -> None:
    node.count += 1
    node.wall_ms += span.duration_ms
    attrs = span.attributes
    node.cpu_ms += attrs.get("cpu_ms", 0.0)
    node.self_cpu_ms += attrs.get("self_cpu_ms", 0.0)
    node.peak_alloc_kb = max(node.peak_alloc_kb,
                             attrs.get("peak_alloc_kb", 0.0))
    for child in span.children:
        sub = node.children.get(child.name)
        if sub is None:
            sub = node.children[child.name] = ProfileNode(child.name)
        _fold(sub, child)


def profile_tree(roots: Iterable[Span]) -> list[ProfileNode]:
    """Aggregate span trees by name at each nesting position.

    Same-named siblings (e.g. 10 ``pregel.superstep`` spans) merge
    into one node with ``count=10`` and summed wall/CPU, so the
    rendered tree stays readable however many supersteps ran.
    """
    top: dict[str, ProfileNode] = {}
    for root in roots:
        node = top.get(root.name)
        if node is None:
            node = top[root.name] = ProfileNode(root.name)
        _fold(node, root)
    return list(top.values())


def hot_spans(roots: Iterable[Span], top: int = 10,
              sort: str = "self_cpu_ms") -> list[dict[str, Any]]:
    """Flat per-name totals over whole trees, hottest first.

    ``sort`` is one of ``self_cpu_ms`` / ``cpu_ms`` / ``wall_ms`` /
    ``peak_alloc_kb``.
    """
    totals: dict[str, dict[str, Any]] = {}
    for root in roots:
        for span in root.walk():
            row = totals.get(span.name)
            if row is None:
                row = totals[span.name] = {
                    "name": span.name, "count": 0, "wall_ms": 0.0,
                    "cpu_ms": 0.0, "self_cpu_ms": 0.0,
                    "peak_alloc_kb": 0.0}
            row["count"] += 1
            row["wall_ms"] += span.duration_ms
            attrs = span.attributes
            row["cpu_ms"] += attrs.get("cpu_ms", 0.0)
            row["self_cpu_ms"] += attrs.get("self_cpu_ms", 0.0)
            row["peak_alloc_kb"] = max(row["peak_alloc_kb"],
                                       attrs.get("peak_alloc_kb", 0.0))
    rows = sorted(totals.values(), key=lambda r: r[sort], reverse=True)
    for row in rows:
        for key in ("wall_ms", "cpu_ms", "self_cpu_ms",
                    "peak_alloc_kb"):
            row[key] = round(row[key], 3)
    return rows[:top]


# -- rendering -----------------------------------------------------------


def _bar(self_ms: float, total_ms: float, scale_ms: float,
         width: int) -> str:
    """``#`` for self-CPU, ``=`` for children's CPU, ``.`` padding."""
    if scale_ms <= 0:
        return "." * width
    self_cells = round(width * self_ms / scale_ms)
    total_cells = round(width * total_ms / scale_ms)
    self_cells = min(self_cells, width)
    total_cells = min(max(total_cells, self_cells), width)
    return ("#" * self_cells + "=" * (total_cells - self_cells)
            + "." * (width - total_cells))


def render_flame(roots: Iterable[Span], width: int = 28) -> str:
    """Flame-style text rendering of a profiled span forest.

    One line per (nesting position, span name) aggregate, indented by
    depth; the bar shows CPU relative to the hottest top-level node —
    ``#`` is the node's own CPU, ``=`` the CPU of its children.
    """
    tree = profile_tree(roots)
    if not tree:
        return "(no spans)"
    scale = max(node.cpu_ms for node in tree) or max(
        node.wall_ms for node in tree)
    label_width = 2 + max(
        (depth * 2 + len(node.name)
         for top in tree for depth, node in top.walk()), default=0)
    lines = [f"{'span':<{label_width}} {'':{width}}  "
             f"{'count':>5} {'wall ms':>9} {'cpu ms':>9} "
             f"{'self ms':>9} {'peakKB':>9}"]
    for top_node in tree:
        for depth, node in top_node.walk():
            label = "  " * depth + node.name
            bar = _bar(node.self_cpu_ms, node.cpu_ms, scale, width)
            lines.append(
                f"{label:<{label_width}} {bar}  {node.count:>5} "
                f"{node.wall_ms:>9.2f} {node.cpu_ms:>9.2f} "
                f"{node.self_cpu_ms:>9.2f} {node.peak_alloc_kb:>9.1f}")
    return "\n".join(lines)


def render_hot(rows: list[dict[str, Any]], sort: str) -> str:
    lines = [f"HOT SPANS (by {sort})",
             f"  {'span':<34} {'count':>5} {'wall ms':>9} "
             f"{'cpu ms':>9} {'self ms':>9} {'peakKB':>9}"]
    for row in rows:
        lines.append(
            f"  {row['name']:<34} {row['count']:>5} "
            f"{row['wall_ms']:>9.2f} {row['cpu_ms']:>9.2f} "
            f"{row['self_cpu_ms']:>9.2f} {row['peak_alloc_kb']:>9.1f}")
    return "\n".join(lines)


# -- CLI -----------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Run the instrumented workload sweep under the "
                    "span profiler and print a flame-style CPU/"
                    "allocation breakdown.")
    parser.add_argument("--scenario", default="social",
                        help="scenario graph to run on (default: social)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the hot-span table (default: 10)")
    parser.add_argument("--sort", default="self_cpu_ms",
                        choices=("self_cpu_ms", "cpu_ms", "wall_ms",
                                 "peak_alloc_kb"))
    parser.add_argument("--width", type=int, default=28,
                        help="flame bar width in cells (default: 28)")
    parser.add_argument("--no-alloc", action="store_true",
                        help="skip tracemalloc (CPU attribution only)")
    parser.add_argument("--json", action="store_true",
                        help="emit the hot-span table as JSON")
    args = parser.parse_args(argv)

    from repro.obs.report import run_instrumented_workload

    enable_profiling(track_alloc=not args.no_alloc)
    try:
        roots, _ = run_instrumented_workload(args.scenario, args.seed)
    except ValueError as exc:  # unknown scenario
        parser.error(str(exc))
    finally:
        disable_profiling()

    rows = hot_spans(roots, top=args.top, sort=args.sort)
    if args.json:
        import json

        print(json.dumps({"scenario": args.scenario, "seed": args.seed,
                          "sort": args.sort, "hot_spans": rows}))
        return 0
    print("PROFILE  (bar: # self CPU, = children CPU; "
          "scaled to hottest root)")
    print(render_flame(roots, width=args.width))
    print()
    print(render_hot(rows, args.sort))
    return 0


if __name__ == "__main__":
    sys.exit(main())
