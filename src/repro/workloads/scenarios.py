"""Canned workload scenarios matching the survey's entity taxonomy.

Each scenario builds a synthetic graph shaped like one of the Table 4
entity categories, so examples and benchmarks can exercise the
computations of Tables 9-11 on data that looks like what participants
described.
"""

from __future__ import annotations

import random

from repro.generators import (
    barabasi_albert,
    directed_powerlaw,
    gnp_random_graph,
    watts_strogatz,
)
from repro.graphs.adjacency import Graph
from repro.graphs.property_graph import PropertyGraph


def social_network(n: int = 200, seed: int = 0) -> Graph:
    """Human entities: scale-free undirected friendship graph."""
    return barabasi_albert(n, 3, seed=seed)


def web_graph(n: int = 200, seed: int = 0) -> Graph:
    """NH-W: directed power-law hyperlink graph."""
    return directed_powerlaw(n, exponent=2.3, seed=seed)


def road_network(side: int = 15, seed: int = 0) -> Graph:
    """NH-G: a grid with perturbed weights (travel times)."""
    from repro.generators import grid_graph

    rng = random.Random(seed)
    grid = grid_graph(side, side)
    weighted = Graph(directed=False, multigraph=False)
    weighted.add_vertices(grid.vertices())
    for edge in grid.edges():
        weighted.add_edge(edge.u, edge.v,
                          weight=round(rng.uniform(1.0, 5.0), 2))
    return weighted


def collaboration_network(n: int = 200, seed: int = 0) -> Graph:
    """Scientific: small-world coauthorship-like graph."""
    return watts_strogatz(n, 6, 0.1, seed=seed)


def infrastructure_network(n: int = 150, seed: int = 0) -> Graph:
    """NH-I: sparse, nearly tree-like utility network."""
    return gnp_random_graph(n, 2.2 / n, seed=seed)


def knowledge_graph(seed: int = 0) -> PropertyGraph:
    """NH-K / RDF-flavoured: typed entities with labelled relations."""
    rng = random.Random(seed)
    graph = PropertyGraph(directed=True, multigraph=True)
    concepts = [f"concept:{i}" for i in range(40)]
    documents = [f"doc:{i}" for i in range(30)]
    authors = [f"author:{i}" for i in range(12)]
    for i, concept in enumerate(concepts):
        graph.add_vertex(concept, label="Concept", name=f"Concept {i}")
    for i, document in enumerate(documents):
        graph.add_vertex(document, label="Document",
                         title=f"Document {i}", year=2000 + i % 18)
    for i, author in enumerate(authors):
        graph.add_vertex(author, label="Author", name=f"Author {i}")
    for document in documents:
        for concept in rng.sample(concepts, rng.randint(1, 4)):
            graph.add_edge(document, concept, label="MENTIONS")
        for author in rng.sample(authors, rng.randint(1, 3)):
            graph.add_edge(author, document, label="WROTE")
    for i, concept in enumerate(concepts):
        if i + 1 < len(concepts) and rng.random() < 0.5:
            graph.add_edge(concept, concepts[i + 1], label="BROADER")
    return graph


SCENARIOS = {
    "social": social_network,
    "web": web_graph,
    "road": road_network,
    "collaboration": collaboration_network,
    "infrastructure": infrastructure_network,
}


def build_scenario(name: str, seed: int = 0) -> Graph:
    """Build a named scenario graph at its default size."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(seed=seed)
