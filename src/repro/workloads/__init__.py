"""Workload harness: every surveyed computation as runnable code
(:mod:`repro.workloads.runner`), canned scenario graphs matching the
Table 4 entity taxonomy (:mod:`repro.workloads.scenarios`), and the
product-order-transaction benchmark the paper's conclusion calls for
(:mod:`repro.workloads.product_graph`)."""

from repro.workloads.product_graph import (
    ProductGraphSpec,
    copurchase_graph,
    customer_product_ratings,
    generate_product_graph,
    product_workload_queries,
)
from repro.workloads.runner import (
    ALL_RUNNERS,
    DISTRIBUTED_RUNNERS,
    WorkloadResult,
    coverage,
    run_computation,
    run_survey_workload,
)
from repro.workloads.scenarios import SCENARIOS, build_scenario

from repro.workloads.etl import (  # noqa: E402 (Table 13 rows 2-3)
    CleaningReport,
    EdgeTable,
    GraphCleaner,
    VertexTable,
    build_graph_from_tables,
    standard_cleaning,
)
