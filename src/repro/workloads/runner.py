"""Executable registry of every surveyed computation.

Maps each row of Table 9 (graph computations), Table 10 (ML computations
and problems) and Table 11 (traversals) to a runnable callable, so the
taxonomy the survey asked participants about is not just a list of
strings in this repository -- every name can be executed against a graph
and returns a small result summary.

Used by ``examples/survey_workloads.py`` and the workload benchmarks.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.data import taxonomy
from repro.graphs.adjacency import Graph
from repro.obs import get_registry, is_enabled, span


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one computation run."""

    name: str
    summary: dict[str, Any]
    #: wall time of the run, also recorded on the span and the
    #: ``workload.computation_ms`` histogram — carried here so callers
    #: without observability enabled (e.g. the bench digest) see it.
    elapsed_ms: float = 0.0


def _sample_vertices(graph: Graph, count: int, seed: int = 0) -> list:
    vertices = list(graph.vertices())
    rng = random.Random(seed)
    if len(vertices) <= count:
        return vertices
    return rng.sample(vertices, count)


def _run_connected_components(graph, seed):
    from repro.algorithms import connected_components

    components = connected_components(graph)
    return {"components": len(components),
            "largest": max((len(c) for c in components), default=0)}


def _run_neighborhood(graph, seed):
    from repro.algorithms import k_hop_neighbors

    sources = _sample_vertices(graph, 10, seed)
    sizes = [len(k_hop_neighbors(graph, s, 2)) for s in sources]
    return {"queries": len(sources),
            "mean_2hop": sum(sizes) / len(sizes) if sizes else 0.0}


def _run_shortest_paths(graph, seed):
    from repro.algorithms import bfs_distances

    sources = _sample_vertices(graph, 5, seed)
    reached = [len(bfs_distances(graph, s)) for s in sources]
    return {"sources": len(sources),
            "mean_reached": sum(reached) / len(reached) if reached else 0.0}


def _run_subgraph_matching(graph, seed):
    from repro.algorithms import count_motif

    undirected = graph.to_undirected() if graph.directed else graph
    return {"triangles": count_motif(undirected, "triangle"),
            "paths3": count_motif(undirected, "path3")}


def _run_ranking(graph, seed):
    from repro.algorithms import approximate_betweenness, pagerank, top_ranked

    scores = pagerank(graph)
    betweenness = approximate_betweenness(
        graph, num_samples=min(20, graph.num_vertices()), seed=seed)
    return {"top_pagerank": top_ranked(scores, 3),
            "max_betweenness": max(betweenness.values(), default=0.0)}


def _run_aggregations(graph, seed):
    from repro.algorithms import average_clustering, triangle_count

    return {"triangles": triangle_count(graph),
            "avg_clustering": round(average_clustering(graph), 4)}


def _run_reachability(graph, seed):
    from repro.algorithms import is_reachable

    rng = random.Random(seed)
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        return {"queries": 0, "reachable": 0}
    queries = [(rng.choice(vertices), rng.choice(vertices))
               for _ in range(20)]
    reachable = sum(is_reachable(graph, a, b) for a, b in queries)
    return {"queries": len(queries), "reachable": reachable}


def _run_partitioning(graph, seed):
    from repro.algorithms import balance, edge_cut, partition_graph

    k = 4
    partition = partition_graph(graph, k, seed=seed)
    return {"k": k, "edge_cut": edge_cut(graph, partition),
            "balance": round(balance(partition, k), 3)}


def _run_similarity(graph, seed):
    from repro.algorithms import most_similar

    sources = _sample_vertices(graph, 5, seed)
    results = {s: most_similar(graph, s, k=3) for s in sources}
    return {"queried": len(results)}


def _run_dense(graph, seed):
    from repro.algorithms import degeneracy, densest_subgraph

    subgraph, density = densest_subgraph(graph)
    return {"densest_size": len(subgraph),
            "density": round(density, 3),
            "degeneracy": degeneracy(graph)}


def _run_mst(graph, seed):
    from repro.algorithms import kruskal_mst, mst_weight

    undirected = graph.to_undirected() if graph.directed else graph
    edges = kruskal_mst(undirected)
    return {"tree_edges": len(edges),
            "weight": round(mst_weight(edges), 2)}


def _run_coloring(graph, seed):
    from repro.algorithms import greedy_coloring, num_colors

    coloring = greedy_coloring(graph, "smallest_last")
    return {"colors": num_colors(coloring)}


def _run_diameter(graph, seed):
    from repro.algorithms import double_sweep_lower_bound

    return {"diameter_lower_bound": double_sweep_lower_bound(graph,
                                                             seed=seed)}


GRAPH_COMPUTATION_RUNNERS: dict[str, Callable] = {
    "Finding Connected Components": _run_connected_components,
    "Neighborhood Queries": _run_neighborhood,
    "Finding Short / Shortest Paths": _run_shortest_paths,
    "Subgraph Matching": _run_subgraph_matching,
    "Ranking & Centrality Scores": _run_ranking,
    "Aggregations": _run_aggregations,
    "Reachability Queries": _run_reachability,
    "Graph Partitioning": _run_partitioning,
    "Node-similarity": _run_similarity,
    "Finding Frequent or Densest Subgraphs": _run_dense,
    "Computing Minimum Spanning Tree": _run_mst,
    "Graph Coloring": _run_coloring,
    "Diameter Estimation": _run_diameter,
}


def _run_clustering(graph, seed):
    from repro.ml import label_propagation_clustering

    clusters = label_propagation_clustering(graph, seed=seed)
    return {"clusters": len(set(clusters.values()))}


def _run_classification(graph, seed):
    from repro.ml import label_spreading

    vertices = _sample_vertices(graph, 4, seed)
    seeds = {v: i % 2 for i, v in enumerate(vertices)}
    labels = label_spreading(graph, seeds)
    return {"labelled": len(labels)}


def _run_regression(graph, seed):
    import numpy as np

    from repro.ml import fit_linear_closed_form, node_features, r_squared

    vertices, matrix = node_features(graph, ("degree", "clustering"))
    target = np.array([graph.degree(v) for v in vertices], dtype=float)
    model = fit_linear_closed_form(matrix, target)
    return {"r2": round(r_squared(target,
                                  model.predict_linear(matrix)), 3)}


def _run_inference(graph, seed):
    from repro.ml import PairwiseMRF, loopy_belief_propagation

    undirected = graph.to_undirected() if graph.directed else graph
    mrf = PairwiseMRF(graph=undirected, num_states=2)
    try:
        marginals = loopy_belief_propagation(mrf, max_iter=30, damping=0.3)
    except Exception:
        return {"converged": False}
    return {"converged": True, "variables": len(marginals)}


def _run_collaborative(graph, seed):
    from repro.ml import RatingMatrix, matrix_factorization_als

    rng = random.Random(seed)
    vertices = _sample_vertices(graph, 20, seed)
    ratings = [(f"user{i % 5}", v, float(rng.randint(1, 5)))
               for i, v in enumerate(vertices)]
    model = matrix_factorization_als(
        RatingMatrix.from_ratings(ratings), rank=2, iterations=5)
    return {"rmse": round(model.rmse(), 3)}


def _run_sgd(graph, seed):
    import numpy as np

    from repro.ml import fit_linear_sgd, mean_squared_error, node_features

    vertices, matrix = node_features(graph, ("degree", "clustering"))
    target = matrix[:, 0] * 2.0 + 1.0
    model = fit_linear_sgd(matrix, target, epochs=50, seed=seed)
    mse = mean_squared_error(target, model.predict_linear(matrix))
    return {"mse": round(float(mse), 4)}


def _run_als(graph, seed):
    return _run_collaborative(graph, seed)


ML_COMPUTATION_RUNNERS: dict[str, Callable] = {
    "Clustering": _run_clustering,
    "Classification": _run_classification,
    "Regression (Linear / Logistic)": _run_regression,
    "Graphical Model Inference": _run_inference,
    "Collaborative Filtering": _run_collaborative,
    "Stochastic Gradient Descent": _run_sgd,
    "Alternating Least Squares": _run_als,
}


def _run_community(graph, seed):
    from repro.ml import community_sizes, louvain, modularity

    communities = louvain(graph, seed=seed)
    return {"communities": len(community_sizes(communities)),
            "modularity": round(modularity(graph, communities), 3)}


def _run_recommendation(graph, seed):
    from repro.ml import ItemKNN, RatingMatrix

    rng = random.Random(seed)
    vertices = _sample_vertices(graph, 15, seed)
    ratings = [(f"user{i % 4}", v, float(rng.randint(1, 5)))
               for i, v in enumerate(vertices)]
    knn = ItemKNN(k=3).fit(RatingMatrix.from_ratings(ratings))
    return {"recommendations": len(knn.recommend("user0", n=3))}


def _run_link_prediction(graph, seed):
    from repro.ml import predict_links

    undirected = graph.to_undirected() if graph.directed else graph
    links = predict_links(undirected, k=5)
    return {"predicted": len(links)}


def _run_influence(graph, seed):
    from repro.ml import degree_heuristic, expected_spread

    seeds = degree_heuristic(graph, 3)
    spread = expected_spread(graph, seeds, probability=0.1,
                             simulations=20, seed=seed)
    return {"seed_set": len(seeds), "spread": round(spread, 1)}


ML_PROBLEM_RUNNERS: dict[str, Callable] = {
    "Community Detection": _run_community,
    "Recommendation System": _run_recommendation,
    "Link Prediction": _run_link_prediction,
    "Influence Maximization": _run_influence,
}


def _run_bfs(graph, seed):
    from repro.algorithms import bfs_order

    sources = _sample_vertices(graph, 3, seed)
    visited = [sum(1 for _ in bfs_order(graph, s)) for s in sources]
    return {"bfs_runs": len(visited), "visited": sum(visited)}


def _run_dfs(graph, seed):
    from repro.algorithms import dfs_preorder

    sources = _sample_vertices(graph, 3, seed)
    visited = [sum(1 for _ in dfs_preorder(graph, s)) for s in sources]
    return {"dfs_runs": len(visited), "visited": sum(visited)}


TRAVERSAL_RUNNERS: dict[str, Callable] = {
    "Breadth-first-search or variant": _run_bfs,
    "Depth-first-search or variant": _run_dfs,
}


ALL_RUNNERS: dict[str, Callable] = {
    **GRAPH_COMPUTATION_RUNNERS,
    **ML_COMPUTATION_RUNNERS,
    **ML_PROBLEM_RUNNERS,
    **TRAVERSAL_RUNNERS,
}


def _run_components_distributed(graph, seed, shards, fault_plan=None):
    from repro.dgps.algorithms import connected_components_spec
    from repro.dist import run_distributed_pregel

    result = run_distributed_pregel(
        graph, connected_components_spec(graph), k=shards, seed=seed,
        fault_plan=fault_plan)
    return {"components": len(set(result.values.values())),
            "shards": result.k,
            "supersteps": result.supersteps,
            "routed_messages": result.routed_messages(),
            "combined_messages": result.combined_messages()}


def _run_ranking_distributed(graph, seed, shards, fault_plan=None):
    from repro.algorithms import top_ranked
    from repro.dgps.algorithms import pagerank_spec
    from repro.dist import run_distributed_pregel

    result = run_distributed_pregel(
        graph, pagerank_spec(graph, supersteps=10), k=shards, seed=seed,
        fault_plan=fault_plan)
    return {"top_pagerank": top_ranked(result.values, 3),
            "shards": result.k,
            "supersteps": result.supersteps,
            "routed_messages": result.routed_messages(),
            "combined_messages": result.combined_messages()}


#: Computations with a sharded-runtime runner (:mod:`repro.dist`).
DISTRIBUTED_RUNNERS: dict[str, Callable] = {
    "Finding Connected Components": _run_components_distributed,
    "Ranking & Centrality Scores": _run_ranking_distributed,
}


def run_computation(name: str, graph: Graph, seed: int = 0, *,
                    distributed: bool = False,
                    shards: int = 4,
                    fault_plan=None) -> WorkloadResult:
    """Run one surveyed computation by its Table 9/10/11 name.

    Each run is wrapped in a labeled ``workload.computation`` span and,
    while observability is on, feeds the ``workload.computation_ms``
    latency histogram. ``distributed=True`` opts the computation into
    the sharded runtime (:mod:`repro.dist`) with ``shards`` workers —
    available for the names in :data:`DISTRIBUTED_RUNNERS`. A
    ``fault_plan`` (:class:`repro.dist.FaultPlan`) rides along to the
    distributed runtime — the serve chaos harness injects mid-request
    worker kills this way.
    """
    if name not in ALL_RUNNERS:
        raise ValueError(
            f"unknown computation {name!r}; known: {sorted(ALL_RUNNERS)}")
    if fault_plan is not None and not distributed:
        raise ValueError(
            "fault_plan requires distributed=True (only the sharded "
            "runtime has a recovery supervisor)")
    if distributed:
        try:
            runner = DISTRIBUTED_RUNNERS[name]
        except KeyError:
            raise ValueError(
                f"no distributed runner for {name!r}; "
                f"distributed-capable: {sorted(DISTRIBUTED_RUNNERS)}"
            ) from None
        args = (graph, seed, shards, fault_plan)
    else:
        runner = ALL_RUNNERS[name]
        args = (graph, seed)
    mode = "distributed" if distributed else "local"
    with span("workload.computation", name=name, seed=seed,
              mode=mode) as run_span:
        if distributed:
            run_span.set("shards", shards)
        start = time.perf_counter()
        summary = runner(*args)
        elapsed_ms = (time.perf_counter() - start) * 1000
        run_span.set("elapsed_ms", elapsed_ms)
    if is_enabled():
        from repro.obs.memory import record_memory_gauges

        registry = get_registry()
        registry.inc("workload.computations")
        registry.inc(f"workload.computations.{mode}")
        registry.observe("workload.computation_ms", elapsed_ms)
        record_memory_gauges(registry, prefix="workload.mem")
    return WorkloadResult(name=name, summary=summary,
                          elapsed_ms=elapsed_ms)


def run_survey_workload(graph: Graph, seed: int = 0) -> list[WorkloadResult]:
    """Run every Table 9 computation plus both traversals on one graph."""
    names = list(taxonomy.GRAPH_COMPUTATIONS) + list(TRAVERSAL_RUNNERS)
    with span("workload.survey", computations=len(names),
              vertices=graph.num_vertices()):
        results = [run_computation(name, graph, seed) for name in names]
    return results


def coverage() -> dict[str, bool]:
    """Which taxonomy names have runners (should be: all of them)."""
    names = (list(taxonomy.GRAPH_COMPUTATIONS)
             + list(taxonomy.ML_COMPUTATIONS)
             + list(taxonomy.ML_PROBLEMS))
    return {name: name in ALL_RUNNERS for name in names}
