"""Build/Extract/Transform and Graph Cleaning (Table 13, rows 2-3).

Table 13 shows participants use dedicated software to *build* graphs from
other data and to *clean* them; Table 16 shows they spend real weekly
hours on ETL and cleaning. This module provides both:

* :func:`build_graph_from_tables` -- extract a property graph from
  relational-style tables (lists of dicts): one vertex table per label,
  one edge table per relationship, with foreign-key joins -- the classic
  enterprise-data-to-graph ETL the survey's product graphs come from.
* :class:`GraphCleaner` -- a configurable cleaning pipeline: drop self
  loops, merge parallel edges, remove isolated vertices, keep the giant
  component, clamp/normalize weights -- with a report of everything it
  removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.property_graph import PropertyGraph

Row = Mapping[str, Any]


@dataclass(frozen=True)
class VertexTable:
    """One relational table to extract vertices from."""

    label: str
    rows: Sequence[Row]
    key: str                      # column holding the vertex id
    properties: tuple[str, ...] = ()


@dataclass(frozen=True)
class EdgeTable:
    """One relational table to extract edges from (foreign-key join)."""

    label: str
    rows: Sequence[Row]
    source: str                   # column with the source vertex id
    target: str                   # column with the target vertex id
    weight: str | None = None     # optional numeric column
    properties: tuple[str, ...] = ()


def build_graph_from_tables(
    vertex_tables: Iterable[VertexTable],
    edge_tables: Iterable[EdgeTable],
    directed: bool = True,
    strict: bool = True,
) -> PropertyGraph:
    """ETL: relational tables -> property graph.

    ``strict`` controls dangling foreign keys: raise (strict) or create
    the missing endpoint as an unlabelled vertex (lenient).
    """
    graph = PropertyGraph(directed=directed, multigraph=True)
    for table in vertex_tables:
        for row in table.rows:
            if table.key not in row:
                raise GraphError(
                    f"vertex table {table.label!r}: row missing key "
                    f"column {table.key!r}")
            properties = {name: row[name] for name in table.properties
                          if name in row and row[name] is not None}
            graph.add_vertex(row[table.key], label=table.label,
                             **properties)
    for table in edge_tables:
        for row in table.rows:
            source, target = row.get(table.source), row.get(table.target)
            if source is None or target is None:
                raise GraphError(
                    f"edge table {table.label!r}: row missing "
                    f"{table.source!r}/{table.target!r}")
            for endpoint in (source, target):
                if endpoint not in graph:
                    if strict:
                        raise GraphError(
                            f"edge table {table.label!r}: dangling "
                            f"foreign key {endpoint!r}")
                    graph.add_vertex(endpoint)
            weight = 1.0
            if table.weight is not None:
                weight = float(row.get(table.weight, 1.0))
            properties = {name: row[name] for name in table.properties
                          if name in row and row[name] is not None}
            graph.add_edge(source, target, weight=weight,
                           label=table.label, **properties)
    return graph


@dataclass
class CleaningReport:
    """What a cleaning run removed or rewrote."""

    self_loops_removed: int = 0
    parallel_edges_merged: int = 0
    isolated_vertices_removed: int = 0
    small_component_vertices_removed: int = 0
    weights_clamped: int = 0
    notes: list[str] = field(default_factory=list)

    def total_removed(self) -> int:
        return (self.self_loops_removed + self.parallel_edges_merged
                + self.isolated_vertices_removed
                + self.small_component_vertices_removed)


class GraphCleaner:
    """A configurable, order-stable cleaning pipeline.

    Each ``enable_*`` call appends a step; :meth:`clean` runs them in the
    order configured and returns ``(cleaned_graph, report)``. The input
    graph is never mutated.
    """

    def __init__(self):
        self._steps: list[str] = []
        self._min_weight: float | None = None
        self._max_weight: float | None = None

    def drop_self_loops(self) -> "GraphCleaner":
        self._steps.append("self_loops")
        return self

    def merge_parallel_edges(self) -> "GraphCleaner":
        """Replace parallel edges by one edge carrying the summed
        weight."""
        self._steps.append("parallel")
        return self

    def drop_isolated_vertices(self) -> "GraphCleaner":
        self._steps.append("isolated")
        return self

    def keep_largest_component(self) -> "GraphCleaner":
        self._steps.append("giant")
        return self

    def clamp_weights(self, minimum: float | None = None,
                      maximum: float | None = None) -> "GraphCleaner":
        self._min_weight = minimum
        self._max_weight = maximum
        self._steps.append("clamp")
        return self

    def clean(self, graph: Graph) -> tuple[Graph, CleaningReport]:
        report = CleaningReport()
        working = graph.copy()
        for step in self._steps:
            if step == "self_loops":
                working = self._drop_self_loops(working, report)
            elif step == "parallel":
                working = self._merge_parallel(working, report)
            elif step == "isolated":
                working = self._drop_isolated(working, report)
            elif step == "giant":
                working = self._keep_giant(working, report)
            elif step == "clamp":
                working = self._clamp(working, report)
        return working, report

    def _drop_self_loops(self, graph: Graph,
                         report: CleaningReport) -> Graph:
        loops = [e.edge_id for e in graph.edges() if e.u == e.v]
        for edge_id in loops:
            graph.remove_edge(edge_id)
        report.self_loops_removed += len(loops)
        return graph

    def _merge_parallel(self, graph: Graph,
                        report: CleaningReport) -> Graph:
        merged = Graph(directed=graph.directed, multigraph=False)
        merged.add_vertices(graph.vertices())
        seen: dict[tuple, float] = {}
        for edge in graph.edges():
            if graph.directed:
                key = (edge.u, edge.v)
            else:
                key = tuple(sorted((edge.u, edge.v), key=repr))
            if key in seen:
                report.parallel_edges_merged += 1
            seen[key] = seen.get(key, 0.0) + edge.weight
        for (u, v), weight in seen.items():
            merged.add_edge(u, v, weight=weight)
        return merged

    def _drop_isolated(self, graph: Graph,
                       report: CleaningReport) -> Graph:
        isolated = [v for v in graph.vertices() if graph.degree(v) == 0]
        for vertex in isolated:
            graph.remove_vertex(vertex)
        report.isolated_vertices_removed += len(isolated)
        return graph

    def _keep_giant(self, graph: Graph, report: CleaningReport) -> Graph:
        from repro.algorithms.components import largest_component

        giant = largest_component(graph)
        dropped = graph.num_vertices() - len(giant)
        report.small_component_vertices_removed += dropped
        if dropped == 0:
            return graph
        return graph.subgraph(giant)

    def _clamp(self, graph: Graph, report: CleaningReport) -> Graph:
        clamped = Graph(directed=graph.directed,
                        multigraph=graph.multigraph)
        clamped.add_vertices(graph.vertices())
        for edge in graph.edges():
            weight = edge.weight
            if self._min_weight is not None and weight < self._min_weight:
                weight = self._min_weight
                report.weights_clamped += 1
            if self._max_weight is not None and weight > self._max_weight:
                weight = self._max_weight
                report.weights_clamped += 1
            clamped.add_edge(edge.u, edge.v, weight=weight)
        return clamped


def standard_cleaning(graph: Graph) -> tuple[Graph, CleaningReport]:
    """The pipeline the survey hints at (e.g. removing singleton vertices
    before running connected components): drop loops, merge parallels,
    drop isolated vertices."""
    cleaner = (GraphCleaner()
               .drop_self_loops()
               .merge_parallel_edges()
               .drop_isolated_vertices())
    return cleaner.clean(graph)
