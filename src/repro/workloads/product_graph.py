"""Product-order-transaction graphs -- the paper's future-work benchmark.

The survey's most striking finding is that product/order/transaction data
(NH-P, Table 4) is the most common non-human entity practitioners put in
graphs, yet "existing graph benchmarks, such as LDBC and Graph500, do not
yet provide workloads and data to process product graphs" (Section 9).
This module provides exactly that: a TPC-C-flavoured synthetic *product
graph* generator plus the graph workload mix the survey says users run on
such data.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass

from repro.graphs.property_graph import PropertyGraph


@dataclass(frozen=True)
class ProductGraphSpec:
    """Scale knobs, TPC-C-flavoured.

    Each customer places ~``orders_per_customer`` orders; each order has
    1..``max_lines`` order lines referencing products; a payment
    transaction is attached to most orders.
    """

    customers: int = 100
    products: int = 50
    orders_per_customer: float = 3.0
    max_lines: int = 5
    payment_rate: float = 0.9
    start_date: dt.date = dt.date(2017, 1, 1)

    def __post_init__(self):
        if self.customers < 1 or self.products < 1:
            raise ValueError("need at least one customer and one product")
        if not 0 <= self.payment_rate <= 1:
            raise ValueError("payment_rate must be in [0, 1]")


def generate_product_graph(
    spec: ProductGraphSpec = ProductGraphSpec(),
    seed: int = 0,
) -> PropertyGraph:
    """Generate the property graph.

    Labels: ``Customer``, ``Product``, ``Order``, ``Payment``.
    Edges: ``PLACED`` (customer->order), ``CONTAINS`` (order->product,
    weight = quantity, property ``price``), ``PAID_BY`` (order->payment),
    ``REFERRED`` (customer->customer, a small social overlay so
    community/link workloads have signal).
    """
    rng = random.Random(seed)
    graph = PropertyGraph(directed=True, multigraph=False)

    customers = [f"customer:{i}" for i in range(spec.customers)]
    products = [f"product:{i}" for i in range(spec.products)]
    for i, customer in enumerate(customers):
        graph.add_vertex(customer, label="Customer",
                         name=f"Customer {i}",
                         segment=rng.choice(("consumer", "business")))
    for i, product in enumerate(products):
        graph.add_vertex(
            product, label="Product", sku=f"SKU-{i:05d}",
            price=round(rng.uniform(1.0, 500.0), 2),
            category=rng.choice(
                ("grocery", "electronics", "apparel", "home", "toys")))

    order_id = 0
    payment_id = 0
    for customer in customers:
        num_orders = rng.randint(
            0, max(1, int(2 * spec.orders_per_customer)))
        for _ in range(num_orders):
            order = f"order:{order_id}"
            order_id += 1
            placed_on = spec.start_date + dt.timedelta(
                days=rng.randrange(365))
            graph.add_vertex(order, label="Order",
                             placed_on=placed_on, status="delivered")
            graph.add_edge(customer, order, label="PLACED")
            total = 0.0
            for product in rng.sample(
                    products, rng.randint(1, spec.max_lines)):
                quantity = rng.randint(1, 5)
                price = graph.vertex_property(product, "price")
                graph.add_edge(order, product, weight=float(quantity),
                               label="CONTAINS", price=price)
                total += price * quantity
            graph.set_vertex_property(order, "total", round(total, 2))
            if rng.random() < spec.payment_rate:
                payment = f"payment:{payment_id}"
                payment_id += 1
                graph.add_vertex(payment, label="Payment",
                                 amount=round(total, 2),
                                 method=rng.choice(
                                     ("card", "invoice", "wallet")))
                graph.add_edge(order, payment, label="PAID_BY")

    # Referral overlay: sparse customer-customer edges.
    for customer in customers:
        if rng.random() < 0.3:
            other = rng.choice(customers)
            if other != customer and not graph.has_edge(customer, other):
                graph.add_edge(customer, other, label="REFERRED")
    return graph


def copurchase_graph(graph: PropertyGraph) -> PropertyGraph:
    """Project the product graph onto products: two products are linked
    when some order contains both (weight = number of such orders). This
    is the graph recommendation workloads actually run on."""
    projection = PropertyGraph(directed=False, multigraph=False)
    weights: dict[tuple, float] = {}
    for order in graph.vertices_with_label("Order"):
        items = sorted(
            (v for v in graph.out_neighbors(order)
             if graph.vertex_label(v) == "Product"),
            key=repr)
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                weights[a, b] = weights.get((a, b), 0.0) + 1.0
    for product in graph.vertices_with_label("Product"):
        projection.add_vertex(product, label="Product")
    for (a, b), weight in sorted(weights.items()):
        projection.add_edge(a, b, weight=weight, label="CO_PURCHASED")
    return projection


def customer_product_ratings(graph: PropertyGraph):
    """Rating triples for collaborative filtering: a customer's implicit
    rating of a product is the total quantity purchased (capped at 5)."""
    totals: dict[tuple, float] = {}
    for customer in graph.vertices_with_label("Customer"):
        for order in graph.out_neighbors(customer):
            if graph.vertex_label(order) != "Order":
                continue
            for edge_id in (eid for product in graph.out_neighbors(order)
                            for eid in graph.edge_ids(order, product)):
                edge = graph.edge(edge_id)
                if graph.vertex_label(edge.v) != "Product":
                    continue
                key = (customer, edge.v)
                totals[key] = totals.get(key, 0.0) + edge.weight
    return [
        (customer, product, min(5.0, quantity))
        for (customer, product), quantity in sorted(totals.items())
    ]


def product_workload_queries() -> dict[str, str]:
    """The survey-flavoured query mix over the product graph, as GQL-lite
    strings for :func:`repro.query.run_query`."""
    return {
        "orders_of_customer": (
            "MATCH (c:Customer)-[:PLACED]->(o:Order) "
            "RETURN c, o LIMIT 100"),
        "big_orders": (
            "MATCH (c:Customer)-[:PLACED]->(o:Order) "
            "WHERE o.total > 500 RETURN c, o.total"),
        "co_purchasers": (
            "MATCH (a:Customer)-[:PLACED]->(o1:Order)-[:CONTAINS]->"
            "(p:Product), (b:Customer)-[:PLACED]->(o2:Order)-[:CONTAINS]->"
            "(p) WHERE a <> b RETURN DISTINCT a, b LIMIT 200"),
        "payment_methods": (
            "MATCH (o:Order)-[:PAID_BY]->(pay:Payment) "
            "RETURN o, pay.method LIMIT 100"),
    }
