"""Published ground truth (all paper tables) and the canonical taxonomy."""

from repro.data.table_model import Table, table_from_rows
