"""Canonical vocabulary of the VLDB 2017 survey.

Every question in the survey instrument, every tabulation, and every
synthetic-population constraint refers to the names defined here, so a typo
in one place cannot silently diverge from the paper's terminology.

The constants mirror, verbatim where practical, the row labels of the
paper's tables (Tables 1-20) and the choice lists described in Sections 2-7
and Appendices A-D.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Section 2.2 -- demographics
# ---------------------------------------------------------------------------

FIELDS_OF_WORK = (
    "Information & Technology",
    "Research in Academia",
    "Finance",
    "Research in Industry Lab",
    "Government",
    "Healthcare",
    "Defence & Space",
    "Pharmaceutical",
    "Retail & E-Commerce",
    "Transportation",
    "Telecommunications",
    "Insurance",
    "Other",
)

#: Fields whose selection makes a participant a *researcher* (Section 2.2).
RESEARCHER_FIELDS = frozenset(
    {"Research in Academia", "Research in Industry Lab"})

ORG_SIZES = ("1 - 10", "10 - 100", "100 - 1000", "1000 - 10000", ">10000")

ROLES = ("Researcher", "Engineer", "Manager", "Data Analyst")

# ---------------------------------------------------------------------------
# Section 3 -- graph datasets
# ---------------------------------------------------------------------------

ENTITY_KINDS = ("Human", "Non-Human", "RDF", "Scientific")

#: The seven broad categories of non-human entities (Section 3.1).
NON_HUMAN_CATEGORIES = (
    "NH-P",  # Products, orders, transactions
    "NH-B",  # Business and financial data
    "NH-W",  # Web data
    "NH-G",  # Geographic maps
    "NH-D",  # Digital data
    "NH-I",  # Infrastructure networks
    "NH-K",  # Knowledge and textual data
)

NON_HUMAN_CATEGORY_NAMES = {
    "NH-P": "Products",
    "NH-B": "Business and Financial Data",
    "NH-W": "Web Data",
    "NH-G": "Geographic Maps",
    "NH-D": "Digital Data",
    "NH-I": "Infrastructure Networks",
    "NH-K": "Knowledge and Textual Data",
}

VERTEX_COUNT_BUCKETS = (
    "<10K", "10K - 100K", "100K - 1M", "1M - 10M", "10M - 100M", ">100M",
)

EDGE_COUNT_BUCKETS = (
    "<10K", "10K - 100K", "100K - 1M", "1M - 10M", "10M - 100M",
    "100M - 1B", ">1B",
)

BYTE_SIZE_BUCKETS = (
    "<100MB", "100MB - 1GB", "1GB - 10GB", "10GB - 100GB", "100GB - 1TB",
    ">1 TB",
)

DIRECTEDNESS = ("Only Directed", "Only Undirected", "Both")

SIMPLICITY = ("Only Simple Graphs", "Only Multigraphs", "Both")

PROPERTY_TYPES = ("String", "Numeric", "Date/Timestamp", "Binary")

DYNAMISM = ("Static", "Dynamic", "Streaming")

# ---------------------------------------------------------------------------
# Section 4 -- computations (choices derived from the 90-paper review)
# ---------------------------------------------------------------------------

GRAPH_COMPUTATIONS = (
    "Finding Connected Components",
    "Neighborhood Queries",
    "Finding Short / Shortest Paths",
    "Subgraph Matching",
    "Ranking & Centrality Scores",
    "Aggregations",
    "Reachability Queries",
    "Graph Partitioning",
    "Node-similarity",
    "Finding Frequent or Densest Subgraphs",
    "Computing Minimum Spanning Tree",
    "Graph Coloring",
    "Diameter Estimation",
)

ML_COMPUTATIONS = (
    "Clustering",
    "Classification",
    "Regression (Linear / Logistic)",
    "Graphical Model Inference",
    "Collaborative Filtering",
    "Stochastic Gradient Descent",
    "Alternating Least Squares",
)

ML_PROBLEMS = (
    "Community Detection",
    "Recommendation System",
    "Link Prediction",
    "Influence Maximization",
)

TRAVERSALS = (
    "Breadth-first-search or variant",
    "Depth-first-search or variant",
    "Both",
    "Neither",
)

# ---------------------------------------------------------------------------
# Section 5 -- software
# ---------------------------------------------------------------------------

QUERY_SOFTWARE = (
    "Graph Database System",
    "Apache Hadoop, Spark, Pig, Hive",
    "Apache Tinkerpop (Gremlin)",
    "Relational Database Management System",
    "RDF Engine",
    "Distributed Graph Processing Systems",
    "Linear Algebra Library / Software",
    "In-Memory Graph Processing Library",
)

NON_QUERY_SOFTWARE = (
    "Graph Visualization",
    "Build / Extract / Transform",
    "Graph Cleaning",
    "Synthetic Graph Generator",
    "Specialized Debugger",
)

ARCHITECTURES = (
    "Single Machine Serial",
    "Single Machine Parallel",
    "Distributed",
)

STORAGE_FORMATS = (
    "Graph Databases",
    "Relational Databases",
    "RDF Store",
    "NoSQL Store (Key-value, HBase)",
    "XML / JSON",
    "JGF / GML / GraphML",
    "CSV / Text files",
    "Elasticsearch",
    "Binary",
)

# ---------------------------------------------------------------------------
# Section 6 / 7 -- challenges and workload
# ---------------------------------------------------------------------------

CHALLENGES = (
    "Scalability",
    "Visualization",
    "Query Languages / Programming APIs",
    "Faster graph or machine learning algorithms",
    "Usability",
    "Benchmarks",
    "More general purpose graph software",
    "Extract & Transform",
    "Debugging & Testing",
    "Graph Cleaning",
)

WORKLOAD_TASKS = (
    "Analytics", "Testing", "Debugging", "Maintenance", "ETL", "Cleaning",
)

HOUR_BUCKETS = ("0 - 5 hours", "5 - 10 hours", ">10 hours")

# ---------------------------------------------------------------------------
# Section 2.4 / 6.2 -- review taxonomy (Table 19)
# ---------------------------------------------------------------------------

REVIEW_CHALLENGE_GROUPS = {
    "Graph DBs and RDF Engines": (
        "High-degree Vertices",
        "Hyperedges",
        "Triggers",
        "Versioning and Historical Analysis",
        "Schema & Constraints",
    ),
    "Visualization Software": (
        "Layout",
        "Customizability",
        "Large-graph Visualization",
        "Dynamic Graph Visualization",
    ),
    "Query Languages": (
        "Subqueries",
        "Querying Across Multiple Graphs",
    ),
    "DGPS and Graph Libraries": (
        "Off-the-shelf Algorithms",
        "Graph Generators",
        "GPU Support",
    ),
}

REVIEW_CHALLENGES = tuple(
    challenge
    for group in REVIEW_CHALLENGE_GROUPS.values()
    for challenge in group
)

#: Email/issue graph-size buckets (Table 18).
EMAIL_VERTEX_BUCKETS = ("100M - 1B", "1B - 10B", "10B - 100B", ">100B")
EMAIL_EDGE_BUCKETS = ("1B - 10B", "10B - 100B", "100B - 500B", ">500B")

# ---------------------------------------------------------------------------
# Table 1 / Table 20 -- the 22 surveyed products (+2 extra viz repos)
# ---------------------------------------------------------------------------

TECHNOLOGY_CLASSES = (
    "Graph Database System",
    "RDF Engine",
    "Distributed Graph Processing Engine",
    "Query Language",
    "Graph Library",
    "Graph Visualization",
    "Graph Representation",
)

#: product name -> technology class, for the 22 surveyed products plus the
#: two visualization repositories (Gephi, Graphviz) reviewed in Section 2.4.
PRODUCTS = {
    "ArangoDB": "Graph Database System",
    "Cayley": "Graph Database System",
    "DGraph": "Graph Database System",
    "JanusGraph": "Graph Database System",
    "Neo4j": "Graph Database System",
    "OrientDB": "Graph Database System",
    "Apache Jena": "RDF Engine",
    "Sparksee": "RDF Engine",
    "Virtuoso": "RDF Engine",
    "Apache Flink (Gelly)": "Distributed Graph Processing Engine",
    "Apache Giraph": "Distributed Graph Processing Engine",
    "Apache Spark (GraphX)": "Distributed Graph Processing Engine",
    "Gremlin": "Query Language",
    "Graph for Scala": "Graph Library",
    "GraphStream": "Graph Library",
    "Graphtool": "Graph Library",
    "NetworKit": "Graph Library",
    "NetworkX": "Graph Library",
    "SNAP": "Graph Library",
    "Cytoscape": "Graph Visualization",
    "Elasticsearch (X-Pack Graph)": "Graph Visualization",
    "Conceptual Graphs": "Graph Representation",
    # Reviewed for issues only (Section 2.4), not part of the 22 products:
    "Gephi": "Graph Visualization",
    "Graphviz": "Graph Visualization",
}

SURVEYED_PRODUCTS = tuple(
    name for name in PRODUCTS if name not in ("Gephi", "Graphviz")
)

#: Technology classes whose user communities raise the "Graph DBs and RDF
#: Engines" challenge group of Table 19.
GRAPHDB_LIKE_CLASSES = frozenset(
    {"Graph Database System", "RDF Engine"}
)
DGPS_LIBRARY_CLASSES = frozenset(
    {"Distributed Graph Processing Engine", "Graph Library"}
)
