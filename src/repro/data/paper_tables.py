"""Published ground truth: every table of the VLDB 2017 paper.

The numbers below are transcribed from the paper. Two transcription notes:

* **Table 1**: the Apache Flink (Gelly) user count is illegible in the
  available text; the DGPS group total is 39 and Giraph + GraphX account for
  15, so Flink is recorded as 24.
* **Table 15**: the last four rows are garbled in the available text. The
  twelve numbers present admit exactly one partition into four
  ``Total = R + P`` rows -- ``(20; 11, 9), (20; 6, 14), (17; 10, 7),
  (10; 8, 2)`` -- which we assign in the table's descending-total row order.
* **Table 6**: the published row sums to 19 for 20 big-graph participants;
  all survey questions were optional, so one participant is modelled as not
  reporting an organization size.
"""

from __future__ import annotations

from repro.data.table_model import Table, table_from_rows

TRP = ("Total", "R", "P")
TRPA = ("Total", "R", "P", "A")

#: Scalar facts quoted in the running text (Sections 2-7).
PAPER_FACTS = {
    "participants": 89,
    "researchers": 36,
    "practitioners": 53,
    "software_products": 22,
    "papers_reviewed": 90,
    "emails_and_issues_reviewed_min": 6000,
    "useful_emails_and_issues": 311,
    "role_engineer": 54,
    "role_researcher": 48,
    "role_data_analyst": 18,
    "role_manager": 16,
    "answered_software_question": 84,
    "multi_format_participants": 33,
    "multi_format_described": 25,
    "streaming_or_incremental_users": 32,
    "ml_users": 61,
    "big_graph_participants": 20,       # >1B edges
    "big_graph_researchers": 8,
    "big_graph_practitioners": 12,
    "distributed_users": 45,
    "distributed_users_with_100m_edges": 29,
    "rdbms_users_also_graphdb": 16,
    "no_data_on_vertices_or_edges": 3,
}

TABLE_1 = table_from_rows(
    "1",
    "Software products used for recruiting participants and the number of "
    "active mailing list users (Feb-Apr 2017)",
    ("Users",),
    [
        ("ArangoDB", (40,)),
        ("Cayley", (14,)),
        ("DGraph", (33,)),
        ("JanusGraph", (32,)),
        ("Neo4j", (69,)),
        ("OrientDB", (45,)),
        ("Apache Jena", (87,)),
        ("Sparksee", (5,)),
        ("Virtuoso", (23,)),
        ("Apache Flink (Gelly)", (24,)),
        ("Apache Giraph", (8,)),
        ("Apache Spark (GraphX)", (7,)),
        ("Gremlin", (82,)),
        ("Graph for Scala", (4,)),
        ("GraphStream", (8,)),
        ("Graphtool", (28,)),
        ("NetworKit", (10,)),
        ("NetworkX", (27,)),
        ("SNAP", (20,)),
        ("Cytoscape", (93,)),
        ("Elasticsearch (X-Pack Graph)", (23,)),
        ("Conceptual Graphs", (6,)),
    ],
)

TABLE_2 = table_from_rows(
    "2", "The participants' fields of work", TRP,
    [
        ("Information & Technology", (48, 12, 36)),
        ("Research in Academia", (31, 31, 0)),
        ("Finance", (12, 2, 10)),
        ("Research in Industry Lab", (11, 11, 0)),
        ("Government", (7, 3, 4)),
        ("Healthcare", (5, 3, 2)),
        ("Defence & Space", (4, 3, 1)),
        ("Pharmaceutical", (3, 0, 3)),
        ("Retail & E-Commerce", (3, 0, 3)),
        ("Transportation", (2, 0, 2)),
        ("Telecommunications", (1, 1, 0)),
        ("Insurance", (0, 0, 0)),
        ("Other", (5, 2, 3)),
    ],
)

TABLE_3 = table_from_rows(
    "3", "Size of the participants' organizations", TRP,
    [
        ("1 - 10", (27, 17, 10)),
        ("10 - 100", (23, 6, 17)),
        ("100 - 1000", (14, 4, 10)),
        ("1000 - 10000", (6, 4, 2)),
        (">10000", (15, 4, 11)),
    ],
)

TABLE_4 = table_from_rows(
    "4", "Real-world entities represented by the participants' graphs and "
    "studied in publications",
    ("Total", "R", "P", "A"),
    [
        ("Human", (45, 18, 27, 54)),
        ("RDF", (23, 11, 12, 8)),
        ("Scientific", (15, 9, 6, 11)),
        ("Non-Human", (60, 22, 38, 63)),
        ("NH-P", (13, 1, 12, 2)),
        ("NH-B", (11, 6, 5, 8)),
        ("NH-W", (4, 2, 2, 30)),
        ("NH-G", (7, 4, 3, 11)),
        ("NH-D", (5, 1, 4, 0)),
        ("NH-I", (9, 7, 2, 2)),
        ("NH-K", (11, 6, 5, 3)),
    ],
)

TABLE_5A = table_from_rows(
    "5a", "Number of vertices", TRP,
    [
        ("<10K", (22, 11, 11)),
        ("10K - 100K", (22, 9, 13)),
        ("100K - 1M", (19, 7, 12)),
        ("1M - 10M", (17, 6, 11)),
        ("10M - 100M", (20, 10, 10)),
        (">100M", (27, 10, 17)),
    ],
)

TABLE_5B = table_from_rows(
    "5b", "Number of edges", TRP,
    [
        ("<10K", (23, 11, 12)),
        ("10K - 100K", (22, 9, 13)),
        ("100K - 1M", (13, 3, 10)),
        ("1M - 10M", (9, 5, 4)),
        ("10M - 100M", (21, 8, 13)),
        ("100M - 1B", (21, 8, 13)),
        (">1B", (20, 8, 12)),
    ],
)

TABLE_5C = table_from_rows(
    "5c", "Total uncompressed bytes", TRP,
    [
        ("<100MB", (23, 12, 11)),
        ("100MB - 1GB", (19, 9, 10)),
        ("1GB - 10GB", (25, 9, 16)),
        ("10GB - 100GB", (17, 5, 12)),
        ("100GB - 1TB", (20, 8, 12)),
        (">1 TB", (17, 5, 12)),
    ],
)

TABLE_6 = table_from_rows(
    "6", "Sizes of organization that have graphs with >1B edges", ("#",),
    [
        ("1 - 10", (4,)),
        ("10 - 100", (4,)),
        ("100 - 1000", (7,)),
        (">10000", (4,)),
    ],
)

TABLE_7A = table_from_rows(
    "7a", "Directed vs. Undirected", TRP,
    [
        ("Only Directed", (63, 23, 40)),
        ("Only Undirected", (11, 6, 5)),
        ("Both", (15, 7, 8)),
    ],
)

TABLE_7B = table_from_rows(
    "7b", "Simple vs. Multigraphs", TRP,
    [
        ("Only Simple Graphs", (26, 9, 17)),
        ("Only Multigraphs", (50, 20, 30)),
        ("Both", (13, 7, 6)),
    ],
)

TABLE_7C = table_from_rows(
    "7c", "Data types stored on vertices and edges",
    ("V-Total", "V-R", "V-P", "E-Total", "E-R", "E-P"),
    [
        ("String", (79, 31, 48, 66, 24, 42)),
        ("Numeric", (63, 23, 40, 59, 23, 36)),
        ("Date/Timestamp", (56, 19, 37, 49, 18, 31)),
        ("Binary", (15, 8, 7, 8, 4, 4)),
    ],
)

TABLE_8 = table_from_rows(
    "8", "Frequency of changes", TRP,
    [
        ("Static", (40, 21, 19)),
        ("Dynamic", (55, 22, 33)),
        ("Streaming", (18, 9, 9)),
    ],
)

TABLE_9 = table_from_rows(
    "9", "Graph computations performed by the participants and studied in "
    "publications", TRPA,
    [
        ("Finding Connected Components", (55, 18, 37, 12)),
        ("Neighborhood Queries", (51, 19, 32, 3)),
        ("Finding Short / Shortest Paths", (43, 18, 25, 17)),
        ("Subgraph Matching", (33, 14, 19, 21)),
        ("Ranking & Centrality Scores", (32, 17, 15, 22)),
        ("Aggregations", (30, 10, 20, 7)),
        ("Reachability Queries", (27, 7, 20, 3)),
        ("Graph Partitioning", (25, 13, 12, 5)),
        ("Node-similarity", (18, 7, 11, 3)),
        ("Finding Frequent or Densest Subgraphs", (11, 7, 4, 2)),
        ("Computing Minimum Spanning Tree", (9, 5, 4, 2)),
        ("Graph Coloring", (7, 3, 4, 3)),
        ("Diameter Estimation", (5, 2, 3, 2)),
    ],
)

TABLE_10A = table_from_rows(
    "10a", "Machine learning computations", TRPA,
    [
        ("Clustering", (42, 22, 20, 15)),
        ("Classification", (28, 10, 18, 2)),
        ("Regression (Linear / Logistic)", (11, 5, 6, 2)),
        ("Graphical Model Inference", (10, 5, 5, 2)),
        ("Collaborative Filtering", (9, 4, 5, 2)),
        ("Stochastic Gradient Descent", (4, 2, 2, 3)),
        ("Alternating Least Squares", (0, 0, 0, 2)),
    ],
)

TABLE_10B = table_from_rows(
    "10b", "Problems solved by machine learning algorithms", TRPA,
    [
        ("Community Detection", (31, 15, 16, 5)),
        ("Recommendation System", (26, 10, 16, 2)),
        ("Link Prediction", (25, 10, 15, 2)),
        ("Influence Maximization", (14, 5, 9, 2)),
    ],
)

TABLE_11 = table_from_rows(
    "11", "Graph traversals performed by the participants", TRP,
    [
        ("Breadth-first-search or variant", (19, 5, 14)),
        ("Depth-first-search or variant", (12, 4, 8)),
        ("Both", (22, 8, 14)),
        ("Neither", (20, 11, 9)),
    ],
)

TABLE_12 = table_from_rows(
    "12", "Software for graph queries and computations", TRPA,
    [
        ("Graph Database System", (59, 20, 39, 1)),
        ("Apache Hadoop, Spark, Pig, Hive", (29, 11, 18, 2)),
        ("Apache Tinkerpop (Gremlin)", (23, 9, 14, 1)),
        ("Relational Database Management System", (21, 6, 15, 1)),
        ("RDF Engine", (16, 8, 8, 1)),
        ("Distributed Graph Processing Systems", (14, 8, 6, 17)),
        ("Linear Algebra Library / Software", (8, 6, 2, 3)),
        ("In-Memory Graph Processing Library", (7, 5, 2, 2)),
    ],
)

TABLE_13 = table_from_rows(
    "13", "Software used for non-querying tasks", TRPA,
    [
        ("Graph Visualization", (55, 22, 33, 1)),
        ("Build / Extract / Transform", (14, 8, 6, 0)),
        ("Graph Cleaning", (5, 1, 4, 0)),
        ("Synthetic Graph Generator", (4, 3, 1, 13)),
        ("Specialized Debugger", (2, 0, 2, 0)),
    ],
)

TABLE_14 = table_from_rows(
    "14", "Architectures of the software used by participants", TRP,
    [
        ("Single Machine Serial", (31, 17, 14)),
        ("Single Machine Parallel", (35, 21, 14)),
        ("Distributed", (45, 17, 28)),
    ],
)

TABLE_15 = table_from_rows(
    "15", "The graph processing challenges selected by the participants", TRP,
    [
        ("Scalability", (45, 20, 25)),
        ("Visualization", (39, 17, 22)),
        ("Query Languages / Programming APIs", (39, 18, 21)),
        ("Faster graph or machine learning algorithms", (35, 19, 16)),
        ("Usability", (25, 10, 15)),
        ("Benchmarks", (22, 12, 10)),
        ("More general purpose graph software", (20, 11, 9)),
        ("Extract & Transform", (20, 6, 14)),
        ("Debugging & Testing", (17, 10, 7)),
        ("Graph Cleaning", (10, 8, 2)),
    ],
)

TABLE_16 = table_from_rows(
    "16", "Time spent by the participants on different tasks",
    ("0 - 5 hours", "5 - 10 hours", ">10 hours"),
    [
        ("Analytics", (30, 18, 23)),
        ("Testing", (40, 12, 20)),
        ("Debugging", (37, 18, 15)),
        ("Maintenance", (46, 14, 13)),
        ("ETL", (44, 14, 10)),
        ("Cleaning", (52, 10, 6)),
    ],
)

TABLE_17 = table_from_rows(
    "17", "Data storage formats", ("#",),
    [
        ("Graph Databases", (10,)),
        ("Relational Databases", (8,)),
        ("RDF Store", (5,)),
        ("NoSQL Store (Key-value, HBase)", (5,)),
        ("XML / JSON", (4,)),
        ("JGF / GML / GraphML", (4,)),
        ("CSV / Text files", (3,)),
        ("Elasticsearch", (3,)),
        ("Binary", (2,)),
    ],
)

TABLE_18A = table_from_rows(
    "18a", "Number of vertices (user emails and issues)", ("#",),
    [
        ("100M - 1B", (10,)),
        ("1B - 10B", (17,)),
        ("10B - 100B", (1,)),
        (">100B", (2,)),
    ],
)

TABLE_18B = table_from_rows(
    "18b", "Number of edges (user emails and issues)", ("#",),
    [
        ("1B - 10B", (42,)),
        ("10B - 100B", (17,)),
        ("100B - 500B", (6,)),
        (">500B", (1,)),
    ],
)

TABLE_19 = table_from_rows(
    "19", "Challenges found in user emails and issues", ("#",),
    [
        ("High-degree Vertices", (24,)),
        ("Hyperedges", (18,)),
        ("Triggers", (18,)),
        ("Versioning and Historical Analysis", (14,)),
        ("Schema & Constraints", (10,)),
        ("Layout", (31,)),
        ("Customizability", (30,)),
        ("Large-graph Visualization", (8,)),
        ("Dynamic Graph Visualization", (4,)),
        ("Subqueries", (7,)),
        ("Querying Across Multiple Graphs", (6,)),
        ("Off-the-shelf Algorithms", (41,)),
        ("Graph Generators", (7,)),
        ("GPU Support", (3,)),
    ],
)

TABLE_20 = table_from_rows(
    "20", "The number of emails and issues reviewed, and the code commits "
    "(Jan-Sep 2017)",
    ("Emails", "Issues", "Commits"),
    [
        ("ArangoDB", (140, 466, 5264)),
        ("Cayley", (50, 57, 151)),
        ("DGraph", (175, 558, 760)),
        ("JanusGraph", (225, 308, 411)),
        ("Neo4j", (286, 243, 4467)),
        ("OrientDB", (169, 668, 918)),
        ("Apache Jena", (307, 126, 471)),
        ("Sparksee", (8, None, None)),
        ("Virtuoso", (72, 61, 179)),
        ("Apache Flink (Gelly)", (34, 68, 48)),
        ("Apache Giraph", (19, 34, 23)),
        ("Apache Spark (GraphX)", (23, 28, 11)),
        ("Gremlin", (409, 206, 1285)),
        ("Graph for Scala", (10, 12, 18)),
        ("GraphStream", (18, 26, 7)),
        ("Graphtool", (121, 66, 172)),
        ("NetworKit", (37, 30, 236)),
        ("NetworkX", (78, 148, 171)),
        ("SNAP", (57, 17, 34)),
        ("Cytoscape", (388, 264, 8)),
        ("Elasticsearch (X-Pack Graph)", (50, 38, None)),
        ("Gephi", (None, 147, 10)),
        ("Graphviz", (None, 58, 277)),
        ("Conceptual Graphs", (30, None, None)),
    ],
)

#: Every published table keyed by its id.
ALL_TABLES: dict[str, Table] = {
    table.table_id: table
    for table in (
        TABLE_1, TABLE_2, TABLE_3, TABLE_4, TABLE_5A, TABLE_5B, TABLE_5C,
        TABLE_6, TABLE_7A, TABLE_7B, TABLE_7C, TABLE_8, TABLE_9, TABLE_10A,
        TABLE_10B, TABLE_11, TABLE_12, TABLE_13, TABLE_14, TABLE_15,
        TABLE_16, TABLE_17, TABLE_18A, TABLE_18B, TABLE_19, TABLE_20,
    )
}


def paper_table(table_id: str) -> Table:
    """Return the published table with the given id (e.g. ``"5b"``)."""
    try:
        return ALL_TABLES[table_id]
    except KeyError:
        raise KeyError(
            f"unknown table id {table_id!r}; known: {sorted(ALL_TABLES)}"
        ) from None
