"""A uniform in-memory model for the paper's tables.

Both the published ground truth (:mod:`repro.data.paper_tables`) and every
reproduction function (:mod:`repro.core.tables`) produce :class:`Table`
objects, so comparisons and rendering work identically for either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Table:
    """One table: ordered rows of labelled counts.

    Attributes:
        table_id: identifier matching the paper, e.g. ``"5b"`` or ``"19"``.
        title: the paper's caption (possibly shortened).
        columns: ordered column names, e.g. ``("Total", "R", "P")``.
        rows: mapping from row label to a mapping column -> count.
            ``None`` marks a cell the paper reports as ``NA``.
    """

    table_id: str
    title: str
    columns: tuple[str, ...]
    rows: dict[str, dict[str, int | None]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, cells in self.rows.items():
            unknown = set(cells) - set(self.columns)
            if unknown:
                raise ValueError(
                    f"table {self.table_id} row {label!r} has cells for "
                    f"unknown columns {sorted(unknown)}"
                )

    def cell(self, row: str, column: str) -> int | None:
        """Return one cell; missing cells read as ``None``."""
        return self.rows[row].get(column)

    def column(self, column: str) -> dict[str, int | None]:
        """Return one column as ``{row_label: value}`` in row order."""
        if column not in self.columns:
            raise KeyError(f"table {self.table_id} has no column {column!r}")
        return {label: cells.get(column) for label, cells in self.rows.items()}

    def row_labels(self) -> tuple[str, ...]:
        return tuple(self.rows)

    def totals(self) -> dict[str, int]:
        """Sum each column over rows, skipping ``None`` cells."""
        sums: dict[str, int] = {name: 0 for name in self.columns}
        for cells in self.rows.values():
            for name in self.columns:
                value = cells.get(name)
                if value is not None:
                    sums[name] += value
        return sums


def table_from_rows(
    table_id: str,
    title: str,
    columns: tuple[str, ...],
    row_items: list[tuple[str, tuple[int | None, ...]]],
) -> Table:
    """Build a :class:`Table` from ``(label, values)`` pairs.

    ``values`` must align positionally with ``columns``.
    """
    rows: dict[str, dict[str, int | None]] = {}
    for label, values in row_items:
        if len(values) != len(columns):
            raise ValueError(
                f"table {table_id} row {label!r}: expected {len(columns)} "
                f"values, got {len(values)}"
            )
        rows[label] = dict(zip(columns, values))
    return Table(table_id=table_id, title=title, columns=columns, rows=rows)
