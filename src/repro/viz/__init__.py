"""Graph visualization: the Section 6.1/6.2 challenge areas made
executable -- layouts (hierarchical, tree/phylogenetic, star, circular,
force-directed), customizable SVG styling, dynamic-graph animation, and
large-graph rendering via sampling and community coarsening."""

from repro.viz.dynamic_viz import (
    Frame,
    animate_snapshots,
    animate_versions,
    frames_to_html,
    union_graph,
)
from repro.viz.largegraph import (
    CoarseGraph,
    coarsen,
    render_large,
    sample_subgraph,
)
from repro.viz.layouts import (
    bounding_box,
    circular_layout,
    force_directed_layout,
    grid_layout,
    hierarchical_layout,
    normalize_layout,
    radial_tree_layout,
    random_layout,
    shell_layout,
    star_layout,
    tree_layout,
)
from repro.viz.style import (
    PALETTE,
    EdgeStyle,
    StyleSheet,
    VertexStyle,
    color_by_category,
    size_by_score,
    width_by_weight,
)
from repro.viz.svg import render_svg, save_svg
