"""Graph layouts (the Section 6.2 "Layout" challenge).

Users asked for hierarchical drawings, tree layouts (phylogenetic-style),
star and planar-ish arrangements. Provided here:

* :func:`force_directed_layout` -- Fruchterman-Reingold with cooling.
* :func:`hierarchical_layout` -- layered drawing: layers by longest-path
  rank, barycenter ordering to reduce crossings.
* :func:`circular_layout` / :func:`shell_layout` -- ring arrangements.
* :func:`tree_layout` -- tidy rooted tree (children centered under
  parents); :func:`radial_tree_layout` -- the phylogenetic-style variant.
* :func:`grid_layout` -- deterministic fallback for huge graphs.

All return ``{vertex: (x, y)}`` in abstract coordinates; the SVG renderer
rescales to the canvas.
"""

from __future__ import annotations

import math
import random
from collections import deque

from repro.graphs.adjacency import Vertex

Position = tuple[float, float]
Layout = dict[Vertex, Position]


def circular_layout(graph) -> Layout:
    """Vertices evenly spaced on a unit circle, in iteration order."""
    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        return {}
    return {
        v: (math.cos(2 * math.pi * i / n), math.sin(2 * math.pi * i / n))
        for i, v in enumerate(vertices)
    }


def shell_layout(graph, shells: list[list[Vertex]]) -> Layout:
    """Concentric rings; shell 0 is innermost (radius grows outward)."""
    layout: Layout = {}
    for index, shell in enumerate(shells):
        radius = index + 1
        n = max(1, len(shell))
        for i, vertex in enumerate(shell):
            angle = 2 * math.pi * i / n
            layout[vertex] = (radius * math.cos(angle),
                              radius * math.sin(angle))
    return layout


def grid_layout(graph) -> Layout:
    """Simple row-major grid; O(n), used for very large graphs."""
    vertices = list(graph.vertices())
    if not vertices:
        return {}
    side = math.ceil(math.sqrt(len(vertices)))
    return {
        v: (float(i % side), float(i // side))
        for i, v in enumerate(vertices)
    }


def random_layout(graph, seed: int = 0) -> Layout:
    rng = random.Random(seed)
    return {v: (rng.random(), rng.random()) for v in graph.vertices()}


def force_directed_layout(
    graph,
    iterations: int = 50,
    seed: int = 0,
    k: float | None = None,
) -> Layout:
    """Fruchterman-Reingold force-directed placement.

    ``k`` is the ideal edge length (defaults to ``1/sqrt(n)`` in unit
    space). Linear-time repulsion approximation is deliberately not used;
    for big graphs pair this with :mod:`repro.viz.largegraph` coarsening.
    """
    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        return {}
    if n == 1:
        return {vertices[0]: (0.5, 0.5)}
    rng = random.Random(seed)
    positions = {v: [rng.random(), rng.random()] for v in vertices}
    ideal = k or 1.0 / math.sqrt(n)
    temperature = 0.1
    cooling = temperature / (iterations + 1)

    edges = [(e.u, e.v) for e in graph.edges() if e.u != e.v]
    for _ in range(iterations):
        displacement = {v: [0.0, 0.0] for v in vertices}
        # Repulsion between every pair.
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                dx = positions[u][0] - positions[v][0]
                dy = positions[u][1] - positions[v][1]
                distance = math.hypot(dx, dy) or 1e-9
                force = ideal * ideal / distance
                fx, fy = force * dx / distance, force * dy / distance
                displacement[u][0] += fx
                displacement[u][1] += fy
                displacement[v][0] -= fx
                displacement[v][1] -= fy
        # Attraction along edges.
        for u, v in edges:
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            distance = math.hypot(dx, dy) or 1e-9
            force = distance * distance / ideal
            fx, fy = force * dx / distance, force * dy / distance
            displacement[u][0] -= fx
            displacement[u][1] -= fy
            displacement[v][0] += fx
            displacement[v][1] += fy
        # Apply, capped by temperature.
        for v in vertices:
            dx, dy = displacement[v]
            distance = math.hypot(dx, dy)
            if distance > 0:
                scale = min(distance, temperature) / distance
                positions[v][0] += dx * scale
                positions[v][1] += dy * scale
        temperature = max(temperature - cooling, 1e-4)
    return {v: (p[0], p[1]) for v, p in positions.items()}


def hierarchical_layout(graph, root: Vertex | None = None) -> Layout:
    """Layered (Sugiyama-style) drawing for DAG-ish directed graphs.

    Ranks are longest-path layers (cycle edges are ignored for ranking);
    within each layer vertices are ordered by the barycenter of their
    neighbors in the previous layer to reduce crossings. y grows downward
    with rank, matching the "managers above reports" request.
    """
    ranks = _layer_ranks(graph, root)
    layers: dict[int, list[Vertex]] = {}
    for vertex, rank in ranks.items():
        layers.setdefault(rank, []).append(vertex)
    order: dict[Vertex, float] = {}
    for rank in sorted(layers):
        layer = layers[rank]
        if rank == min(layers):
            layer.sort(key=repr)
        else:
            def barycenter(v: Vertex) -> float:
                previous = [order[w] for w in graph.in_neighbors(v)
                            if ranks.get(w) == rank - 1 and w in order]
                previous += [order[w] for w in graph.out_neighbors(v)
                             if ranks.get(w) == rank - 1 and w in order]
                return (sum(previous) / len(previous)) if previous else 0.0

            layer.sort(key=lambda v: (barycenter(v), repr(v)))
        for i, vertex in enumerate(layer):
            order[vertex] = float(i)
    layout: Layout = {}
    for rank, layer in layers.items():
        width = max(1, len(layer) - 1)
        for i, vertex in enumerate(layer):
            x = i / width if width else 0.5
            layout[vertex] = (x, float(rank))
    return layout


def _layer_ranks(graph, root: Vertex | None) -> dict[Vertex, int]:
    if not graph.directed:
        start = root if root is not None else _any_vertex(graph)
        if start is None:
            return {}
        ranks = {}
        queue = deque([(start, 0)])
        ranks[start] = 0
        while queue:
            vertex, rank = queue.popleft()
            for neighbor in graph.neighbors(vertex):
                if neighbor not in ranks:
                    ranks[neighbor] = rank + 1
                    queue.append((neighbor, rank + 1))
        for vertex in graph.vertices():
            ranks.setdefault(vertex, 0)
        return ranks
    # Longest path layering over the DAG part of the graph.
    from repro.algorithms.components import strongly_connected_components

    sccs = strongly_connected_components(graph)
    component_of = {}
    for i, component in enumerate(sccs):
        for vertex in component:
            component_of[vertex] = i
    ranks = {v: 0 for v in graph.vertices()}
    changed = True
    guard = 0
    while changed and guard <= len(ranks) + 1:
        changed = False
        guard += 1
        for edge in graph.edges():
            if component_of[edge.u] == component_of[edge.v]:
                continue  # ignore cycle edges
            if ranks[edge.v] < ranks[edge.u] + 1:
                ranks[edge.v] = ranks[edge.u] + 1
                changed = True
    return ranks


def _any_vertex(graph):
    for vertex in graph.vertices():
        return vertex
    return None


def tree_layout(graph, root: Vertex) -> Layout:
    """Tidy rooted tree: leaves get consecutive x slots, parents center
    over their children, depth is y. Follows out-edges from the root."""
    positions: Layout = {}
    next_slot = [0.0]

    children = {}
    seen = {root}
    order = [root]
    queue = deque([root])
    while queue:
        vertex = queue.popleft()
        kids = [w for w in graph.out_neighbors(vertex) if w not in seen]
        children[vertex] = kids
        for kid in kids:
            seen.add(kid)
            queue.append(kid)
        order.extend(kids)

    def place(vertex: Vertex, depth: int) -> float:
        kids = children.get(vertex, [])
        if not kids:
            x = next_slot[0]
            next_slot[0] += 1.0
        else:
            xs = [place(kid, depth + 1) for kid in kids]
            x = sum(xs) / len(xs)
        positions[vertex] = (x, float(depth))
        return x

    place(root, 0)
    return positions


def radial_tree_layout(graph, root: Vertex) -> Layout:
    """Phylogenetic-style radial tree: depth becomes radius, the leaf
    ordering becomes the angle."""
    tidy = tree_layout(graph, root)
    if not tidy:
        return {}
    max_x = max(x for x, _ in tidy.values()) or 1.0
    layout: Layout = {}
    for vertex, (x, depth) in tidy.items():
        angle = 2 * math.pi * x / (max_x + 1.0)
        layout[vertex] = (depth * math.cos(angle), depth * math.sin(angle))
    return layout


def star_layout(graph, hub: Vertex) -> Layout:
    """The hub at the origin, every other vertex on a surrounding ring
    (the Section 6.2 star-graph request)."""
    others = [v for v in graph.vertices() if v != hub]
    layout: Layout = {hub: (0.0, 0.0)}
    n = max(1, len(others))
    for i, vertex in enumerate(others):
        angle = 2 * math.pi * i / n
        layout[vertex] = (math.cos(angle), math.sin(angle))
    return layout


def bounding_box(layout: Layout) -> tuple[float, float, float, float]:
    """(min_x, min_y, max_x, max_y) of a layout."""
    if not layout:
        return (0.0, 0.0, 1.0, 1.0)
    xs = [p[0] for p in layout.values()]
    ys = [p[1] for p in layout.values()]
    return (min(xs), min(ys), max(xs), max(ys))


def normalize_layout(layout: Layout) -> Layout:
    """Rescale into the unit square (degenerate axes center at 0.5)."""
    min_x, min_y, max_x, max_y = bounding_box(layout)
    span_x = max_x - min_x
    span_y = max_y - min_y
    result: Layout = {}
    for vertex, (x, y) in layout.items():
        nx = (x - min_x) / span_x if span_x else 0.5
        ny = (y - min_y) / span_y if span_y else 0.5
        result[vertex] = (nx, ny)
    return result
