"""Dynamic-graph visualization (the Section 6.2 request for "animating
the additions, deletions, and updates in a dynamic graph").

Turns a :class:`~repro.graphs.dynamic.VersionedGraph` or an explicit
snapshot sequence into animation frames: per-frame SVG with added elements
highlighted and removed elements ghosted, plus stable per-vertex positions
across frames (laid out once on the union graph so vertices do not jump).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graphs.adjacency import Graph
from repro.graphs.dynamic import VersionedGraph
from repro.viz.layouts import Layout, force_directed_layout
from repro.viz.style import EdgeStyle, StyleSheet, VertexStyle
from repro.viz.svg import render_svg

HIGHLIGHT = "#2e7d32"   # newly added
GHOST = "#cccccc"       # just removed


@dataclass(frozen=True)
class Frame:
    """One animation step."""

    index: int
    svg: str
    added_vertices: frozenset
    removed_vertices: frozenset
    added_edges: frozenset
    removed_edges: frozenset


def union_graph(snapshots: list[Graph]) -> Graph:
    """All vertices/edges ever seen, for one stable layout."""
    if not snapshots:
        return Graph(directed=False)
    union = Graph(directed=snapshots[0].directed, multigraph=False)
    for snapshot in snapshots:
        for vertex in snapshot.vertices():
            union.add_vertex(vertex)
        for edge in snapshot.edges():
            if not union.has_edge(edge.u, edge.v):
                union.add_edge(edge.u, edge.v)
    return union


def animate_snapshots(
    snapshots: list[Graph],
    layout: Layout | None = None,
    width: int = 480,
    height: int = 360,
    seed: int = 0,
) -> list[Frame]:
    """Render each snapshot with additions highlighted and removals
    ghosted relative to the previous snapshot."""
    if not snapshots:
        return []
    stable_layout = layout or force_directed_layout(
        union_graph(snapshots), seed=seed)
    frames: list[Frame] = []
    previous_vertices: set = set()
    previous_edges: set = set()
    for index, snapshot in enumerate(snapshots):
        vertices = set(snapshot.vertices())
        edges = {(e.u, e.v) for e in snapshot.edges()}
        added_v = frozenset(vertices - previous_vertices)
        removed_v = frozenset(previous_vertices - vertices)
        added_e = frozenset(edges - previous_edges)
        removed_e = frozenset(previous_edges - edges)

        stylesheet = StyleSheet()
        stylesheet.style_vertices(
            lambda v, added=added_v: replace(
                VertexStyle(), fill=HIGHLIGHT) if v in added else None)
        stylesheet.style_edges(
            lambda e, added=added_e: replace(
                EdgeStyle(), stroke=HIGHLIGHT, width=2.0)
            if (e.u, e.v) in added else None)

        display = _with_ghosts(snapshot, removed_v, removed_e)
        stylesheet.style_vertices(
            lambda v, ghosts=removed_v: replace(
                VertexStyle(), fill=GHOST, stroke=GHOST)
            if v in ghosts else None)
        stylesheet.style_edges(
            lambda e, ghosts=removed_e: replace(
                EdgeStyle(), stroke=GHOST, dashed=True)
            if (e.u, e.v) in ghosts else None)

        svg = render_svg(display, stable_layout, stylesheet,
                         width=width, height=height)
        frames.append(Frame(
            index=index, svg=svg,
            added_vertices=added_v, removed_vertices=removed_v,
            added_edges=added_e, removed_edges=removed_e))
        previous_vertices, previous_edges = vertices, edges
    return frames


def _with_ghosts(snapshot: Graph, removed_vertices, removed_edges) -> Graph:
    """The snapshot plus ghosted remnants of what just disappeared."""
    display = Graph(directed=snapshot.directed, multigraph=True)
    for vertex in snapshot.vertices():
        display.add_vertex(vertex)
    for edge in snapshot.edges():
        display.add_edge(edge.u, edge.v, weight=edge.weight)
    for vertex in removed_vertices:
        display.add_vertex(vertex)
    for u, v in removed_edges:
        display.add_vertex(u)
        display.add_vertex(v)
        display.add_edge(u, v)
    return display


def animate_versions(
    versioned: VersionedGraph,
    width: int = 480,
    height: int = 360,
    seed: int = 0,
) -> list[Frame]:
    """Animate every committed version of a versioned graph."""
    snapshots = [
        versioned.snapshot(version.version_id)
        for version in versioned.versions()
    ]
    return animate_snapshots(snapshots, width=width, height=height,
                             seed=seed)


def frames_to_html(frames: list[Frame], interval_ms: int = 800) -> str:
    """A self-contained HTML page that cycles through the frames."""
    blocks = "\n".join(
        f'<div class="frame" style="display:none">{frame.svg}</div>'
        for frame in frames)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>dynamic graph</title></head>
<body>
{blocks}
<script>
const frames = document.querySelectorAll('.frame');
let index = 0;
function tick() {{
  frames.forEach((el, i) => el.style.display = i === index ? '' : 'none');
  index = (index + 1) % frames.length;
}}
if (frames.length) {{ tick(); setInterval(tick, {interval_ms}); }}
</script>
</body></html>"""
