"""Large-graph visualization (the Section 6.2 challenge: "users also have
challenges in rendering large graphs with thousands or even millions of
vertices and edges").

Two standard reductions before layout:

* :func:`sample_subgraph` -- keep a bounded, connected, representative
  sample (BFS ball around high-degree anchors).
* :func:`coarsen` -- community-based coarsening: collapse each community
  to one super-vertex sized by membership, with inter-community edge
  weights aggregated.

:func:`render_large` wires reduction -> layout -> SVG.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, replace

from repro.graphs.adjacency import Graph, Vertex
from repro.viz.layouts import force_directed_layout, grid_layout
from repro.viz.style import StyleSheet, VertexStyle, width_by_weight
from repro.viz.svg import render_svg


def sample_subgraph(
    graph,
    max_vertices: int,
    seed: int = 0,
) -> Graph:
    """A connected-ish sample: BFS balls grown around the highest-degree
    anchors until the budget is filled."""
    if max_vertices < 1:
        raise ValueError("max_vertices must be >= 1")
    vertices = list(graph.vertices())
    if len(vertices) <= max_vertices:
        return _induced(graph, set(vertices))
    rng = random.Random(seed)
    anchors = sorted(vertices, key=lambda v: (-graph.degree(v), repr(v)))
    keep: set[Vertex] = set()
    anchor_index = 0
    while len(keep) < max_vertices and anchor_index < len(anchors):
        anchor = anchors[anchor_index]
        anchor_index += 1
        if anchor in keep:
            continue
        queue = deque([anchor])
        keep.add(anchor)
        while queue and len(keep) < max_vertices:
            vertex = queue.popleft()
            neighbors = list(graph.neighbors(vertex))
            rng.shuffle(neighbors)
            for neighbor in neighbors:
                if len(keep) >= max_vertices:
                    break
                if neighbor not in keep:
                    keep.add(neighbor)
                    queue.append(neighbor)
    return _induced(graph, keep)


def _induced(graph, keep: set[Vertex]) -> Graph:
    sample = Graph(directed=graph.directed, multigraph=False)
    for vertex in keep:
        sample.add_vertex(vertex)
    for edge in graph.edges():
        if (edge.u in keep and edge.v in keep
                and not sample.has_edge(edge.u, edge.v)):
            sample.add_edge(edge.u, edge.v, weight=edge.weight)
    return sample


@dataclass(frozen=True)
class CoarseGraph:
    """A coarsened graph plus the mapping back to original vertices."""

    graph: Graph                      # super-vertex graph, weighted
    members: dict[int, frozenset]     # super-vertex -> original vertices

    def size_of(self, super_vertex: int) -> int:
        return len(self.members[super_vertex])


def coarsen(graph, seed: int = 0,
            communities: dict[Vertex, int] | None = None) -> CoarseGraph:
    """Collapse communities into super-vertices.

    Communities default to Louvain. Inter-community multiplicities become
    edge weights; intra-community edges disappear.
    """
    if communities is None:
        from repro.ml.community import louvain

        communities = louvain(graph, seed=seed)
    members: dict[int, set[Vertex]] = {}
    for vertex, community in communities.items():
        members.setdefault(community, set()).add(vertex)
    coarse = Graph(directed=False, multigraph=False)
    coarse.add_vertices(members.keys())
    weights: dict[tuple[int, int], float] = {}
    for edge in graph.edges():
        cu = communities[edge.u]
        cv = communities[edge.v]
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        weights[key] = weights.get(key, 0.0) + edge.weight
    for (cu, cv), weight in sorted(weights.items()):
        coarse.add_edge(cu, cv, weight=weight)
    return CoarseGraph(
        graph=coarse,
        members={c: frozenset(vs) for c, vs in members.items()})


def render_large(
    graph,
    max_vertices: int = 300,
    mode: str = "auto",
    width: int = 640,
    height: int = 480,
    seed: int = 0,
) -> str:
    """Render a graph of any size to SVG.

    Modes: ``full`` (layout everything; falls back to a grid layout past
    5000 vertices), ``sample``, ``coarsen``, or ``auto`` (full when small,
    coarsen otherwise).
    """
    n = graph.num_vertices()
    if mode == "auto":
        mode = "full" if n <= max_vertices else "coarsen"
    if mode == "full":
        layout = (force_directed_layout(graph, seed=seed)
                  if n <= 5000 else grid_layout(graph))
        return render_svg(graph, layout, width=width, height=height)
    if mode == "sample":
        sample = sample_subgraph(graph, max_vertices, seed=seed)
        layout = force_directed_layout(sample, seed=seed)
        return render_svg(sample, layout, width=width, height=height)
    if mode == "coarsen":
        coarse = coarsen(graph, seed=seed)
        layout = force_directed_layout(coarse.graph, seed=seed)
        largest = max(
            (coarse.size_of(c) for c in coarse.members), default=1)
        stylesheet = StyleSheet()
        stylesheet.style_vertices(
            lambda c: replace(
                VertexStyle(),
                radius=4.0 + 12.0 * coarse.size_of(c) / largest,
                label=str(coarse.size_of(c))))
        stylesheet.style_edges(width_by_weight(scale=0.5))
        return render_svg(coarse.graph, layout, stylesheet,
                          width=width, height=height)
    raise ValueError(
        f"unknown mode {mode!r}; choose auto, full, sample, or coarsen")
