"""SVG rendering of laid-out graphs.

Produces standalone SVG documents from a graph, a layout, and an optional
:class:`~repro.viz.style.StyleSheet`. Pure string generation -- no
external dependencies -- so rendering works anywhere and is testable by
parsing the output.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape, quoteattr

from repro.viz.layouts import Layout, normalize_layout
from repro.viz.style import EdgeStyle, StyleSheet, VertexStyle


def render_svg(
    graph,
    layout: Layout,
    stylesheet: StyleSheet | None = None,
    width: int = 640,
    height: int = 480,
    margin: int = 24,
    background: str = "#ffffff",
) -> str:
    """Render a graph to an SVG string.

    The layout is normalized to the canvas; vertices missing from the
    layout are skipped along with their edges.
    """
    stylesheet = stylesheet or StyleSheet()
    normalized = normalize_layout(
        {v: layout[v] for v in graph.vertices() if v in layout})

    def canvas(position):
        x, y = position
        return (margin + x * (width - 2 * margin),
                margin + y * (height - 2 * margin))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill={_q(background)}/>',
        "<g data-layer=\"edges\">",
    ]
    for edge in graph.edges():
        if edge.u not in normalized or edge.v not in normalized:
            continue
        style = stylesheet.edge_style(edge)
        x1, y1 = canvas(normalized[edge.u])
        x2, y2 = canvas(normalized[edge.v])
        parts.append(_edge_svg(x1, y1, x2, y2, style,
                               arrow=style.arrow or graph.directed))
    parts.append("</g>")
    parts.append("<g data-layer=\"vertices\">")
    for vertex in graph.vertices():
        if vertex not in normalized:
            continue
        style = stylesheet.vertex_style(vertex)
        x, y = canvas(normalized[vertex])
        parts.append(_vertex_svg(x, y, style))
        label = style.label if style.label is not None else None
        if label:
            parts.append(
                f'<text x="{x:.1f}" y="{y - style.radius - 2:.1f}" '
                f'font-size="{style.label_size}" text-anchor="middle" '
                f'fill={_q(style.label_color)}>{escape(label)}</text>')
    parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def _q(value: str) -> str:
    return quoteattr(value)


def _vertex_svg(x: float, y: float, style: VertexStyle) -> str:
    r = style.radius
    common = (f'fill={_q(style.fill)} stroke={_q(style.stroke)} '
              f'stroke-width="1"')
    if style.shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" {common}/>'
    if style.shape == "square":
        return (f'<rect x="{x - r:.1f}" y="{y - r:.1f}" width="{2 * r:.1f}" '
                f'height="{2 * r:.1f}" {common}/>')
    if style.shape == "diamond":
        points = f"{x},{y - r} {x + r},{y} {x},{y + r} {x - r},{y}"
        return f'<polygon points="{points}" {common}/>'
    # triangle
    points = (f"{x},{y - r} {x + r * 0.87},{y + r / 2} "
              f"{x - r * 0.87},{y + r / 2}")
    return f'<polygon points="{points}" {common}/>'


def _edge_svg(x1: float, y1: float, x2: float, y2: float,
              style: EdgeStyle, arrow: bool) -> str:
    dash = ' stroke-dasharray="4 3"' if style.dashed else ""
    line = (f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke={_q(style.stroke)} stroke-width="{style.width}"{dash}/>')
    if not arrow:
        return line
    return line + _arrow_head(x1, y1, x2, y2, style)


def _arrow_head(x1, y1, x2, y2, style: EdgeStyle) -> str:
    angle = math.atan2(y2 - y1, x2 - x1)
    size = 4.0 + style.width
    tip_x, tip_y = x2, y2
    left = (tip_x - size * math.cos(angle - 0.45),
            tip_y - size * math.sin(angle - 0.45))
    right = (tip_x - size * math.cos(angle + 0.45),
             tip_y - size * math.sin(angle + 0.45))
    points = (f"{tip_x:.1f},{tip_y:.1f} {left[0]:.1f},{left[1]:.1f} "
              f"{right[0]:.1f},{right[1]:.1f}")
    return f'<polygon points="{points}" fill={_q(style.stroke)}/>'


def save_svg(path: str, svg: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
