"""Customizable rendering styles (the Section 6.2 "Customizability"
challenge: shape/color of vertices and edges, label styling).

A :class:`StyleSheet` maps vertices and edges to :class:`VertexStyle` /
:class:`EdgeStyle` via user rules, with sensible defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.graphs.adjacency import Edge, Vertex

SHAPES = ("circle", "square", "diamond", "triangle")


@dataclass(frozen=True)
class VertexStyle:
    fill: str = "#4878a8"
    stroke: str = "#2c4a68"
    radius: float = 6.0
    shape: str = "circle"
    label: str | None = None
    label_size: float = 9.0
    label_color: str = "#222222"

    def __post_init__(self):
        if self.shape not in SHAPES:
            raise ValueError(
                f"unknown shape {self.shape!r}; choose from {SHAPES}")
        if self.radius <= 0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class EdgeStyle:
    stroke: str = "#999999"
    width: float = 1.0
    dashed: bool = False
    arrow: bool = False

    def __post_init__(self):
        if self.width <= 0:
            raise ValueError("width must be positive")


VertexRule = Callable[[Vertex], VertexStyle | None]
EdgeRule = Callable[[Edge], EdgeStyle | None]


@dataclass
class StyleSheet:
    """Ordered style rules; the first rule returning a style wins."""

    default_vertex: VertexStyle = field(default_factory=VertexStyle)
    default_edge: EdgeStyle = field(default_factory=EdgeStyle)
    _vertex_rules: list[VertexRule] = field(default_factory=list)
    _edge_rules: list[EdgeRule] = field(default_factory=list)

    def style_vertices(self, rule: VertexRule) -> "StyleSheet":
        self._vertex_rules.append(rule)
        return self

    def style_edges(self, rule: EdgeRule) -> "StyleSheet":
        self._edge_rules.append(rule)
        return self

    def vertex_style(self, vertex: Vertex) -> VertexStyle:
        for rule in self._vertex_rules:
            style = rule(vertex)
            if style is not None:
                return style
        return self.default_vertex

    def edge_style(self, edge: Edge) -> EdgeStyle:
        for rule in self._edge_rules:
            style = rule(edge)
            if style is not None:
                return style
        return self.default_edge


#: A small categorical palette for color-by-community rendering.
PALETTE = (
    "#4878a8", "#e49444", "#d1615d", "#85b6b2", "#6a9f58",
    "#e7ca60", "#a87c9f", "#f1a2a9", "#967662", "#b8b0ac",
)


def color_by_category(category_of: Callable[[Vertex], int],
                      base: VertexStyle | None = None) -> VertexRule:
    """A rule assigning palette colors by an integer category (e.g. the
    community ids from :func:`repro.ml.community.louvain`)."""
    base = base or VertexStyle()

    def rule(vertex: Vertex) -> VertexStyle:
        color = PALETTE[category_of(vertex) % len(PALETTE)]
        return replace(base, fill=color)

    return rule


def size_by_score(score_of: Callable[[Vertex], float],
                  min_radius: float = 3.0,
                  max_radius: float = 14.0,
                  max_score: float = 1.0,
                  base: VertexStyle | None = None) -> VertexRule:
    """A rule scaling vertex radius by a score (e.g. PageRank)."""
    base = base or VertexStyle()
    span = max_radius - min_radius

    def rule(vertex: Vertex) -> VertexStyle:
        fraction = min(1.0, max(0.0, score_of(vertex) / max_score))
        return replace(base, radius=min_radius + span * fraction)

    return rule


def width_by_weight(scale: float = 1.0,
                    base: EdgeStyle | None = None) -> EdgeRule:
    """A rule drawing heavier edges thicker."""
    base = base or EdgeStyle()

    def rule(edge: Edge) -> EdgeStyle:
        return replace(base, width=max(0.5, edge.weight * scale))

    return rule
