"""Classic random graphs: G(n, p) and G(n, m).

These are the baseline synthetic workloads used throughout the benchmark
harness; see :mod:`repro.generators.powerlaw` and
:mod:`repro.generators.rmat` for the skewed-degree generators users
requested in Section 6.2.
"""

from __future__ import annotations

import random

from repro.graphs.adjacency import Graph


def gnp_random_graph(
    n: int,
    p: float,
    directed: bool = False,
    seed: int = 0,
) -> Graph:
    """Erdős–Rényi G(n, p): every possible edge appears independently.

    Uses geometric skipping, so sparse graphs cost O(n + m) rather than
    O(n^2).
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(directed=directed, multigraph=False)
    graph.add_vertices(range(n))
    if p == 0 or n < 2:
        return graph
    if p == 1:
        for u in range(n):
            for v in range(n) if directed else range(u + 1, n):
                if u != v:
                    graph.add_edge(u, v)
        return graph
    import math

    log_q = math.log(1.0 - p)

    def skip() -> int:
        return int(math.log(1.0 - rng.random()) / log_q)

    if directed:
        position = -1
        total = n * (n - 1)
        position += 1 + skip()
        while position < total:
            u, v = divmod(position, n - 1)
            if v >= u:
                v += 1
            graph.add_edge(u, v)
            position += 1 + skip()
    else:
        position = -1
        total = n * (n - 1) // 2
        position += 1 + skip()
        while position < total:
            u, v = _pair_from_index(position, n)
            graph.add_edge(u, v)
            position += 1 + skip()
    return graph


def _pair_from_index(index: int, n: int) -> tuple[int, int]:
    """The index-th pair (u < v) in lexicographic order."""
    u = 0
    remaining = index
    row = n - 1
    while remaining >= row:
        remaining -= row
        u += 1
        row -= 1
    return u, u + 1 + remaining


def gnm_random_graph(
    n: int,
    m: int,
    directed: bool = False,
    seed: int = 0,
) -> Graph:
    """G(n, m): exactly m distinct edges chosen uniformly."""
    if n < 0 or m < 0:
        raise ValueError("n and m must be >= 0")
    max_edges = n * (n - 1) if directed else n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges}")
    rng = random.Random(seed)
    graph = Graph(directed=directed, multigraph=False)
    graph.add_vertices(range(n))
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if not directed and u > v:
            u, v = v, u
        if (u, v) in chosen:
            continue
        chosen.add((u, v))
        graph.add_edge(u, v)
    return graph
