"""Power-law / scale-free generators.

Section 6.2 records a concrete user request: "a common request was the
ability to generate different kinds of synthetic graphs, such as k-regular
graphs or random *directed power-law* graphs". This module provides:

* :func:`barabasi_albert` -- preferential attachment.
* :func:`powerlaw_configuration` -- configuration model on a sampled
  power-law degree sequence (undirected).
* :func:`directed_powerlaw` -- the requested random directed power-law
  graph with independently skewed in- and out-degree sequences.
"""

from __future__ import annotations

import random

from repro.graphs.adjacency import Graph


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment: each new vertex attaches
    to ``m`` existing vertices with probability proportional to degree."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < m + 1:
        raise ValueError("n must be at least m + 1")
    rng = random.Random(seed)
    graph = Graph(directed=False, multigraph=False)
    graph.add_vertices(range(n))
    # Endpoint multiset: choosing uniformly from it realizes
    # degree-proportional (preferential) attachment.
    repeated: list[int] = []
    for new_vertex in range(m, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            if repeated:
                candidate = rng.choice(repeated)
            else:
                candidate = rng.randrange(new_vertex)
            chosen.add(candidate)
        for target in chosen:
            graph.add_edge(new_vertex, target)
            repeated.extend((new_vertex, target))
    return graph


def sample_powerlaw_degrees(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: int = 0,
) -> list[int]:
    """Sample a degree sequence from a discrete power law via inverse
    transform; the sum is made even by bumping one vertex."""
    if exponent <= 1:
        raise ValueError("exponent must be > 1")
    rng = random.Random(seed)
    max_degree = max_degree or max(min_degree, int(n ** 0.5) * 2)
    weights = [k ** (-exponent) for k in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    degrees = []
    for _ in range(n):
        r = rng.random()
        for offset, threshold in enumerate(cumulative):
            if r <= threshold:
                degrees.append(min_degree + offset)
                break
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    return degrees


def powerlaw_configuration(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    seed: int = 0,
) -> Graph:
    """Configuration model over a power-law degree sequence.

    Self-loops and duplicate pairings are discarded (erased configuration
    model), so realized degrees approximate the sampled sequence.
    """
    rng = random.Random(seed)
    degrees = sample_powerlaw_degrees(n, exponent, min_degree, seed=seed)
    stubs: list[int] = []
    for vertex, degree in enumerate(degrees):
        stubs.extend([vertex] * degree)
    rng.shuffle(stubs)
    graph = Graph(directed=False, multigraph=False)
    graph.add_vertices(range(n))
    seen: set[tuple[int, int]] = set()
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(u, v)
    return graph


def directed_powerlaw(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    seed: int = 0,
) -> Graph:
    """Random *directed* power-law graph (the Section 6.2 request).

    In- and out-degree sequences are sampled independently from the same
    power law, trimmed to equal sums, and paired uniformly (erased
    directed configuration model).
    """
    rng = random.Random(seed)
    out_degrees = sample_powerlaw_degrees(n, exponent, min_degree, seed=seed)
    in_degrees = sample_powerlaw_degrees(n, exponent, min_degree,
                                         seed=seed + 1)
    # Trim the heavier sequence until the sums match.
    while sum(out_degrees) > sum(in_degrees):
        index = rng.randrange(n)
        if out_degrees[index] > min_degree:
            out_degrees[index] -= 1
    while sum(in_degrees) > sum(out_degrees):
        index = rng.randrange(n)
        if in_degrees[index] > min_degree:
            in_degrees[index] -= 1
    out_stubs: list[int] = []
    in_stubs: list[int] = []
    for vertex in range(n):
        out_stubs.extend([vertex] * out_degrees[vertex])
        in_stubs.extend([vertex] * in_degrees[vertex])
    rng.shuffle(out_stubs)
    rng.shuffle(in_stubs)
    graph = Graph(directed=True, multigraph=False)
    graph.add_vertices(range(n))
    seen: set[tuple[int, int]] = set()
    for u, v in zip(out_stubs, in_stubs):
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        graph.add_edge(u, v)
    return graph
