"""RMAT / Graph500-style recursive-matrix generator.

The paper's Table 13 notes "Graph 500's graph generator" as the canonical
synthetic generator users know; Graph500's Kronecker generator is RMAT
with parameters (A, B, C, D) = (0.57, 0.19, 0.19, 0.05). Each edge lands
by recursively descending into one of the four adjacency-matrix quadrants
with those probabilities, producing the skewed, community-rich structure
of real web/social graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.csr import CSRGraph

#: The Graph500 reference parameters.
GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)


@dataclass(frozen=True)
class RMATSpec:
    """Parameters of one RMAT instance.

    ``scale`` is log2 of the vertex count; ``edge_factor`` is edges per
    vertex (Graph500 uses 16).
    """

    scale: int
    edge_factor: int = 16
    a: float = GRAPH500_PARAMS[0]
    b: float = GRAPH500_PARAMS[1]
    c: float = GRAPH500_PARAMS[2]
    d: float = GRAPH500_PARAMS[3]

    def __post_init__(self):
        if self.scale < 0:
            raise ValueError("scale must be >= 0")
        if self.edge_factor < 1:
            raise ValueError("edge_factor must be >= 1")
        total = self.a + self.b + self.c + self.d
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"quadrant probabilities sum to {total}, not 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.num_vertices * self.edge_factor


def rmat_edge_list(spec: RMATSpec, seed: int = 0,
                   noise: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
    """Generate RMAT edges as numpy index arrays (may contain duplicates
    and self-loops, as in the Graph500 kernel).

    ``noise`` perturbs the quadrant probabilities per level (the standard
    trick that avoids exactly self-similar artifacts).
    """
    rng = np.random.default_rng(seed)
    m = spec.num_edges
    sources = np.zeros(m, dtype=np.int64)
    targets = np.zeros(m, dtype=np.int64)
    ab = spec.a + spec.b
    a_norm = spec.a / ab if ab else 0.5
    c_norm = spec.c / (spec.c + spec.d) if (spec.c + spec.d) else 0.5
    for level in range(spec.scale):
        bit = 1 << (spec.scale - 1 - level)
        jitter = 1.0 + noise * (rng.random(m) - 0.5)
        ab_level = np.clip(ab * jitter, 0.0, 1.0)
        go_down = rng.random(m) >= ab_level
        sources += np.where(go_down, bit, 0)
        right_prob = np.where(go_down, c_norm, a_norm)
        jitter2 = 1.0 + noise * (rng.random(m) - 0.5)
        go_right = rng.random(m) >= np.clip(right_prob * jitter2, 0.0, 1.0)
        targets += np.where(go_right, bit, 0)
    return sources, targets


def rmat_graph(spec: RMATSpec, seed: int = 0, directed: bool = True,
               simple: bool = True) -> Graph:
    """RMAT as an adjacency :class:`Graph`.

    ``simple`` removes self-loops and duplicate edges (so the final edge
    count lands below ``spec.num_edges``).
    """
    sources, targets = rmat_edge_list(spec, seed=seed)
    graph = Graph(directed=directed, multigraph=not simple)
    graph.add_vertices(range(spec.num_vertices))
    seen: set[tuple[int, int]] = set()
    for u, v in zip(sources.tolist(), targets.tolist()):
        if simple:
            if u == v:
                continue
            key = (u, v) if directed else (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
        graph.add_edge(u, v)
    return graph


def rmat_csr(spec: RMATSpec, seed: int = 0, directed: bool = True,
             ) -> CSRGraph:
    """RMAT directly as a CSR snapshot (fast path for large scales)."""
    sources, targets = rmat_edge_list(spec, seed=seed)
    return CSRGraph.from_edge_array(
        sources, targets, num_vertices=spec.num_vertices, directed=directed)


def degree_skew(graph) -> float:
    """Max degree over mean degree -- the quick skew check used by tests
    to confirm RMAT is heavier-tailed than G(n, m)."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    positive = [d for d in degrees if d > 0]
    if not positive:
        return 0.0
    return max(positive) / (sum(positive) / len(positive))


def graph500_edge_generator(scale: int, seed: int = 0,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """The Graph500 kernel-0 equivalent: scale + edgefactor 16, reference
    probabilities, permuted vertex ids (so vertex id does not leak degree
    rank)."""
    spec = RMATSpec(scale=scale)
    sources, targets = rmat_edge_list(spec, seed=seed)
    rng = np.random.default_rng(seed + 1)
    permutation = rng.permutation(spec.num_vertices)
    return permutation[sources], permutation[targets]
