"""Structured generators: k-regular, ring lattice, Watts-Strogatz, grid.

"k-regular graphs" are an explicit Section 6.2 user request. Watts-
Strogatz covers the small-world regime between the lattice and G(n, p);
grids supply the planar workloads the visualization layouts are tested
on.
"""

from __future__ import annotations

import random

from repro.graphs.adjacency import Graph


def ring_lattice(n: int, k: int) -> Graph:
    """A ring where each vertex connects to its k nearest neighbors
    (k must be even, k < n)."""
    if k % 2 != 0:
        raise ValueError("k must be even")
    if k >= n:
        raise ValueError("k must be smaller than n")
    graph = Graph(directed=False, multigraph=False)
    graph.add_vertices(range(n))
    for vertex in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(vertex, (vertex + offset) % n)
    return graph


def random_regular(n: int, k: int, seed: int = 0,
                   max_attempts: int = 5000) -> Graph:
    """A uniform-ish random k-regular graph by pairing model with
    restarts. Requires n*k even and k < n."""
    if k < 0 or n < 0:
        raise ValueError("n and k must be >= 0")
    if (n * k) % 2 != 0:
        raise ValueError("n * k must be even")
    if k >= n and n > 0:
        raise ValueError("k must be smaller than n")
    rng = random.Random(seed)
    for _ in range(max_attempts):
        stubs = [v for v in range(n) for _ in range(k)]
        rng.shuffle(stubs)
        edges: set[tuple[int, int]] = set()
        ok = True
        for i in range(0, len(stubs) - 1, 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v:
                ok = False
                break
            key = (min(u, v), max(u, v))
            if key in edges:
                ok = False
                break
            edges.add(key)
        if ok:
            graph = Graph(directed=False, multigraph=False)
            graph.add_vertices(range(n))
            for u, v in sorted(edges):
                graph.add_edge(u, v)
            return graph
    raise RuntimeError(
        f"failed to sample a {k}-regular graph on {n} vertices in "
        f"{max_attempts} attempts")


def is_regular(graph, k: int | None = None) -> bool:
    """True iff every vertex has the same degree (optionally exactly k)."""
    degrees = {graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return True
    if len(degrees) != 1:
        return False
    return k is None or degrees == {k}


def watts_strogatz(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """Watts-Strogatz small world: ring lattice with rewiring probability
    p per edge."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    graph = ring_lattice(n, k)
    for edge in list(graph.edges()):
        if rng.random() >= p:
            continue
        u = edge.u
        candidates = [
            w for w in range(n)
            if w != u and not graph.has_edge(u, w)
        ]
        if not candidates:
            continue
        graph.remove_edge(edge.edge_id)
        graph.add_edge(u, rng.choice(candidates))
    return graph


def grid_graph(rows: int, cols: int, diagonal: bool = False) -> Graph:
    """A rows x cols grid; vertices are (row, col) tuples."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    graph = Graph(directed=False, multigraph=False)
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if diagonal and r + 1 < rows and c + 1 < cols:
                graph.add_edge((r, c), (r + 1, c + 1))
    return graph


def star_graph(n: int) -> Graph:
    """A hub (vertex 0) connected to n leaves."""
    graph = Graph(directed=False, multigraph=False)
    graph.add_vertex(0)
    for leaf in range(1, n + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(n: int, directed: bool = False) -> Graph:
    graph = Graph(directed=directed, multigraph=False)
    graph.add_vertices(range(n))
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if directed or u < v:
                graph.add_edge(u, v)
    return graph


def balanced_tree(branching: int, height: int) -> Graph:
    """A rooted tree (directed parent->child) with uniform branching."""
    if branching < 1 or height < 0:
        raise ValueError("branching must be >= 1 and height >= 0")
    graph = Graph(directed=True, multigraph=False)
    graph.add_vertex(0)
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def bipartite_random(
    left: int, right: int, p: float, seed: int = 0,
) -> Graph:
    """Random bipartite graph; left vertices are ("L", i), right ("R", j)."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(directed=False, multigraph=False)
    for i in range(left):
        graph.add_vertex(("L", i))
    for j in range(right):
        graph.add_vertex(("R", j))
    for i in range(left):
        for j in range(right):
            if rng.random() < p:
                graph.add_edge(("L", i), ("R", j))
    return graph
