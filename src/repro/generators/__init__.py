"""Synthetic graph generators (Table 13 "Synthetic Graph Generator" and
the Section 6.2 generator requests: k-regular, random directed power-law,
bipartite, small-world, Graph500/RMAT)."""

from repro.generators.powerlaw import (
    barabasi_albert,
    directed_powerlaw,
    powerlaw_configuration,
    sample_powerlaw_degrees,
)
from repro.generators.random_graphs import gnm_random_graph, gnp_random_graph
from repro.generators.regular import (
    balanced_tree,
    bipartite_random,
    complete_graph,
    grid_graph,
    is_regular,
    random_regular,
    ring_lattice,
    star_graph,
    watts_strogatz,
)
from repro.generators.rmat import (
    GRAPH500_PARAMS,
    RMATSpec,
    degree_skew,
    graph500_edge_generator,
    rmat_csr,
    rmat_edge_list,
    rmat_graph,
)
